//! Fixed-point taint propagation over the call graph, plus the
//! suppression audit.
//!
//! The per-site rules catch a wallclock read *where it happens*; this
//! pass catches it *where it matters* — a public function of a
//! deterministic crate whose call chain, possibly through helper crates,
//! reaches a nondeterminism **sink**: a wall-clock read, an ambient RNG
//! draw, an unordered container, or a completion-order merge beside
//! worker spawns. Taint seeds at sink sites and propagates backwards
//! along call edges to a fixed point; every tainted public entry reports
//! the full chain (`tainted via core::plan -> runtime::stamp ->
//! Instant::now`) so the finding is actionable without re-deriving the
//! path by hand.
//!
//! Suppressions participate in both directions. A `lint:allow` naming the
//! sink's per-site rule (or `transitive-determinism`) *at the sink site*
//! marks that sink audited and stops it from tainting callers — the six
//! observability-only `Instant::now` reads in `core::experiment` taint
//! nothing. Conversely, every directive must earn its keep: one that
//! neither suppresses a finding nor mutes a sink is itself reported by
//! `unused-suppression`, so stale allows cannot rot in place.

use crate::callgraph::{self, DepMap};
use crate::config::{Config, Severity, RULE_NAMES};
use crate::lexer::{Tok, TokKind};
use crate::rules::{Directive, FileAnalysis, Finding};
use crate::symbols::FnSym;
use std::collections::{BTreeMap, VecDeque};

/// The nondeterminism classes the pass tracks, in reporting order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TaintKind {
    /// Wall-clock reads: `Instant::now`, `SystemTime`, `UNIX_EPOCH`.
    Wallclock,
    /// Ambient RNG: `thread_rng`, `rand::random`, `from_entropy`, `OsRng`.
    AmbientRng,
    /// Unordered containers: `HashMap` / `HashSet`.
    UnorderedIter,
    /// Completion-order result merge: channels or lock accumulators in a
    /// function that also spawns workers.
    Merge,
}

impl TaintKind {
    /// The per-site rule whose `lint:allow` also mutes this sink.
    pub fn per_site_rule(self) -> &'static str {
        match self {
            TaintKind::Wallclock => "no-wallclock",
            TaintKind::AmbientRng => "no-ambient-rng",
            TaintKind::UnorderedIter => "unordered-iteration",
            TaintKind::Merge => "unordered-parallel-merge",
        }
    }

    fn describe(self) -> &'static str {
        match self {
            TaintKind::Wallclock => "a wall-clock read",
            TaintKind::AmbientRng => "ambient randomness",
            TaintKind::UnorderedIter => "unordered-container iteration",
            TaintKind::Merge => "a completion-order parallel merge",
        }
    }
}

/// One sink occurrence inside a function body.
#[derive(Debug, Clone)]
pub struct Sink {
    /// Class of nondeterminism.
    pub kind: TaintKind,
    /// What to print at the end of a chain (`Instant::now`).
    pub label: &'static str,
    /// 1-based line of the offending token.
    pub line: u32,
}

/// Extracts the sinks of each function in `fns`; result is parallel to
/// `fns`. Suppression is *not* applied here — muting needs the file's
/// directives and happens in [`transitive_findings`].
pub fn extract_sinks(toks: &[Tok], fns: &[FnSym]) -> Vec<Vec<Sink>> {
    fns.iter()
        .map(|f| {
            let (start, end) = f.body;
            if start > end || toks.is_empty() {
                return Vec::new();
            }
            // Scan from the `fn` keyword so signature types count too:
            // `fn sum(m: &HashMap<u32, f64>) -> f64 { m.values().sum() }`
            // is tainted even though the body never names the container.
            let start = f.decl.min(start);
            let end = end.min(toks.len() - 1);
            let body = &toks[start..=end];
            let spawns = body
                .iter()
                .any(|t| t.kind == TokKind::Ident && t.text == "spawn");
            let mut sinks = Vec::new();
            for (i, t) in body.iter().enumerate() {
                if t.kind != TokKind::Ident {
                    continue;
                }
                let sink = match t.text.as_str() {
                    "Instant" if seq(body, i + 1, &["::", "now"]) => {
                        Some((TaintKind::Wallclock, "Instant::now"))
                    }
                    "SystemTime" => Some((TaintKind::Wallclock, "SystemTime")),
                    "UNIX_EPOCH" => Some((TaintKind::Wallclock, "UNIX_EPOCH")),
                    "thread_rng" => Some((TaintKind::AmbientRng, "thread_rng")),
                    "from_entropy" => Some((TaintKind::AmbientRng, "from_entropy")),
                    "OsRng" => Some((TaintKind::AmbientRng, "OsRng")),
                    "rand" if seq(body, i + 1, &["::", "random"]) => {
                        Some((TaintKind::AmbientRng, "rand::random"))
                    }
                    "HashMap" => Some((TaintKind::UnorderedIter, "HashMap")),
                    "HashSet" => Some((TaintKind::UnorderedIter, "HashSet")),
                    "channel" if spawns => Some((TaintKind::Merge, "mpsc channel beside spawn")),
                    "sync_channel" if spawns => {
                        Some((TaintKind::Merge, "mpsc channel beside spawn"))
                    }
                    "Mutex" if spawns => Some((TaintKind::Merge, "Mutex accumulator beside spawn")),
                    "RwLock" if spawns => {
                        Some((TaintKind::Merge, "RwLock accumulator beside spawn"))
                    }
                    _ => None,
                };
                if let Some((kind, label)) = sink {
                    sinks.push(Sink {
                        kind,
                        label,
                        line: t.line,
                    });
                }
            }
            sinks
        })
        .collect()
}

fn seq(toks: &[Tok], from: usize, texts: &[&str]) -> bool {
    texts
        .iter()
        .enumerate()
        .all(|(k, want)| toks.get(from + k).is_some_and(|t| t.text == *want))
}

/// How a function became tainted with one kind.
#[derive(Debug, Clone, Copy)]
enum Step {
    /// The sink is in this function's own body.
    Direct { label: &'static str },
    /// Inherited from a callee.
    Via { callee: u32 },
}

/// True when directive `d` covers `line` (its own line or the next).
fn covers(d: &Directive, line: u32) -> bool {
    d.reason.is_some() && (d.line == line || d.line + 1 == line)
}

/// Runs the whole graph pass: mutes audited sinks, builds the call graph,
/// propagates taint to a fixed point, and reports every transitively
/// tainted public function of a deterministic crate. Directives that mute
/// a sink or suppress a finding are marked used (for the audit).
pub fn transitive_findings(
    files: &mut [FileAnalysis],
    cfg: &Config,
    deps: Option<&DepMap>,
) -> Vec<Finding> {
    let rc = cfg.rule("transitive-determinism");
    if rc.severity == Severity::Allow {
        return Vec::new();
    }

    // Mute sinks with a covering directive naming the sink's per-site
    // rule or the transitive rule itself.
    for file in files.iter_mut() {
        for fn_sinks in &mut file.sinks {
            fn_sinks.retain(|s| {
                let muted = file.directives.iter_mut().fold(false, |acc, d| {
                    let hit = covers(d, s.line)
                        && d.rules
                            .iter()
                            .any(|r| r == s.kind.per_site_rule() || r == "transitive-determinism");
                    if hit {
                        d.used = true;
                    }
                    acc || hit
                });
                !muted
            });
        }
    }

    // Flatten functions in file order (the ids `callgraph::resolve` uses).
    let pairs: Vec<(&crate::symbols::FileSymbols, &[Vec<callgraph::CallSite>])> = files
        .iter()
        .map(|f| (&f.symbols, f.calls.as_slice()))
        .collect();
    let graph = callgraph::resolve(&pairs, deps);
    let owner: Vec<(usize, usize)> = files
        .iter()
        .enumerate()
        .flat_map(|(fi, f)| (0..f.symbols.fns.len()).map(move |li| (fi, li)))
        .collect();
    let n = owner.len();

    // Seed and propagate: BFS over reverse edges, ids in ascending order,
    // kinds in enum order — fully deterministic, and first-writer-wins
    // yields a shortest chain for every (function, kind).
    let mut taint: Vec<BTreeMap<TaintKind, Step>> = vec![BTreeMap::new(); n];
    let mut queue: VecDeque<(u32, TaintKind)> = VecDeque::new();
    for (id, &(fi, li)) in owner.iter().enumerate() {
        for s in &files[fi].sinks[li] {
            taint[id]
                .entry(s.kind)
                .or_insert(Step::Direct { label: s.label });
        }
        for &kind in taint[id].keys() {
            queue.push_back((id as u32, kind));
        }
    }
    while let Some((id, kind)) = queue.pop_front() {
        let step = Step::Via { callee: id };
        for &caller in &graph.callers[id as usize] {
            if let std::collections::btree_map::Entry::Vacant(slot) =
                taint[caller as usize].entry(kind)
            {
                slot.insert(step);
                queue.push_back((caller, kind));
            }
        }
    }

    // Report tainted public entries of deterministic crates. Direct taint
    // is per-site territory; only call-inherited taint is news.
    let mut findings = Vec::new();
    for (id, &(fi, li)) in owner.iter().enumerate() {
        let file = &files[fi];
        let sym = &file.symbols.fns[li];
        let crate_name = &file.crate_name;
        if !cfg.deterministic_crates.iter().any(|c| c == crate_name)
            || rc.exempt_crates.iter().any(|c| c == crate_name)
            || !sym.is_pub
            || (!rc.include_tests && file.in_tests(sym.line))
        {
            continue;
        }
        for (&kind, step) in &taint[id] {
            let Step::Via { .. } = step else { continue };
            let chain = chain_string(id as u32, kind, &taint, files, &owner);
            findings.push(Finding {
                file: file.rel.clone(),
                line: sym.line,
                rule: "transitive-determinism",
                severity: rc.severity,
                message: format!(
                    "pub fn `{}` in deterministic crate `{}` can reach {}: \
                     tainted via {chain}",
                    sym.qual,
                    crate_name,
                    kind.describe()
                ),
                hint: "break the chain: hoist the sink out to a caller that owns it, \
                       pass the value/seed in explicitly, or audit the sink site with \
                       a `lint:allow(<per-site rule>): reason`",
                suppressed: None,
            });
        }
    }

    // Entry-site suppression: `lint:allow(transitive-determinism)` at the
    // public fn's line.
    for f in &mut findings {
        let fi = files
            .iter()
            .position(|a| a.rel == f.file)
            .expect("finding file came from `files`");
        for d in &mut files[fi].directives {
            if covers(d, f.line) && d.rules.iter().any(|r| r == "transitive-determinism") {
                f.suppressed.clone_from(&d.reason);
                d.used = true;
            }
        }
    }
    findings
}

/// Renders `entry -> … -> sink_label` for one tainted function.
fn chain_string(
    entry: u32,
    kind: TaintKind,
    taint: &[BTreeMap<TaintKind, Step>],
    files: &[FileAnalysis],
    owner: &[(usize, usize)],
) -> String {
    let qual = |id: u32| {
        let (fi, li) = owner[id as usize];
        files[fi].symbols.fns[li].qual.clone()
    };
    let mut chain = qual(entry);
    let mut at = entry;
    // The propagation terminated, so chains are acyclic by construction;
    // the bound is sheer paranoia against a future editing mistake.
    for _ in 0..=taint.len() {
        match taint[at as usize].get(&kind) {
            Some(Step::Via { callee }) => {
                at = *callee;
                chain.push_str(" -> ");
                chain.push_str(&qual(at));
            }
            Some(Step::Direct { label }) => {
                chain.push_str(" -> ");
                chain.push_str(label);
                break;
            }
            None => break,
        }
    }
    chain
}

/// The suppression audit: every directive must either suppress a finding
/// or mute a sink. Directives that do neither — stale allows, reasonless
/// allows, allows naming unknown rules — become findings themselves. A
/// directive may be excused by a covering `lint:allow(unused-suppression)`
/// (which thereby earns *its* keep).
pub fn audit_suppressions(files: &mut [FileAnalysis], cfg: &Config) -> Vec<Finding> {
    let rc = cfg.rule("unused-suppression");
    if rc.severity == Severity::Allow {
        return Vec::new();
    }
    let mut findings = Vec::new();
    for file in files.iter_mut() {
        if rc.exempt_crates.iter().any(|c| c == &file.crate_name) {
            continue;
        }
        // Pass 1: let unused-suppression directives excuse other unused
        // directives (marking the excuser used), so the excuser itself is
        // not reported in pass 2.
        let unused: Vec<usize> = (0..file.directives.len())
            .filter(|&i| !file.directives[i].used)
            .collect();
        let mut excused: BTreeMap<usize, String> = BTreeMap::new();
        for &di in &unused {
            let line = file.directives[di].line;
            let excuser = (0..file.directives.len()).find(|&ei| {
                ei != di
                    && covers(&file.directives[ei], line)
                    && file.directives[ei]
                        .rules
                        .iter()
                        .any(|r| r == "unused-suppression")
            });
            if let Some(ei) = excuser {
                let reason = file.directives[ei]
                    .reason
                    .clone()
                    .expect("covers() requires a reason");
                file.directives[ei].used = true;
                excused.insert(di, reason);
            }
        }
        // Pass 2: report what is still unused.
        for di in 0..file.directives.len() {
            if file.directives[di].used {
                continue;
            }
            let d = &file.directives[di];
            if !rc.include_tests && file.in_tests(d.line) {
                continue;
            }
            let rule_list = d.rules.join(", ");
            let unknown: Vec<&str> = d
                .rules
                .iter()
                .map(String::as_str)
                .filter(|r| !RULE_NAMES.contains(r))
                .collect();
            let message = if d.reason.is_none() {
                format!(
                    "`lint:allow({rule_list})` lacks the mandatory `: reason` \
                     and suppresses nothing"
                )
            } else if !unknown.is_empty() {
                format!(
                    "`lint:allow({rule_list})` names unknown rule(s) {} — \
                     the directive suppresses nothing",
                    unknown.join(", ")
                )
            } else {
                format!(
                    "`lint:allow({rule_list})` no longer suppresses anything — \
                     the finding it silenced is gone"
                )
            };
            findings.push(Finding {
                file: file.rel.clone(),
                line: d.line,
                rule: "unused-suppression",
                severity: rc.severity,
                message,
                hint: "delete the stale directive (or fix its rule list / reason) so \
                       every remaining suppression documents a live, audited exception",
                suppressed: excused.get(&di).cloned(),
            });
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer;
    use crate::symbols;

    fn sinks_of(src: &str) -> Vec<(TaintKind, &'static str)> {
        let toks = lexer::lex(src).tokens;
        let syms = symbols::extract("crates/x/src/lib.rs", "x", &toks);
        extract_sinks(&toks, &syms.fns)
            .into_iter()
            .flatten()
            .map(|s| (s.kind, s.label))
            .collect()
    }

    #[test]
    fn sink_extraction_per_kind() {
        assert_eq!(
            sinks_of("fn f() { let t = std::time::Instant::now(); }"),
            [(TaintKind::Wallclock, "Instant::now")]
        );
        assert_eq!(
            sinks_of("fn f() { let r = rand::thread_rng(); }"),
            [(TaintKind::AmbientRng, "thread_rng")]
        );
        assert_eq!(
            sinks_of("fn f(m: &std::collections::HashMap<u32, u32>) {}"),
            [(TaintKind::UnorderedIter, "HashMap")],
            "a hash-typed parameter taints the function"
        );
        assert_eq!(
            sinks_of("fn f() { let m: HashMap<u32, u32> = HashMap::new(); }").len(),
            2
        );
        // Locks count only beside spawns.
        assert!(sinks_of("fn f() { let m = Mutex::new(0); }").is_empty());
        assert_eq!(
            sinks_of(
                "fn f() { let m = Mutex::new(0); std::thread::scope(|s| { s.spawn(|| ()); }); }"
            ),
            [(TaintKind::Merge, "Mutex accumulator beside spawn")]
        );
    }

    #[test]
    fn instant_elapsed_is_not_a_sink() {
        assert!(sinks_of("fn f(t: std::time::Instant) { let _ = t.elapsed(); }").is_empty());
    }
}
