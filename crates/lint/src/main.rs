//! `opass-lint` binary: walk the workspace, run every rule, report.
//!
//! ```text
//! opass-lint [--root DIR] [--format human|json|sarif] [--threads N]
//!            [--fix-hints] [--strict] [--show-suppressed] [PATH...]
//! ```
//!
//! Exit codes: 0 clean, 1 deny-level findings (any finding under
//! `--strict`), 2 usage/config/IO error.

#![allow(clippy::print_stdout, clippy::print_stderr)]

use opass_lint::report::{self, HumanOpts};
use opass_lint::rules::Finding;
use opass_lint::{config::Severity, load_config};
use std::path::PathBuf;
use std::process::ExitCode;

#[derive(Clone, Copy, PartialEq)]
enum Format {
    Human,
    Json,
    Sarif,
}

struct Args {
    root: Option<PathBuf>,
    format: Format,
    threads: usize,
    fix_hints: bool,
    strict: bool,
    show_suppressed: bool,
    paths: Vec<String>,
}

const USAGE: &str = "usage: opass-lint [--root DIR] [--format human|json|sarif] \
                     [--threads N] [--fix-hints] [--strict] [--show-suppressed] [PATH...]";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: None,
        format: Format::Human,
        threads: 1,
        fix_hints: false,
        strict: false,
        show_suppressed: false,
        paths: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => {
                args.root = Some(PathBuf::from(it.next().ok_or("--root needs a directory")?));
            }
            "--format" => match it.next().as_deref() {
                Some("human") => args.format = Format::Human,
                Some("json") => args.format = Format::Json,
                Some("sarif") => args.format = Format::Sarif,
                other => return Err(format!("--format human|json|sarif, got {other:?}")),
            },
            "--threads" => {
                let n = it.next().ok_or("--threads needs a count")?;
                args.threads = n
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| format!("--threads needs a positive integer, got `{n}`"))?;
            }
            "--fix-hints" => args.fix_hints = true,
            "--strict" => args.strict = true,
            "--show-suppressed" => args.show_suppressed = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            p if !p.starts_with('-') => args.paths.push(p.to_string()),
            other => return Err(format!("unknown flag `{other}`\n{USAGE}")),
        }
    }
    Ok(args)
}

/// The workspace root: `--root` if given, else the nearest ancestor of the
/// current directory containing `lint.toml` (falling back to cwd).
fn find_root(args: &Args) -> PathBuf {
    if let Some(r) = &args.root {
        return r.clone();
    }
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let mut dir = cwd.clone();
    loop {
        if dir.join("lint.toml").is_file() {
            return dir;
        }
        if !dir.pop() {
            return cwd;
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let root = find_root(&args);
    let cfg = match load_config(&root) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("opass-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let mut findings = match opass_lint::lint_workspace_threads(&root, &cfg, args.threads) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("opass-lint: {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    if !args.paths.is_empty() {
        findings.retain(|f| args.paths.iter().any(|p| f.file.starts_with(p.as_str())));
    }

    let (suppressed, active): (Vec<Finding>, Vec<Finding>) =
        findings.into_iter().partition(|f| f.suppressed.is_some());
    let denies = active
        .iter()
        .filter(|f| f.severity == Severity::Deny)
        .count();
    let warns = active.len() - denies;

    let out = match args.format {
        Format::Json => report::render_json(&active, &suppressed, denies, warns),
        Format::Sarif => report::render_sarif(&active, &suppressed),
        Format::Human => report::render_human(
            HumanOpts {
                fix_hints: args.fix_hints,
                show_suppressed: args.show_suppressed,
            },
            &active,
            &suppressed,
            denies,
            warns,
        ),
    };
    // Ignore write errors: a closed pipe (`opass-lint | head`) must not
    // panic, and the exit code below is the contract that matters.
    use std::io::Write;
    let _ = std::io::stdout().write_all(out.as_bytes());

    if denies > 0 || (args.strict && !active.is_empty()) {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
