//! `opass-lint` binary: walk the workspace, run every rule, report.
//!
//! ```text
//! opass-lint [--root DIR] [--format human|json] [--fix-hints]
//!            [--strict] [--show-suppressed] [PATH...]
//! ```
//!
//! Exit codes: 0 clean, 1 deny-level findings (any finding under
//! `--strict`), 2 usage/config/IO error.

#![allow(clippy::print_stdout, clippy::print_stderr)]

use opass_json::Json;
use opass_lint::rules::Finding;
use opass_lint::{config::Severity, load_config};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: Option<PathBuf>,
    json: bool,
    fix_hints: bool,
    strict: bool,
    show_suppressed: bool,
    paths: Vec<String>,
}

const USAGE: &str = "usage: opass-lint [--root DIR] [--format human|json] \
                     [--fix-hints] [--strict] [--show-suppressed] [PATH...]";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: None,
        json: false,
        fix_hints: false,
        strict: false,
        show_suppressed: false,
        paths: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => {
                args.root = Some(PathBuf::from(it.next().ok_or("--root needs a directory")?));
            }
            "--format" => match it.next().as_deref() {
                Some("human") => args.json = false,
                Some("json") => args.json = true,
                other => return Err(format!("--format human|json, got {other:?}")),
            },
            "--fix-hints" => args.fix_hints = true,
            "--strict" => args.strict = true,
            "--show-suppressed" => args.show_suppressed = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            p if !p.starts_with('-') => args.paths.push(p.to_string()),
            other => return Err(format!("unknown flag `{other}`\n{USAGE}")),
        }
    }
    Ok(args)
}

/// The workspace root: `--root` if given, else the nearest ancestor of the
/// current directory containing `lint.toml` (falling back to cwd).
fn find_root(args: &Args) -> PathBuf {
    if let Some(r) = &args.root {
        return r.clone();
    }
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let mut dir = cwd.clone();
    loop {
        if dir.join("lint.toml").is_file() {
            return dir;
        }
        if !dir.pop() {
            return cwd;
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let root = find_root(&args);
    let cfg = match load_config(&root) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("opass-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let mut findings = match opass_lint::lint_workspace(&root, &cfg) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("opass-lint: {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    if !args.paths.is_empty() {
        findings.retain(|f| args.paths.iter().any(|p| f.file.starts_with(p.as_str())));
    }

    let (suppressed, active): (Vec<Finding>, Vec<Finding>) =
        findings.into_iter().partition(|f| f.suppressed.is_some());
    let denies = active
        .iter()
        .filter(|f| f.severity == Severity::Deny)
        .count();
    let warns = active.len() - denies;

    let out = if args.json {
        render_json(&active, &suppressed, denies, warns)
    } else {
        render_human(&args, &active, &suppressed, denies, warns)
    };
    // Ignore write errors: a closed pipe (`opass-lint | head`) must not
    // panic, and the exit code below is the contract that matters.
    use std::io::Write;
    let _ = std::io::stdout().write_all(out.as_bytes());

    if denies > 0 || (args.strict && !active.is_empty()) {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

fn render_human(
    args: &Args,
    active: &[Finding],
    suppressed: &[Finding],
    denies: usize,
    warns: usize,
) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    for f in active {
        let _ = writeln!(
            out,
            "{}:{}: {} [{}]: {}",
            f.file, f.line, f.rule, f.severity, f.message
        );
        if args.fix_hints {
            let _ = writeln!(out, "    fix: {}", f.hint);
        }
    }
    if args.show_suppressed {
        for f in suppressed {
            let _ = writeln!(
                out,
                "{}:{}: {} [suppressed]: {}",
                f.file,
                f.line,
                f.rule,
                f.suppressed.as_deref().unwrap_or("")
            );
        }
    }
    let _ = writeln!(
        out,
        "opass-lint: {denies} deny, {warns} warn, {} suppressed",
        suppressed.len()
    );
    out
}

fn render_json(active: &[Finding], suppressed: &[Finding], denies: usize, warns: usize) -> String {
    let finding_json = |f: &Finding| {
        Json::object([
            ("file".into(), Json::from(f.file.as_str())),
            ("line".into(), Json::from(f.line as u64)),
            ("rule".into(), Json::from(f.rule)),
            ("severity".into(), Json::from(f.severity.to_string())),
            ("message".into(), Json::from(f.message.as_str())),
            ("hint".into(), Json::from(f.hint)),
            (
                "suppressed".into(),
                match &f.suppressed {
                    Some(reason) => Json::from(reason.as_str()),
                    None => Json::Null,
                },
            ),
        ])
    };
    let out = Json::object([
        (
            "findings".into(),
            Json::array(active.iter().map(finding_json)),
        ),
        (
            "suppressed".into(),
            Json::array(suppressed.iter().map(finding_json)),
        ),
        (
            "summary".into(),
            Json::object([
                ("deny".into(), Json::from(denies)),
                ("warn".into(), Json::from(warns)),
                ("suppressed".into(), Json::from(suppressed.len())),
            ]),
        ),
    ]);
    let mut s = out.to_pretty();
    s.push('\n');
    s
}
