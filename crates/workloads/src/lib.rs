//! # opass-workloads — evaluation workload generators
//!
//! Synthetic equivalents of every workload the Opass paper evaluates:
//!
//! * [`single`] — equal-data single-input tasks (Section V-A1; ~10 chunks
//!   per process, 64 MB each);
//! * [`multi`] — triple-input tasks over three datasets of 30/20/10 MB
//!   chunks (Section V-A2, the gene-comparison pattern of Figure 2);
//! * [`dynamic`] — single-input tasks with heavy-tailed compute times, the
//!   mpiBLAST-style irregular workload (Section V-A3);
//! * [`paraview`] — the multi-block rendering run: a 640-sub-file library,
//!   64 sub-files of ≈56 MB per rendering step (Section V-B), complete with
//!   a meta-file model;
//! * [`task`] — the shared [`Task`]/[`Workload`] types.
//!
//! All generators write their datasets into an [`opass_dfs::Namenode`] under
//! a caller-chosen placement policy and are deterministic given an RNG seed.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod dynamic;
pub mod multi;
pub mod paraview;
pub mod replay;
pub mod single;
pub mod task;

pub use dynamic::DynamicConfig;
pub use multi::MultiDataConfig;
pub use paraview::{BlockKind, BlockRef, MetaFile, ParaViewConfig, ParaViewRun};
pub use replay::{ReplayError, TraceTask};
pub use single::SingleDataConfig;
pub use task::{Task, Workload};
