//! ParaView multi-block workloads (paper Section V-B).
//!
//! The paper's real-application test: a library of 640 macromolecular
//! datasets (Protein Data Bank derived), each converted to a sub-file of a
//! ParaView MultiBlock file of ≈56 MB. Every rendering step selects 64
//! sub-files (≈3.8 GB per step; ≈26 GB across the run) via a *meta-file*;
//! data-server processes read their assigned sub-files and then render.
//! Opass hooks the reader's `ReadXMLData()` assignment — here that is
//! simply: each step is a single-input workload plus a per-step render
//! delay.

use crate::task::{Task, Workload};
use opass_dfs::{ChunkId, DatasetId, DatasetSpec, Namenode, Placement};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;

/// One megabyte in bytes.
const MB: u64 = 1024 * 1024;

/// Parameters for the ParaView-style workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParaViewConfig {
    /// Sub-files available in the library (paper: 640).
    pub library_size: usize,
    /// Sub-files selected per rendering step (paper: 64).
    pub blocks_per_step: usize,
    /// Rendering steps in the run.
    pub n_steps: usize,
    /// Size of one sub-file, bytes (paper: ≈56 MB).
    pub block_size: u64,
    /// Render/compute delay charged per block after its read, seconds.
    pub render_seconds_per_block: f64,
    /// Fixed vtkXMLCompositeDataReader overhead per block read, seconds —
    /// XML parsing and pipeline setup that the paper's Figure 12 read
    /// times include on top of the raw transfer.
    pub reader_overhead_seconds: f64,
}

impl Default for ParaViewConfig {
    fn default() -> Self {
        ParaViewConfig {
            library_size: 640,
            blocks_per_step: 64,
            n_steps: 10,
            block_size: 56 * MB,
            render_seconds_per_block: 6.5,
            reader_overhead_seconds: 2.0,
        }
    }
}

/// The kind of VTK XML sub-file a block represents (metadata only; all
/// block kinds read identically).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockKind {
    /// `.vtp` polygonal data (the protein surfaces in the paper).
    PolyData,
    /// `.vti` image data.
    ImageData,
    /// `.vtr` rectilinear grid.
    RectilinearGrid,
    /// `.vtu` unstructured grid.
    UnstructuredGrid,
    /// `.vts` structured grid.
    StructuredGrid,
}

impl BlockKind {
    fn from_index(i: usize) -> Self {
        match i % 5 {
            0 => BlockKind::PolyData,
            1 => BlockKind::ImageData,
            2 => BlockKind::RectilinearGrid,
            3 => BlockKind::UnstructuredGrid,
            _ => BlockKind::StructuredGrid,
        }
    }
}

/// An entry of the multi-block meta-file: one sub-file reference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockRef {
    /// Sub-file name as it would appear in the meta-file.
    pub name: String,
    /// VTK data model of the sub-file.
    pub kind: BlockKind,
    /// The chunk storing the sub-file.
    pub chunk: ChunkId,
}

/// The meta-file: the index of the whole multi-block library.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetaFile {
    /// All sub-files, in library order.
    pub blocks: Vec<BlockRef>,
}

/// A full ParaView run: the library meta-file plus the per-step selections.
#[derive(Debug, Clone, PartialEq)]
pub struct ParaViewRun {
    /// The dataset backing the library.
    pub dataset: DatasetId,
    /// The library index.
    pub meta: MetaFile,
    /// One workload per rendering step.
    pub steps: Vec<Workload>,
}

/// Creates the library dataset and the per-step workloads.
///
/// Each step selects `blocks_per_step` distinct sub-files uniformly at
/// random from the library (the paper selects 64 of 640 per rendering).
pub fn generate(
    namenode: &mut Namenode,
    config: &ParaViewConfig,
    placement: &Placement,
    rng: &mut StdRng,
) -> ParaViewRun {
    assert!(config.library_size > 0, "library must be non-empty");
    assert!(
        config.blocks_per_step <= config.library_size,
        "cannot select {} of {} blocks",
        config.blocks_per_step,
        config.library_size
    );
    let spec = DatasetSpec::uniform(
        "paraview-multiblock",
        config.library_size,
        config.block_size,
    );
    let dataset = namenode.create_dataset(&spec, placement, rng);
    let chunks = namenode
        .dataset(dataset)
        .expect("dataset just created")
        .chunks
        .clone();

    let blocks: Vec<BlockRef> = chunks
        .iter()
        .enumerate()
        .map(|(i, &chunk)| BlockRef {
            name: format!("macromolecule_{i:04}.{}", ext(BlockKind::from_index(i))),
            kind: BlockKind::from_index(i),
            chunk,
        })
        .collect();

    let mut indices: Vec<usize> = (0..config.library_size).collect();
    let steps = (0..config.n_steps)
        .map(|s| {
            indices.shuffle(rng);
            let tasks = indices[..config.blocks_per_step]
                .iter()
                .map(|&i| {
                    Task::single(blocks[i].chunk).with_compute(config.render_seconds_per_block)
                })
                .collect();
            Workload::new(format!("paraview-step-{s}"), tasks)
        })
        .collect();

    ParaViewRun {
        dataset,
        meta: MetaFile { blocks },
        steps,
    }
}

fn ext(kind: BlockKind) -> &'static str {
    match kind {
        BlockKind::PolyData => "vtp",
        BlockKind::ImageData => "vti",
        BlockKind::RectilinearGrid => "vtr",
        BlockKind::UnstructuredGrid => "vtu",
        BlockKind::StructuredGrid => "vts",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opass_dfs::DfsConfig;
    use rand::SeedableRng;

    fn small_run(seed: u64) -> (Namenode, ParaViewRun) {
        let mut nn = Namenode::new(8, DfsConfig::default());
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = ParaViewConfig {
            library_size: 40,
            blocks_per_step: 8,
            n_steps: 3,
            block_size: 56,
            render_seconds_per_block: 0.1,
            reader_overhead_seconds: 0.0,
        };
        let run = generate(&mut nn, &cfg, &Placement::Random, &mut rng);
        (nn, run)
    }

    #[test]
    fn meta_file_indexes_whole_library() {
        let (nn, run) = small_run(1);
        assert_eq!(run.meta.blocks.len(), 40);
        for b in &run.meta.blocks {
            assert_eq!(nn.chunk(b.chunk).unwrap().size, 56);
        }
        // Names carry VTK extensions.
        assert!(run.meta.blocks[0].name.ends_with(".vtp"));
        assert!(run.meta.blocks[1].name.ends_with(".vti"));
    }

    #[test]
    fn steps_select_distinct_blocks() {
        let (_, run) = small_run(2);
        assert_eq!(run.steps.len(), 3);
        for step in &run.steps {
            assert_eq!(step.len(), 8);
            let set: std::collections::BTreeSet<_> =
                step.tasks.iter().map(|t| t.inputs[0]).collect();
            assert_eq!(set.len(), 8, "blocks within a step must be distinct");
            assert!(step.tasks.iter().all(|t| t.compute_seconds == 0.1));
        }
    }

    #[test]
    fn different_steps_differ() {
        let (_, run) = small_run(3);
        let sets: Vec<std::collections::BTreeSet<_>> = run
            .steps
            .iter()
            .map(|s| s.tasks.iter().map(|t| t.inputs[0]).collect())
            .collect();
        assert!(sets[0] != sets[1] || sets[1] != sets[2]);
    }

    #[test]
    fn paper_scale_defaults() {
        let cfg = ParaViewConfig::default();
        // ~3.8 GB per step, ~26+ GB library (paper Section V-B).
        let per_step = cfg.blocks_per_step as u64 * cfg.block_size;
        assert!((3.3e9..4.2e9).contains(&(per_step as f64)));
        // Paper says "approximately 26 GB" for the library; 640 blocks of
        // 56 MB is ~37 GB — the paper's own numbers are loose here, so we
        // assert the order of magnitude.
        let library = cfg.library_size as u64 * cfg.block_size;
        assert!(
            (20e9 as u64..45e9 as u64).contains(&library),
            "library {library}"
        );
    }

    #[test]
    #[should_panic(expected = "cannot select")]
    fn rejects_oversized_step() {
        let mut nn = Namenode::new(4, DfsConfig::default());
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = ParaViewConfig {
            library_size: 4,
            blocks_per_step: 5,
            n_steps: 1,
            block_size: 1,
            render_seconds_per_block: 0.0,
            reader_overhead_seconds: 0.0,
        };
        generate(&mut nn, &cfg, &Placement::Random, &mut rng);
    }
}
