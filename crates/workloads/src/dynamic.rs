//! Dynamic/irregular workloads (paper Section V-A3).
//!
//! mpiBLAST-style gene comparison: task I/O is one chunk, but compute time
//! "could vary greatly and \[is\] difficult to predict according to the input
//! data". The paper simulates this with a random policy; we draw per-task
//! compute times from a seeded log-normal distribution (heavy-tailed, always
//! positive — the standard model for service-time skew).

use crate::task::{Task, Workload};
use opass_dfs::{DatasetId, DatasetSpec, Namenode, Placement, DEFAULT_CHUNK_SIZE};
use rand::rngs::StdRng;
use rand::Rng;

/// Parameters for the dynamic workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DynamicConfig {
    /// Number of tasks (= chunks).
    pub n_tasks: usize,
    /// Chunk size in bytes.
    pub chunk_size: u64,
    /// Median compute time per task, seconds.
    pub compute_median: f64,
    /// Log-normal shape parameter sigma; 0 makes compute deterministic,
    /// ~1.0 gives the heavy skew irregular workloads show.
    pub compute_sigma: f64,
}

impl Default for DynamicConfig {
    fn default() -> Self {
        DynamicConfig {
            n_tasks: 640,
            chunk_size: DEFAULT_CHUNK_SIZE,
            compute_median: 0.5,
            compute_sigma: 1.0,
        }
    }
}

/// Draws a log-normal sample `exp(mu + sigma·Z)` using Box–Muller, so the
/// only dependency is the uniform RNG.
fn lognormal(rng: &mut StdRng, median: f64, sigma: f64) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    median * (sigma * z).exp()
}

/// Creates the dataset and the irregular-compute workload over it.
pub fn generate(
    namenode: &mut Namenode,
    config: &DynamicConfig,
    placement: &Placement,
    rng: &mut StdRng,
) -> (DatasetId, Workload) {
    assert!(config.n_tasks > 0, "need at least one task");
    assert!(
        config.compute_median >= 0.0 && config.compute_sigma >= 0.0,
        "compute parameters must be non-negative"
    );
    let spec = DatasetSpec::uniform("dynamic-gene-db", config.n_tasks, config.chunk_size);
    let ds = namenode.create_dataset(&spec, placement, rng);
    let tasks = namenode
        .dataset(ds)
        .expect("dataset just created")
        .chunks
        .clone()
        .into_iter()
        .map(|c| {
            let compute = if config.compute_median == 0.0 {
                0.0
            } else {
                lognormal(rng, config.compute_median, config.compute_sigma)
            };
            Task::single(c).with_compute(compute)
        })
        .collect();
    (ds, Workload::new("dynamic-irregular", tasks))
}

#[cfg(test)]
mod tests {
    use super::*;
    use opass_dfs::DfsConfig;
    use rand::SeedableRng;

    fn generate_with(seed: u64, cfg: &DynamicConfig) -> Workload {
        let mut nn = Namenode::new(8, DfsConfig::default());
        let mut rng = StdRng::seed_from_u64(seed);
        generate(&mut nn, cfg, &Placement::Random, &mut rng).1
    }

    #[test]
    fn compute_times_are_positive_and_irregular() {
        let cfg = DynamicConfig {
            n_tasks: 200,
            chunk_size: 64,
            compute_median: 1.0,
            compute_sigma: 1.0,
        };
        let w = generate_with(7, &cfg);
        let times: Vec<f64> = w.tasks.iter().map(|t| t.compute_seconds).collect();
        assert!(times.iter().all(|&t| t > 0.0));
        let max = times.iter().cloned().fold(0.0, f64::max);
        let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(
            max / min > 5.0,
            "sigma=1 should be visibly skewed: {max}/{min}"
        );
    }

    #[test]
    fn median_is_roughly_respected() {
        let cfg = DynamicConfig {
            n_tasks: 2000,
            chunk_size: 64,
            compute_median: 0.5,
            compute_sigma: 0.8,
        };
        let w = generate_with(11, &cfg);
        let mut times: Vec<f64> = w.tasks.iter().map(|t| t.compute_seconds).collect();
        times.sort_by(f64::total_cmp);
        let median = times[times.len() / 2];
        assert!((median - 0.5).abs() < 0.1, "empirical median {median}");
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = DynamicConfig {
            n_tasks: 50,
            chunk_size: 64,
            compute_median: 1.0,
            compute_sigma: 0.5,
        };
        assert_eq!(generate_with(3, &cfg), generate_with(3, &cfg));
    }

    #[test]
    fn zero_median_disables_compute() {
        let cfg = DynamicConfig {
            n_tasks: 10,
            chunk_size: 64,
            compute_median: 0.0,
            compute_sigma: 1.0,
        };
        let w = generate_with(5, &cfg);
        assert!(w.tasks.iter().all(|t| t.compute_seconds == 0.0));
    }
}
