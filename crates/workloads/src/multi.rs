//! Multi-input workloads (paper Section V-A2, Figure 2 right).
//!
//! "Each task includes three inputs, one 30 MB data input, one 20 MB input,
//! and one 10 MB input. These three inputs belong to three different data
//! sets." — the gene-comparison scenario (human/mouse/chimpanzee subsets):
//! task `i` reads chunk `i` of each of the three datasets.

use crate::task::{Task, Workload};
use opass_dfs::{DatasetId, DatasetSpec, Namenode, Placement};
use rand::rngs::StdRng;

/// One megabyte in bytes.
const MB: u64 = 1024 * 1024;

/// Parameters for the multi-input workload.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiDataConfig {
    /// Number of tasks (the paper uses 640 chunks / 64 nodes scenario).
    pub n_tasks: usize,
    /// Chunk size of each input dataset, in bytes, in read order.
    /// Defaults to the paper's 30/20/10 MB.
    pub input_sizes: Vec<u64>,
}

impl Default for MultiDataConfig {
    fn default() -> Self {
        MultiDataConfig {
            n_tasks: 640,
            input_sizes: vec![30 * MB, 20 * MB, 10 * MB],
        }
    }
}

impl MultiDataConfig {
    /// Bytes read by one task.
    pub fn bytes_per_task(&self) -> u64 {
        self.input_sizes.iter().sum()
    }
}

/// Creates one dataset per input class and returns the workload whose task
/// `i` reads chunk `i` of every dataset.
pub fn generate(
    namenode: &mut Namenode,
    config: &MultiDataConfig,
    placement: &Placement,
    rng: &mut StdRng,
) -> (Vec<DatasetId>, Workload) {
    assert!(config.n_tasks > 0, "need at least one task");
    assert!(
        !config.input_sizes.is_empty(),
        "need at least one input class"
    );
    let dataset_ids: Vec<DatasetId> = config
        .input_sizes
        .iter()
        .enumerate()
        .map(|(k, &size)| {
            let spec = DatasetSpec::uniform(format!("multi-input-{k}"), config.n_tasks, size);
            namenode.create_dataset(&spec, placement, rng)
        })
        .collect();

    let per_dataset_chunks: Vec<Vec<opass_dfs::ChunkId>> = dataset_ids
        .iter()
        .map(|&id| namenode.dataset(id).expect("just created").chunks.clone())
        .collect();

    let tasks = (0..config.n_tasks)
        .map(|i| Task::multi(per_dataset_chunks.iter().map(|c| c[i]).collect()))
        .collect();
    (dataset_ids, Workload::new("multi-input", tasks))
}

#[cfg(test)]
mod tests {
    use super::*;
    use opass_dfs::DfsConfig;
    use rand::SeedableRng;

    #[test]
    fn tasks_read_one_chunk_of_each_dataset() {
        let mut nn = Namenode::new(6, DfsConfig::default());
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = MultiDataConfig {
            n_tasks: 5,
            input_sizes: vec![30, 20, 10],
        };
        let (ids, w) = generate(&mut nn, &cfg, &Placement::Random, &mut rng);
        assert_eq!(ids.len(), 3);
        assert_eq!(w.len(), 5);
        for (i, task) in w.tasks.iter().enumerate() {
            assert_eq!(task.inputs.len(), 3);
            let sizes: Vec<u64> = task
                .inputs
                .iter()
                .map(|&c| nn.chunk(c).unwrap().size)
                .collect();
            assert_eq!(sizes, vec![30, 20, 10], "task {i}");
        }
    }

    #[test]
    fn default_matches_paper() {
        let cfg = MultiDataConfig::default();
        assert_eq!(cfg.bytes_per_task(), 60 * MB);
        assert_eq!(cfg.n_tasks, 640);
    }

    #[test]
    fn inputs_span_distinct_datasets() {
        let mut nn = Namenode::new(6, DfsConfig::default());
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = MultiDataConfig {
            n_tasks: 4,
            input_sizes: vec![10, 10],
        };
        let (_, w) = generate(&mut nn, &cfg, &Placement::Random, &mut rng);
        for task in &w.tasks {
            let datasets: std::collections::BTreeSet<_> = task
                .inputs
                .iter()
                .map(|&c| nn.chunk(c).unwrap().dataset)
                .collect();
            assert_eq!(datasets.len(), 2);
        }
    }
}
