//! Trace replay: build a workload from a user-supplied task trace.
//!
//! Downstream users rarely have the paper's exact workloads; they have
//! their own task logs. The replay format is a minimal CSV — one task per
//! line, `size_bytes,compute_seconds` — optionally with a header and `#`
//! comments. The loader creates a dataset with one chunk per task (placed
//! under the caller's policy) and the matching workload, after which every
//! planner and executor in the stack applies unchanged.
//!
//! Line walking (comment/blank skipping, 1-based line numbers) is shared
//! with the access-trace parser via [`opass_trace::lines::RecordLines`],
//! so both record formats split lines one way.

use crate::task::{Task, Workload};
use opass_dfs::{DatasetId, DatasetSpec, Namenode, Placement};
use opass_trace::RecordLines;
use rand::rngs::StdRng;
use std::fmt;

/// Errors from parsing a replay trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplayError {
    /// A line did not have exactly two comma-separated fields.
    BadShape {
        /// 1-based line number.
        line: usize,
    },
    /// A field failed to parse as a number, or was out of range.
    BadValue {
        /// 1-based line number.
        line: usize,
        /// The offending field text.
        field: String,
    },
    /// The trace contained no tasks.
    Empty,
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::BadShape { line } => {
                write!(f, "line {line}: expected `size_bytes,compute_seconds`")
            }
            ReplayError::BadValue { line, field } => {
                write!(f, "line {line}: cannot parse {field:?}")
            }
            ReplayError::Empty => write!(f, "trace contains no tasks"),
        }
    }
}

impl std::error::Error for ReplayError {}

/// One parsed trace row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceTask {
    /// Input size in bytes (must be positive).
    pub size_bytes: u64,
    /// Compute seconds after the read (non-negative, finite).
    pub compute_seconds: f64,
}

/// Parses the replay CSV. Blank lines and `#` comments are skipped; a
/// first line starting with a non-digit is treated as a header.
pub fn parse(csv: &str) -> Result<Vec<TraceTask>, ReplayError> {
    let mut tasks = Vec::new();
    for (line_no, line) in RecordLines::new(csv) {
        if tasks.is_empty() && line.chars().next().is_some_and(|c| !c.is_ascii_digit()) {
            continue; // header
        }
        let mut fields = line.split(',');
        let (Some(size), Some(compute), None) = (fields.next(), fields.next(), fields.next())
        else {
            return Err(ReplayError::BadShape { line: line_no });
        };
        let size_bytes: u64 = size.trim().parse().map_err(|_| ReplayError::BadValue {
            line: line_no,
            field: size.trim().to_string(),
        })?;
        let compute_seconds: f64 = compute.trim().parse().map_err(|_| ReplayError::BadValue {
            line: line_no,
            field: compute.trim().to_string(),
        })?;
        if size_bytes == 0 || !compute_seconds.is_finite() || compute_seconds < 0.0 {
            return Err(ReplayError::BadValue {
                line: line_no,
                field: line.to_string(),
            });
        }
        tasks.push(TraceTask {
            size_bytes,
            compute_seconds,
        });
    }
    if tasks.is_empty() {
        return Err(ReplayError::Empty);
    }
    Ok(tasks)
}

/// Builds the dataset + workload for a parsed trace.
pub fn materialize(
    namenode: &mut Namenode,
    name: &str,
    trace: &[TraceTask],
    placement: &Placement,
    rng: &mut StdRng,
) -> (DatasetId, Workload) {
    assert!(!trace.is_empty(), "trace must contain tasks");
    let spec = DatasetSpec {
        name: name.to_string(),
        chunk_sizes: trace.iter().map(|t| t.size_bytes).collect(),
    };
    let ds = namenode.create_dataset(&spec, placement, rng);
    let chunks = namenode.dataset(ds).expect("just created").chunks.clone();
    let tasks = chunks
        .into_iter()
        .zip(trace)
        .map(|(c, t)| Task::single(c).with_compute(t.compute_seconds))
        .collect();
    (ds, Workload::new(name, tasks))
}

/// Parses and materializes in one step.
pub fn from_csv(
    namenode: &mut Namenode,
    name: &str,
    csv: &str,
    placement: &Placement,
    rng: &mut StdRng,
) -> Result<(DatasetId, Workload), ReplayError> {
    let trace = parse(csv)?;
    Ok(materialize(namenode, name, &trace, placement, rng))
}

/// Serializes a workload back into the replay format (round-trip support;
/// chunk sizes come from the namenode).
pub fn to_csv(namenode: &Namenode, workload: &Workload) -> String {
    let mut out = String::from("size_bytes,compute_seconds\n");
    for task in &workload.tasks {
        let size = namenode.chunk(task.inputs[0]).map(|c| c.size).unwrap_or(0);
        out.push_str(&format!("{size},{}\n", task.compute_seconds));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use opass_dfs::DfsConfig;
    use rand::SeedableRng;

    const SAMPLE: &str = "\
size_bytes,compute_seconds
# gene comparison trace
67108864,0.5
33554432,1.25

16777216,0
";

    #[test]
    fn parses_header_comments_and_blanks() {
        let tasks = parse(SAMPLE).unwrap();
        assert_eq!(tasks.len(), 3);
        assert_eq!(tasks[0].size_bytes, 64 << 20);
        assert_eq!(tasks[1].compute_seconds, 1.25);
        assert_eq!(tasks[2].compute_seconds, 0.0);
    }

    #[test]
    fn rejects_malformed_rows() {
        assert!(matches!(
            parse("1,2,3\n"),
            Err(ReplayError::BadShape { line: 1 })
        ));
        assert!(matches!(
            parse("abc,1\n12,x\n"),
            Err(ReplayError::BadValue { line: 2, .. }) | Err(ReplayError::BadShape { .. })
        ));
        assert!(matches!(
            parse("0,1\n"),
            Err(ReplayError::BadValue { line: 1, .. })
        ));
        assert!(matches!(
            parse("# only comments\n"),
            Err(ReplayError::Empty)
        ));
    }

    #[test]
    fn materialize_builds_matching_dataset() {
        let mut nn = Namenode::new(6, DfsConfig::default());
        let mut rng = StdRng::seed_from_u64(4);
        let (ds, w) = from_csv(&mut nn, "replay", SAMPLE, &Placement::Random, &mut rng).unwrap();
        assert_eq!(w.len(), 3);
        let chunks = &nn.dataset(ds).unwrap().chunks;
        assert_eq!(nn.chunk(chunks[1]).unwrap().size, 32 << 20);
        assert_eq!(w.tasks[1].compute_seconds, 1.25);
    }

    #[test]
    fn csv_round_trips() {
        let mut nn = Namenode::new(6, DfsConfig::default());
        let mut rng = StdRng::seed_from_u64(9);
        let (_, w) = from_csv(&mut nn, "rt", SAMPLE, &Placement::Random, &mut rng).unwrap();
        let exported = to_csv(&nn, &w);
        let reparsed = parse(&exported).unwrap();
        assert_eq!(reparsed.len(), 3);
        assert_eq!(reparsed[0].size_bytes, 64 << 20);
        assert_eq!(reparsed[1].compute_seconds, 1.25);
    }
}
