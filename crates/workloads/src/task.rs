//! Data-processing tasks — the unit the paper's matchers assign.
//!
//! A task reads one or more input chunks and then computes for a while
//! (rendering, sequence alignment, …). The paper's three evaluation modes
//! differ only in how tasks look: single-input with zero compute
//! (Section V-A1), triple-input (V-A2), single-input with irregular compute
//! (V-A3), and ParaView render steps (V-B).

use opass_dfs::ChunkId;

/// One data-processing task.
#[derive(Debug, Clone, PartialEq)]
pub struct Task {
    /// Input chunks, read in order.
    pub inputs: Vec<ChunkId>,
    /// Simulated compute time after all inputs arrive, in seconds.
    pub compute_seconds: f64,
}

impl Task {
    /// A task reading a single chunk with no compute phase.
    pub fn single(chunk: ChunkId) -> Self {
        Task {
            inputs: vec![chunk],
            compute_seconds: 0.0,
        }
    }

    /// A task with several inputs and no compute phase.
    pub fn multi(inputs: Vec<ChunkId>) -> Self {
        assert!(!inputs.is_empty(), "a task needs at least one input");
        Task {
            inputs,
            compute_seconds: 0.0,
        }
    }

    /// Attaches a compute phase.
    pub fn with_compute(mut self, seconds: f64) -> Self {
        assert!(
            seconds.is_finite() && seconds >= 0.0,
            "compute time must be finite and non-negative"
        );
        self.compute_seconds = seconds;
        self
    }
}

/// A named collection of tasks analyzed in one parallel run.
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    /// Human-readable name for reports.
    pub name: String,
    /// The tasks, indexed densely (task id = position).
    pub tasks: Vec<Task>,
}

impl Workload {
    /// Creates a workload.
    pub fn new(name: impl Into<String>, tasks: Vec<Task>) -> Self {
        Workload {
            name: name.into(),
            tasks,
        }
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True when there are no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Total bytes demanded across all tasks (inputs are counted per task;
    /// shared chunks are counted each time they are read).
    pub fn total_input_bytes(&self, size_of: impl Fn(ChunkId) -> u64) -> u64 {
        self.tasks
            .iter()
            .flat_map(|t| t.inputs.iter())
            .map(|&c| size_of(c))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_task_shape() {
        let t = Task::single(ChunkId(3));
        assert_eq!(t.inputs, vec![ChunkId(3)]);
        assert_eq!(t.compute_seconds, 0.0);
    }

    #[test]
    fn with_compute_sets_phase() {
        let t = Task::single(ChunkId(0)).with_compute(2.5);
        assert_eq!(t.compute_seconds, 2.5);
    }

    #[test]
    fn workload_totals() {
        let w = Workload::new(
            "w",
            vec![
                Task::multi(vec![ChunkId(0), ChunkId(1)]),
                Task::single(ChunkId(2)),
            ],
        );
        assert_eq!(w.len(), 2);
        assert!(!w.is_empty());
        assert_eq!(w.total_input_bytes(|c| 10 + c.0), 10 + 11 + 12);
    }

    #[test]
    #[should_panic(expected = "at least one input")]
    fn multi_rejects_empty() {
        let _ = Task::multi(vec![]);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn rejects_negative_compute() {
        let _ = Task::single(ChunkId(0)).with_compute(-1.0);
    }
}
