//! Single-data workloads (paper Section V-A1).
//!
//! "Our test dataset contains approximately ten chunk files for every
//! process" — one dataset of `chunks_per_process × m` equal 64 MB chunks,
//! one task per chunk, no compute phase. This is the equal-data-assignment
//! scenario that ParaView-style applications produce.

use crate::task::{Task, Workload};
use opass_dfs::{DatasetId, DatasetSpec, Namenode, Placement, DEFAULT_CHUNK_SIZE};
use rand::rngs::StdRng;

/// Parameters for the single-data workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SingleDataConfig {
    /// Number of parallel processes (usually = cluster size).
    pub n_procs: usize,
    /// Chunks per process; the paper uses ~10.
    pub chunks_per_process: usize,
    /// Chunk size in bytes (default 64 MB).
    pub chunk_size: u64,
}

impl Default for SingleDataConfig {
    fn default() -> Self {
        SingleDataConfig {
            n_procs: 64,
            chunks_per_process: 10,
            chunk_size: DEFAULT_CHUNK_SIZE,
        }
    }
}

impl SingleDataConfig {
    /// Total chunk count `n = chunks_per_process × n_procs`.
    pub fn n_chunks(&self) -> usize {
        self.n_procs * self.chunks_per_process
    }
}

/// Creates the dataset on the namenode and returns the workload over it.
pub fn generate(
    namenode: &mut Namenode,
    config: &SingleDataConfig,
    placement: &Placement,
    rng: &mut StdRng,
) -> (DatasetId, Workload) {
    assert!(config.n_procs > 0, "need at least one process");
    assert!(
        config.chunks_per_process > 0,
        "need at least one chunk per process"
    );
    let spec = DatasetSpec::uniform("single-data", config.n_chunks(), config.chunk_size);
    let ds = namenode.create_dataset(&spec, placement, rng);
    let tasks = namenode
        .dataset(ds)
        .expect("dataset just created")
        .chunks
        .iter()
        .map(|&c| Task::single(c))
        .collect();
    (ds, Workload::new("single-data", tasks))
}

#[cfg(test)]
mod tests {
    use super::*;
    use opass_dfs::DfsConfig;
    use rand::SeedableRng;

    #[test]
    fn generates_one_task_per_chunk() {
        let mut nn = Namenode::new(8, DfsConfig::default());
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = SingleDataConfig {
            n_procs: 8,
            chunks_per_process: 3,
            chunk_size: 64,
        };
        let (ds, w) = generate(&mut nn, &cfg, &Placement::Random, &mut rng);
        assert_eq!(w.len(), 24);
        assert_eq!(cfg.n_chunks(), 24);
        let chunks = &nn.dataset(ds).unwrap().chunks;
        for (i, task) in w.tasks.iter().enumerate() {
            assert_eq!(task.inputs, vec![chunks[i]]);
            assert_eq!(task.compute_seconds, 0.0);
        }
    }

    #[test]
    fn default_matches_paper_scale() {
        let cfg = SingleDataConfig::default();
        assert_eq!(cfg.n_chunks(), 640);
        assert_eq!(cfg.chunk_size, 64 * 1024 * 1024);
    }
}
