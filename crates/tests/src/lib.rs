//! placeholder
