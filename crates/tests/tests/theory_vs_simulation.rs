//! Integration: the Section III closed forms against the *full* execution
//! stack (namenode placement + random assignment + HDFS read policy +
//! event simulator), not just the lightweight Monte-Carlo model.

use opass_analysis::{ClusterParams, ImbalanceModel, LocalityModel};
use opass_core::{ClusterSpec, Experiment, SingleData, Strategy};
use opass_simio::Summary;

/// Runs the random-assignment experiment and returns per-node served chunk
/// counts plus the local-read fraction.
fn observe(m: usize, chunks_per_process: usize, seed: u64) -> (Vec<f64>, f64) {
    let exp = SingleData {
        cluster: ClusterSpec {
            n_nodes: m,
            seed,
            ..Default::default()
        },
        chunks_per_process,
    };
    let run = exp.run(Strategy::RandomAssign).unwrap();
    (
        run.result.chunks_served_per_node(64 << 20),
        run.result.local_fraction(),
    )
}

#[test]
fn local_fraction_matches_r_over_m() {
    // Theory: a random assignment reads locally with probability r/m.
    // Aggregate over several seeds to tame the variance.
    let m = 32;
    let mut fractions = Vec::new();
    for seed in 0..6 {
        let (_, local) = observe(m, 8, seed);
        fractions.push(local);
    }
    let avg = Summary::of(&fractions).mean;
    let expected = 3.0 / m as f64;
    assert!(
        (avg - expected).abs() < 0.05,
        "measured {avg:.4}, theory {expected:.4}"
    );
}

#[test]
fn served_chunk_spread_matches_imbalance_model() {
    // Theory: served chunks per node ~ Bin(n, 1/m). Check the expected
    // count of idle-ish and overloaded nodes against the model within
    // generous sampling tolerance.
    let m = 64;
    let n: u64 = 64 * 8;
    let model = ImbalanceModel::new(ClusterParams::new(n, 3, m as u32));
    let mut light = 0usize;
    let mut heavy = 0usize;
    let trials = 6;
    for seed in 100..100 + trials {
        let (served, _) = observe(m, 8, seed);
        light += served.iter().filter(|&&c| c <= 2.0).count();
        heavy += served.iter().filter(|&&c| c >= 16.0).count();
    }
    let light_avg = light as f64 / trials as f64;
    let heavy_avg = heavy as f64 / trials as f64;
    let light_theory = model.expected_nodes_serving_at_most(2);
    let heavy_theory = model.expected_nodes_serving_more_than(15);
    assert!(
        (light_avg - light_theory).abs() < light_theory.max(1.0),
        "light: measured {light_avg:.1}, theory {light_theory:.1}"
    );
    assert!(
        (heavy_avg - heavy_theory).abs() < heavy_theory.max(2.0),
        "heavy: measured {heavy_avg:.1}, theory {heavy_theory:.1}"
    );
}

#[test]
fn expected_local_reads_scale_with_replication() {
    // LocalityModel's headline trend — locality decays with m — must show
    // up in the executed system too.
    let mut locals = Vec::new();
    for m in [8usize, 32] {
        let mut acc = 0.0;
        for seed in 0..4 {
            let (_, local) = observe(m, 6, 7000 + seed);
            acc += local;
        }
        locals.push(acc / 4.0);
    }
    assert!(
        locals[1] < locals[0],
        "locality must decay with cluster size: {locals:?}"
    );
    // And the closed form predicts the same ordering.
    let t8 = LocalityModel::new(ClusterParams::new(48, 3, 8))
        .params()
        .p_local();
    let t32 = LocalityModel::new(ClusterParams::new(192, 3, 32))
        .params()
        .p_local();
    assert!(t32 < t8);
}
