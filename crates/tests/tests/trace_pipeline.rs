//! Cross-crate properties of the trace pipeline: the 1BRC-style
//! parallel parse is byte-identical to the sequential parse on
//! randomized ragged inputs, generation is a pure function of its spec,
//! and replay-through-planner produces a reproducible fingerprint.

use opass_serve::{replay_local, ReplayConfig};
use opass_trace::{
    generate, generate_text, parse_binary_with_threads, parse_text_with_threads, write_binary,
    write_text, TraceError, TraceRecord, TraceSpec, TEXT_HEADER,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds a randomized ragged trace text: valid records interleaved with
/// comments, blank lines, stray whitespace, and (optionally) no trailing
/// newline, so chunk boundaries land on every line shape.
fn ragged_trace(rng: &mut StdRng, records: usize, trailing_newline: bool) -> String {
    let mut out = String::from(TEXT_HEADER);
    out.push('\n');
    for i in 0..records {
        match rng.gen_range(0u32..10) {
            0 => out.push_str("# interleaved comment\n"),
            1 => out.push('\n'),
            2 => out.push_str("   \n"),
            _ => {}
        }
        let pad = if rng.gen_bool(0.2) { "  " } else { "" };
        out.push_str(&format!(
            "{pad}{}.{:06},{},{},{},{}\n",
            i / 7,
            rng.gen_range(0u64..1_000_000),
            rng.gen_range(0u32..64),
            rng.gen_range(0u32..8),
            rng.gen_range(0u64..512),
            1u64 << rng.gen_range(10u32..27),
        ));
    }
    if !trailing_newline {
        // Leave the last record as a partial line (no final newline).
        out.pop();
    }
    out
}

#[test]
fn parallel_parse_is_byte_identical_across_thread_counts() {
    let mut rng = StdRng::seed_from_u64(0x9A99ED);
    for case in 0..12 {
        let trailing = case % 2 == 0;
        let n = 50 + case * 137;
        let text = ragged_trace(&mut rng, n, trailing);
        let seq = parse_text_with_threads(&text, 1).expect("sequential parse");
        assert_eq!(seq.len(), n, "case {case}: every record line parses");
        for threads in [2, 8] {
            let par = parse_text_with_threads(&text, threads).expect("parallel parse");
            assert_eq!(
                par, seq,
                "case {case}: {threads}-thread parse must equal sequential \
                 (trailing newline: {trailing})"
            );
        }
    }
}

#[test]
fn parallel_parse_reports_the_sequential_first_error() {
    let mut rng = StdRng::seed_from_u64(0xE4401);
    for case in 0..8 {
        let mut text = ragged_trace(&mut rng, 400, true);
        // Corrupt one record line somewhere in the middle.
        let victim = text
            .char_indices()
            .filter(|&(_, c)| c == '\n')
            .map(|(i, _)| i)
            .nth(100 + case * 30)
            .expect("enough lines");
        text.insert_str(victim + 1, "bogus,line\n");
        let seq_err = parse_text_with_threads(&text, 1).expect_err("corrupted input");
        assert!(matches!(
            seq_err,
            TraceError::BadShape { .. } | TraceError::BadValue { .. }
        ));
        for threads in [2, 8] {
            let par_err = parse_text_with_threads(&text, threads).expect_err("corrupted input");
            assert_eq!(
                par_err, seq_err,
                "case {case}: {threads}-thread parse must report the same \
                 first error (with the same global line number)"
            );
        }
    }
}

#[test]
fn generator_is_a_pure_function_of_its_spec() {
    let spec = TraceSpec {
        records: 30_000,
        datasets: 6,
        clients: 32,
        chunks_per_dataset: 256,
        ..TraceSpec::default()
    };
    // Byte-identical text on repeated generation.
    assert_eq!(generate_text(&spec), generate_text(&spec));
    // A different seed changes the trace; everything else equal.
    let reseeded = TraceSpec {
        seed: spec.seed ^ 1,
        ..spec.clone()
    };
    assert_ne!(generate_text(&reseeded), generate_text(&spec));
    // Text and binary encodings carry the same records.
    let records = generate(&spec);
    let via_text = parse_text_with_threads(&write_text(&records), 8).expect("text round-trip");
    let via_binary =
        parse_binary_with_threads(&write_binary(&records), 8).expect("binary round-trip");
    assert_eq!(via_text, records);
    assert_eq!(via_binary, records);
}

#[test]
fn replay_through_planner_is_deterministic() {
    let spec = TraceSpec {
        records: 20_000,
        datasets: 5,
        clients: 48,
        chunks_per_dataset: 200,
        chunk_size: 8 << 20,
        ..TraceSpec::default()
    };
    let records = generate(&spec);
    let config = ReplayConfig {
        n_nodes: 24,
        batch_records: 2_048,
        ..ReplayConfig::default()
    };
    let a = replay_local(&records, &config).expect("replay");
    let b = replay_local(&records, &config).expect("replay rerun");
    assert_eq!(a, b, "identical inputs must produce identical reports");
    assert_eq!(a.fingerprint(), b.fingerprint());
    assert_eq!(a.records, 20_000);
    assert!(a.migrations > 0, "churn must move replicas");
    // A different world seed must change the outcome (the fingerprint
    // covers plans, not just record counts).
    let reseeded = ReplayConfig {
        seed: config.seed ^ 1,
        ..config
    };
    let c = replay_local(&records, &reseeded).expect("replay reseeded");
    assert_ne!(a.fingerprint(), c.fingerprint());
}

#[test]
fn replay_locality_improves_under_churn() {
    // Churn migrates hot replicas toward their readers, so the session's
    // locality at the end must be at least as good as the quiet run's.
    let records = generate(&TraceSpec {
        records: 15_000,
        datasets: 3,
        clients: 12,
        chunks_per_dataset: 128,
        ..TraceSpec::default()
    });
    let base = ReplayConfig {
        n_nodes: 12,
        batch_records: 1_024,
        ..ReplayConfig::default()
    };
    let churned = replay_local(&records, &base).expect("churned replay");
    let quiet = replay_local(
        &records,
        &ReplayConfig {
            churn: false,
            ..base
        },
    )
    .expect("quiet replay");
    assert_eq!(quiet.migrations, 0);
    assert!(
        churned.mean_session_locality >= quiet.mean_session_locality,
        "migrating replicas toward readers must not hurt session locality \
         (churned {:.4} vs quiet {:.4})",
        churned.mean_session_locality,
        quiet.mean_session_locality
    );
}

/// A record with every field at its extreme round-trips through both
/// encodings and any thread count.
#[test]
fn extreme_records_round_trip() {
    let records = vec![
        TraceRecord {
            time_us: 0,
            client: 0,
            dataset: 0,
            chunk: 0,
            bytes: 0,
        },
        TraceRecord {
            time_us: u64::MAX / 2,
            client: u32::MAX,
            dataset: u32::MAX,
            chunk: u64::MAX,
            bytes: u64::MAX,
        },
    ];
    for threads in [1, 2, 8] {
        assert_eq!(
            parse_text_with_threads(&write_text(&records), threads).expect("text"),
            records
        );
        assert_eq!(
            parse_binary_with_threads(&write_binary(&records), threads).expect("binary"),
            records
        );
    }
}
