//! Integration: the observability subsystem end to end.
//!
//! Three contracts the recorder must honor:
//! 1. recording is deterministic — two identical seeded runs emit the
//!    same event stream;
//! 2. recording is non-invasive — a run with the no-op recorder (or no
//!    recorder at all) produces the identical `RunResult`;
//! 3. the derived `RunMetrics` reconcile with the trace-level aggregates
//!    the rest of the repo computes from `RunResult`.

use opass_core::runtime::{
    baseline, execute, execute_instrumented, execute_with_recorder, ExecConfig, ProcessPlacement,
    RunMetrics, TaskSource,
};
use opass_core::simio::{MemoryRecorder, NoopRecorder, Recorder};
use opass_core::{ClusterSpec, Dynamic, Experiment, SingleData, Strategy};
use opass_dfs::{DatasetSpec, DfsConfig, Namenode, Placement};
use opass_workloads::{Task, Workload};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn small_setup(seed: u64) -> (Namenode, Workload, ProcessPlacement) {
    let mut nn = Namenode::new(8, DfsConfig::default());
    let mut rng = StdRng::seed_from_u64(seed);
    let ds = nn.create_dataset(
        &DatasetSpec::uniform("obs", 24, 16 << 20),
        &Placement::Random,
        &mut rng,
    );
    let tasks: Vec<Task> = nn
        .dataset(ds)
        .unwrap()
        .chunks
        .iter()
        .map(|&c| Task::single(c))
        .collect();
    (
        nn,
        Workload::new("obs", tasks),
        ProcessPlacement::one_per_node(8),
    )
}

#[test]
fn event_stream_is_deterministic_across_identical_runs() {
    let capture = || {
        let (nn, workload, placement) = small_setup(77);
        let log = MemoryRecorder::new();
        let result = execute_with_recorder(
            &nn,
            &workload,
            &placement,
            TaskSource::Static(baseline::rank_interval(24, 8)),
            &ExecConfig {
                seed: 99,
                ..Default::default()
            },
            Box::new(log.clone()) as Box<dyn Recorder>,
        );
        (result, log.take_events())
    };
    let (result_a, events_a) = capture();
    let (result_b, events_b) = capture();
    assert_eq!(result_a, result_b);
    assert!(!events_a.is_empty(), "a run must emit events");
    assert_eq!(events_a, events_b, "event streams must be identical");
    // Events come out in nondecreasing simulated-time order.
    for pair in events_a.windows(2) {
        assert!(pair[1].at() >= pair[0].at() - 1e-12);
    }
}

#[test]
fn noop_recorder_does_not_change_the_run() {
    let (nn, workload, placement) = small_setup(5);
    let config = ExecConfig {
        seed: 31,
        ..Default::default()
    };
    let source = || TaskSource::Static(baseline::rank_interval(24, 8));
    let plain = execute(&nn, &workload, &placement, source(), &config);
    let noop = execute_with_recorder(
        &nn,
        &workload,
        &placement,
        source(),
        &config,
        Box::new(NoopRecorder),
    );
    assert_eq!(plain, noop, "a no-op recorder must be invisible");

    // The trait-level instrumented run likewise only *adds* metrics.
    let exp = SingleData {
        cluster: ClusterSpec {
            n_nodes: 8,
            seed: 5,
            ..Default::default()
        },
        chunks_per_process: 3,
    };
    let bare = exp.run(Strategy::Opass).unwrap();
    let inst = exp.run_instrumented(Strategy::Opass).unwrap();
    assert!(bare.result.metrics.is_none());
    assert!(inst.result.metrics.is_some());
    assert_eq!(bare.result.records, inst.result.records);
    assert_eq!(bare.result.makespan, inst.result.makespan);
    assert_eq!(bare.result.served_bytes, inst.result.served_bytes);
}

fn reconcile(metrics: &RunMetrics, result: &opass_core::runtime::RunResult, n_nodes: usize) {
    // Counters against the trace.
    assert_eq!(metrics.counters.reads, result.records.len());
    assert_eq!(
        metrics.counters.local_reads + metrics.counters.remote_reads,
        metrics.counters.reads
    );
    let local_records = result
        .records
        .iter()
        .filter(|r| r.source == r.reader)
        .count();
    assert_eq!(metrics.counters.local_reads, local_records);
    let total_bytes: u64 = result.records.iter().map(|r| r.bytes).sum();
    assert_eq!(
        metrics.counters.local_bytes + metrics.counters.remote_bytes,
        total_bytes
    );
    // Per-node rollups against the run's served-bytes vector.
    assert_eq!(metrics.per_node.len(), n_nodes);
    for node in &metrics.per_node {
        assert_eq!(
            node.served_bytes, result.served_bytes[node.node],
            "node {}",
            node.node
        );
    }
    let reads_served: usize = metrics.per_node.iter().map(|n| n.reads_served).sum();
    assert_eq!(reads_served, metrics.counters.reads);
}

#[test]
fn metrics_totals_reconcile_with_run_aggregates() {
    let (nn, workload, placement) = small_setup(13);
    let result = execute_instrumented(
        &nn,
        &workload,
        &placement,
        TaskSource::Static(baseline::rank_interval(24, 8)),
        &ExecConfig {
            seed: 17,
            ..Default::default()
        },
    );
    let metrics = result.metrics.as_deref().expect("instrumented");
    reconcile(metrics, &result, 8);
    assert!(!metrics.events.is_empty());
    assert!(metrics.series.n_buckets > 0);

    // Same reconciliation through the experiment trait, including the
    // stealing-heavy dynamic path.
    let exp = Dynamic {
        cluster: ClusterSpec {
            n_nodes: 8,
            seed: 23,
            ..Dynamic::default().cluster
        },
        tasks_per_process: 4,
        ..Default::default()
    };
    let run = exp.run_instrumented(Strategy::OpassGuided).unwrap();
    let metrics = run.metrics().expect("instrumented");
    reconcile(metrics, &run.result, 8);
    assert_eq!(metrics.counters.tasks_started, 32);
}

#[test]
fn exported_files_round_trip_the_headline_numbers() {
    let exp = SingleData {
        cluster: ClusterSpec {
            n_nodes: 8,
            seed: 41,
            ..Default::default()
        },
        chunks_per_process: 2,
    };
    let run = exp.run_instrumented(Strategy::Opass).unwrap();
    let metrics = run.metrics().expect("instrumented");

    let dir = std::env::temp_dir().join("opass-observability-files-test");
    std::fs::create_dir_all(&dir).unwrap();
    let files = metrics.write_files(&dir, "t_").unwrap();
    assert_eq!(files.len(), 4);
    let json = std::fs::read_to_string(dir.join("t_metrics.json")).unwrap();
    assert!(json.contains(&format!("\"reads\": {}", metrics.counters.reads)));
    let series = std::fs::read_to_string(dir.join("t_node_series.csv")).unwrap();
    assert!(series.starts_with("t,node,disk_utilization"));
    // One series row per (bucket, node).
    assert_eq!(
        series.lines().count() - 1,
        metrics.series.n_buckets * 8,
        "series rows"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unified_strategy_runs_are_deterministic() {
    let exp = SingleData {
        cluster: ClusterSpec {
            n_nodes: 8,
            seed: 5,
            ..Default::default()
        },
        chunks_per_process: 3,
    };
    let a = exp.run(Strategy::Opass).unwrap();
    let b = exp.run(Strategy::Opass).unwrap();
    assert_eq!(a.result, b.result);
}
