//! Integration: cluster churn. The paper notes node addition/removal skews
//! placement so the max-flow matching is no longer full; Opass must still
//! produce balanced assignments and beat the baseline on the skewed layout.

use opass_core::planner::OpassPlanner;
use opass_core::request::PlanRequest;
use opass_dfs::{
    ChunkId, DatasetSpec, DfsConfig, LayoutDelta, Namenode, NodeId, Placement, ReplicaChoice,
};
use opass_runtime::{baseline, execute, ExecConfig, ProcessPlacement, TaskSource};
use opass_workloads::{single, SingleDataConfig, Task, Workload};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

fn skewed_cluster(seed: u64) -> (Namenode, opass_workloads::Workload) {
    // Write on 12 nodes, then decommission 2 and add 6 empty ones.
    let mut nn = Namenode::new(12, DfsConfig::default());
    let mut rng = StdRng::seed_from_u64(seed);
    let cfg = SingleDataConfig {
        n_procs: 16,
        chunks_per_process: 4,
        chunk_size: 64 << 20,
    };
    let (_, workload) = single::generate(&mut nn, &cfg, &Placement::Random, &mut rng);
    nn.decommission(NodeId(0), &mut rng).expect("decommission");
    nn.decommission(NodeId(5), &mut rng).expect("decommission");
    for _ in 0..6 {
        nn.add_node();
    }
    nn.check_invariants()
        .expect("namenode invariants after churn");
    (nn, workload)
}

#[test]
fn planner_handles_skewed_layout() {
    let (nn, workload) = skewed_cluster(31);
    // Processes on every registered node, including dead/empty ones —
    // the planner must still balance; dead nodes simply have no locality.
    let placement = ProcessPlacement::one_per_node(nn.node_count());
    let plan = OpassPlanner::default()
        .plan(&PlanRequest::single(&nn, &workload, &placement).seed(1))
        .into_single()
        .expect("single plan");
    assert!(plan.assignment.is_balanced());
    assert_eq!(plan.matched_files + plan.filled_files, workload.len());
    // Skew means no full matching: some files must be filled.
    assert!(
        plan.filled_files > 0,
        "expected a partial matching after churn"
    );
}

#[test]
fn opass_still_beats_baseline_after_churn() {
    let (nn, workload) = skewed_cluster(32);
    let placement = ProcessPlacement::one_per_node(nn.node_count());
    let plan = OpassPlanner::default()
        .plan(&PlanRequest::single(&nn, &workload, &placement).seed(2))
        .into_single()
        .expect("single plan");
    let config = ExecConfig {
        replica_choice: ReplicaChoice::PreferLocalRandom,
        seed: 3,
        ..Default::default()
    };
    let base = execute(
        &nn,
        &workload,
        &placement,
        TaskSource::Static(baseline::rank_interval(workload.len(), nn.node_count())),
        &config,
    );
    let opass = execute(
        &nn,
        &workload,
        &placement,
        TaskSource::Static(plan.assignment),
        &config,
    );
    assert!(opass.local_fraction() > base.local_fraction());
    assert!(opass.io_summary().mean < base.io_summary().mean);
}

#[test]
fn decommissioned_nodes_serve_nothing() {
    let (nn, workload) = skewed_cluster(33);
    let placement = ProcessPlacement::one_per_node(nn.node_count());
    let run = execute(
        &nn,
        &workload,
        &placement,
        TaskSource::Static(baseline::rank_interval(workload.len(), nn.node_count())),
        &ExecConfig::default(),
    );
    // Nodes 0 and 5 are decommissioned: their replicas moved, so they must
    // never appear as read sources.
    for r in &run.records {
        assert_ne!(r.source, NodeId(0));
        assert_ne!(r.source, NodeId(5));
    }
}

#[test]
fn added_nodes_hold_no_data_but_can_read() {
    let (nn, workload) = skewed_cluster(34);
    let placement = ProcessPlacement::one_per_node(nn.node_count());
    let run = execute(
        &nn,
        &workload,
        &placement,
        TaskSource::Static(baseline::rank_interval(workload.len(), nn.node_count())),
        &ExecConfig::default(),
    );
    // New nodes (ids 12..17) joined empty: they serve nothing...
    for node in 12..18u32 {
        assert_eq!(run.served_bytes[node as usize], 0, "node {node}");
    }
    // ...but their processes still execute reads (remotely).
    let new_node_reads = run
        .records
        .iter()
        .filter(|r| r.reader.0 >= 12 && r.reader.0 < 18)
        .count();
    assert!(new_node_reads > 0);
}

#[test]
fn crash_repair_cycle_preserves_readability() {
    // Fail a node, repair, then execute a full read: every chunk must be
    // servable from the repaired layout.
    let mut nn = Namenode::new(10, DfsConfig::default());
    let mut rng = StdRng::seed_from_u64(41);
    let ds = nn.create_dataset(
        &DatasetSpec::uniform("survive", 30, 16 << 20),
        &Placement::Random,
        &mut rng,
    );
    nn.fail_node(NodeId(4)).expect("crash");
    assert!(!nn.under_replicated().is_empty());
    nn.repair_under_replicated(&mut rng).expect("repair");
    nn.check_invariants().expect("healthy after repair");

    let tasks: Vec<Task> = nn
        .dataset(ds)
        .unwrap()
        .chunks
        .iter()
        .map(|&c| Task::single(c))
        .collect();
    let workload = Workload::new("survive", tasks);
    let placement = ProcessPlacement::one_per_node(10);
    let run = execute(
        &nn,
        &workload,
        &placement,
        TaskSource::Static(baseline::rank_interval(30, 10)),
        &ExecConfig::default(),
    );
    assert_eq!(run.records.len(), 30);
    for r in &run.records {
        assert_ne!(r.source, NodeId(4), "dead node must not serve");
    }
}

/// Randomized equivalence: through arbitrary churn (failures + repair,
/// node joins, rebalances) an incremental session must agree with a
/// from-scratch plan on matched-file count, matched bytes, and both
/// locality tallies at every step. Uniform chunks make the byte totals
/// comparable even though the two maximum matchings may differ.
#[test]
fn replan_tracks_scratch_plans_through_randomized_churn() {
    for seed in [61u64, 62, 63] {
        let mut nn = Namenode::new(10, DfsConfig::default());
        let mut rng = StdRng::seed_from_u64(seed);
        let ds = nn.create_dataset(
            &DatasetSpec::uniform("churny", 60, 32 << 20),
            &Placement::Random,
            &mut rng,
        );
        let chunks = nn.dataset(ds).unwrap().chunks.clone();
        let w = Workload::new("churny", chunks.iter().map(|&c| Task::single(c)).collect());
        let scope: BTreeSet<ChunkId> = chunks.iter().copied().collect();
        let placement = ProcessPlacement::one_per_node(10);
        nn.take_events();
        let planner = OpassPlanner::default();
        let mut session = planner
            .session(&PlanRequest::single(&nn, &w, &placement).seed(17))
            .into_single()
            .expect("single session");
        for step in 0..6 {
            match rng.gen_range(0..3) {
                0 => {
                    let alive = nn.alive_nodes();
                    let node = alive[rng.gen_range(0..alive.len())];
                    nn.fail_node(node).expect("fail alive node");
                    nn.repair_under_replicated(&mut rng).expect("repair");
                }
                1 => {
                    nn.add_node();
                    nn.rebalance(1.2, &mut rng);
                }
                _ => {
                    nn.rebalance(1.1, &mut rng);
                }
            }
            let delta = LayoutDelta::from_events(&nn.take_events(), |c| scope.contains(&c));
            let repaired = session.replan(&delta).clone();
            let scratch = planner
                .plan(&PlanRequest::single(&nn, &w, &placement).seed(17))
                .into_single()
                .expect("single plan");
            assert_eq!(
                repaired.matched_files, scratch.matched_files,
                "seed {seed} step {step}: matched-file counts diverged"
            );
            assert_eq!(
                repaired.locality.local_tasks, scratch.locality.local_tasks,
                "seed {seed} step {step}: local-task tallies diverged"
            );
            assert_eq!(
                repaired.locality.local_bytes, scratch.locality.local_bytes,
                "seed {seed} step {step}: matched-byte totals diverged"
            );
            assert!(
                repaired.assignment.is_balanced(),
                "seed {seed} step {step}: repaired assignment unbalanced"
            );
        }
    }
}

#[test]
fn balancer_improves_opass_locality_after_skewed_ingest() {
    // Writer-local ingest piles replicas on one node; the balancer spreads
    // them, which unlocks a fuller matching for everyone else.
    let build = || {
        let mut nn = Namenode::new(8, DfsConfig::default());
        let mut rng = StdRng::seed_from_u64(55);
        let ds = nn.create_dataset(
            &DatasetSpec::uniform("skew", 40, 16 << 20),
            &Placement::WriterLocal { writer: NodeId(0) },
            &mut rng,
        );
        let tasks: Vec<Task> = nn
            .dataset(ds)
            .unwrap()
            .chunks
            .iter()
            .map(|&c| Task::single(c))
            .collect();
        (nn, Workload::new("skew", tasks), rng)
    };
    let placement = ProcessPlacement::one_per_node(8);

    let (nn_before, w, _) = build();
    let before = OpassPlanner::default()
        .plan(&PlanRequest::single(&nn_before, &w, &placement).seed(1))
        .into_single()
        .expect("single plan");

    let (mut nn_after, w2, mut rng) = build();
    let moved = nn_after.rebalance(1.2, &mut rng);
    assert!(moved > 0, "balancer should move replicas off the writer");
    nn_after.check_invariants().unwrap();
    let after = OpassPlanner::default()
        .plan(&PlanRequest::single(&nn_after, &w2, &placement).seed(1))
        .into_single()
        .expect("single plan");

    assert!(
        after.matched_files >= before.matched_files,
        "balanced layout cannot match fewer files: {} < {}",
        after.matched_files,
        before.matched_files
    );
}
