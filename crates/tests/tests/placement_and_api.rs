//! Integration: the unified `PlanRequest` planning API and the
//! closed-loop placement engine.
//!
//! The historical golden-equivalence suite (deprecated `plan_*` /
//! `start_*` wrappers vs their `PlanRequest` forms) retired with the
//! wrappers themselves; what remains exercises the `PlanRequest` API
//! directly plus the placement loop: on a deliberately hot-spotted
//! layout the loop must strictly increase matched-local bytes each
//! round, terminate, respect its byte budget, and emit migration deltas
//! that replay bit-identically through both the namenode
//! (`apply_migrations`) and the serve world (delta invalidation).

use opass_core::dfs::{DatasetSpec, DfsConfig, LayoutDelta, Namenode, NodeId, Placement};
use opass_core::{OpassPlanner, PlacementConfig, PlanRequest, Session};
use opass_runtime::ProcessPlacement;
use opass_serve::{serve, Client, ServeSpec, ServerConfig, World};
use opass_workloads::{single, SingleDataConfig, Task, Workload};
use rand::rngs::StdRng;
use rand::SeedableRng;

const CHUNK: u64 = 64 << 20;

/// A randomly-written world plus the workload reading it, as used by
/// most planner tests.
fn random_world(seed: u64) -> (Namenode, Workload) {
    let mut nn = Namenode::new(16, DfsConfig::default());
    let mut rng = StdRng::seed_from_u64(seed);
    let cfg = SingleDataConfig {
        n_procs: 16,
        chunks_per_process: 4,
        chunk_size: CHUNK,
    };
    let (_, workload) = single::generate(&mut nn, &cfg, &Placement::Random, &mut rng);
    (nn, workload)
}

/// A multi-input workload over three datasets on the same namenode.
fn multi_world(seed: u64) -> (Namenode, Workload) {
    let mut nn = Namenode::new(16, DfsConfig::default());
    let mut rng = StdRng::seed_from_u64(seed);
    let cfg = opass_workloads::MultiDataConfig {
        n_tasks: 48,
        input_sizes: vec![30 << 20, 20 << 20, 10 << 20],
    };
    let (_, workload) =
        opass_workloads::multi::generate(&mut nn, &cfg, &Placement::Random, &mut rng);
    (nn, workload)
}

/// A hot-spot world: every replica of every chunk lives on the first
/// `hot` nodes of an `n`-node cluster, so almost nothing is local and
/// the placement loop has real work to do. Fully deterministic — no RNG.
fn hot_spot_world(n: usize, chunks: usize, replication: u32, hot: usize) -> (Namenode, Workload) {
    let mut nn = Namenode::new(n, DfsConfig { replication });
    let locations: Vec<Vec<NodeId>> = (0..chunks)
        .map(|i| {
            (0..replication as usize)
                .map(|r| NodeId(((i + r) % hot) as u32))
                .collect()
        })
        .collect();
    let spec = DatasetSpec::uniform("hot", chunks, CHUNK);
    let dataset = nn.create_dataset_placed(&spec, locations);
    let chunk_ids = nn
        .dataset(dataset)
        .expect("dataset just created")
        .chunks
        .clone();
    let tasks: Vec<Task> = chunk_ids.iter().map(|&c| Task::single(c)).collect();
    (nn, Workload::new("hot-readers", tasks))
}

/// One replica-churn delta moving the first input chunk of task `i` off
/// its first holder onto a deterministic fresh node.
fn small_delta(nn: &Namenode, workload: &Workload, i: usize, n_nodes: usize) -> LayoutDelta {
    let task = &workload.tasks[i % workload.tasks.len()];
    let chunk = task.inputs[0];
    let locations = nn.locate(chunk).expect("chunk exists");
    let mut delta = LayoutDelta::default();
    delta.replicas_dropped.push((chunk, locations[0]));
    let target = (0..n_nodes as u32)
        .map(NodeId)
        .find(|n| !locations.contains(n))
        .expect("a node without this chunk exists");
    delta.replicas_added.push((chunk, target));
    delta.normalize();
    delta
}

#[test]
fn session_enum_replan_dispatches_to_both_variants() {
    let planner = OpassPlanner::default();
    let placement = ProcessPlacement::one_per_node(16);

    let (nn, workload) = random_world(0xF7);
    let mut session = planner.session(&PlanRequest::single(&nn, &workload, &placement).seed(4));
    assert!(matches!(session, Session::Single(_)));
    let delta = small_delta(&nn, &workload, 2, 16);
    session.replan(&delta);

    let (nn, workload) = multi_world(0xF8);
    let mut session = planner.session(&PlanRequest::multi(&nn, &workload, &placement));
    assert!(matches!(session, Session::Multi(_)));
    let delta = small_delta(&nn, &workload, 2, 16);
    session.replan(&delta);
}

// ---------------------------------------------------------------------------
// Placement loop
// ---------------------------------------------------------------------------

#[test]
fn placement_loop_converges_on_hot_spot() {
    let (nn, workload) = hot_spot_world(24, 96, 2, 3);
    let placement = ProcessPlacement::one_per_node(24);
    let planner = OpassPlanner::default();
    let request = PlanRequest::single(&nn, &workload, &placement).seed(0x9A5E);

    let mut session = planner.placement_session(&request, PlacementConfig::default());
    let before = session.local_bytes();
    let rounds = session.run();

    assert!(!rounds.is_empty(), "a hot-spotted layout must yield moves");
    let mut prev = before;
    for round in &rounds {
        assert_eq!(
            round.local_bytes_before, prev,
            "rounds chain: each starts where the last ended"
        );
        assert!(
            round.local_bytes_after > round.local_bytes_before,
            "round {} must strictly increase matched-local bytes",
            round.round
        );
        assert_eq!(
            round.migrated_bytes,
            round.moves.iter().map(|m| m.size).sum::<u64>(),
            "migrated bytes account for every accepted move"
        );
        prev = round.local_bytes_after;
    }
    assert_eq!(session.local_bytes(), prev);
    assert!(
        session.local_bytes() > before,
        "the loop must gain locality"
    );

    // The deltas replay onto the real namenode: all-or-nothing, and the
    // replication invariant holds afterwards.
    let mut migrated = nn.clone();
    for round in &rounds {
        let applied = migrated
            .apply_migrations(&round.delta)
            .expect("migrations apply");
        assert_eq!(applied, round.moves.len());
    }
    migrated
        .check_invariants()
        .expect("invariants after migration");

    // A scratch plan on the migrated layout agrees with the loop's view.
    let scratch = planner
        .plan(&PlanRequest::single(&migrated, &workload, &placement).seed(0x9A5E))
        .into_single()
        .expect("single plan");
    assert_eq!(scratch.matched_files, session.plan().matched_files);
    assert_eq!(
        scratch.locality.byte_fraction(),
        session.plan().locality.byte_fraction()
    );
}

#[test]
fn placement_loop_respects_byte_budget_and_determinism() {
    let (nn, workload) = hot_spot_world(24, 96, 2, 3);
    let placement = ProcessPlacement::one_per_node(24);
    let planner = OpassPlanner::default();
    let budget = 10 * CHUNK;
    let config = PlacementConfig {
        total_byte_budget: budget,
        ..PlacementConfig::default()
    };

    let run = |planner: &OpassPlanner| {
        let request = PlanRequest::single(&nn, &workload, &placement).seed(7);
        let mut session = planner.placement_session(&request, config);
        let rounds = session.run();
        (rounds, session.migrated_bytes(), session.local_bytes())
    };
    let (rounds_a, migrated_a, local_a) = run(&planner);
    let (rounds_b, migrated_b, local_b) = run(&planner);

    assert!(migrated_a <= budget, "loop must respect the byte budget");
    assert!(migrated_a > 0, "budget leaves room for at least one move");

    // Bit-identical across runs: same rounds, same deltas, same totals.
    assert_eq!(rounds_a.len(), rounds_b.len());
    assert_eq!(migrated_a, migrated_b);
    assert_eq!(local_a, local_b);
    for (a, b) in rounds_a.iter().zip(&rounds_b) {
        assert_eq!(
            a.delta, b.delta,
            "round {} delta must be deterministic",
            a.round
        );
        assert_eq!(a.moves.len(), b.moves.len());
    }
}

// ---------------------------------------------------------------------------
// Serve: the place request end to end
// ---------------------------------------------------------------------------

#[test]
fn remote_place_matches_in_process_loop_and_applies_cleanly() {
    let spec = ServeSpec {
        n_nodes: 16,
        n_datasets: 1,
        chunks_per_dataset: 96,
        ..Default::default()
    };
    let handle = serve(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        queue_depth: 32,
        shards: 2,
        spec,
        ..ServerConfig::default()
    })
    .expect("server starts");
    let mut client = Client::connect(handle.addr()).expect("connect");

    let rounds = 6;
    let seed = 0x5EED;
    let reply = client.place(0, rounds, None, seed).expect("place");

    // Rebuild the identical world locally and run the loop in-process.
    let world = World::new(spec);
    let snapshot = world.capture_layout(0).expect("dataset 0 exists");
    let placement = spec.placement();
    let config = PlacementConfig {
        max_rounds: rounds,
        ..PlacementConfig::default()
    };
    let mut session = OpassPlanner::default().placement_session(
        &PlanRequest::single_from_layout(&snapshot, &placement).seed(seed),
        config,
    );
    let local_before = session.local_bytes();
    let local_rounds = session.run();

    assert_eq!(reply.local_bytes_before, local_before);
    assert_eq!(reply.local_bytes_after, session.local_bytes());
    assert_eq!(reply.migrated_bytes, session.migrated_bytes());
    assert_eq!(reply.rounds.len(), local_rounds.len());
    for (remote, local) in reply.rounds.iter().zip(&local_rounds) {
        assert_eq!(remote.round, local.round);
        assert_eq!(remote.moves, local.moves.len());
        assert_eq!(
            remote.delta, local.delta,
            "round deltas must be byte-identical"
        );
        assert_eq!(remote.migrated_bytes, local.migrated_bytes);
    }

    // Recommendations are pure: the server world is untouched until the
    // client applies the deltas through the normal invalidation path.
    let before_plan = client
        .plan(0, opass_serve::Strategy::Opass, seed)
        .expect("plan before apply");
    let mut generation = before_plan.generation;
    for round in &reply.rounds {
        let g = client
            .invalidate_with_delta(0, &round.delta)
            .expect("delta invalidation");
        assert!(g > generation, "each applied delta bumps the generation");
        generation = g;
    }
    let after_plan = client
        .plan(0, opass_serve::Strategy::Opass, seed)
        .expect("plan after apply");
    assert!(
        after_plan.local_byte_fraction >= before_plan.local_byte_fraction,
        "applying the recommended migrations must not hurt locality"
    );
    if reply.migrated_bytes > 0 {
        assert!(
            after_plan.local_byte_fraction > before_plan.local_byte_fraction,
            "non-trivial migrations must improve planned locality"
        );
    }
    handle.shutdown();
}
