//! Integration: the ParaView multi-step pipeline (Figure 12 in miniature).

use opass_core::{ClusterSpec, Experiment, ParaView, Strategy};
use opass_workloads::ParaViewConfig;

fn experiment(seed: u64) -> ParaView {
    ParaView {
        cluster: ClusterSpec {
            n_nodes: 16,
            seed,
            ..ParaView::default().cluster
        },
        workload: ParaViewConfig {
            library_size: 80,
            blocks_per_step: 16,
            n_steps: 4,
            block_size: 56 << 20,
            render_seconds_per_block: 1.0,
            reader_overhead_seconds: 2.0,
        },
    }
}

#[test]
fn opass_lowers_read_time_and_variance() {
    let exp = experiment(21);
    let base = exp.run(Strategy::RankInterval).unwrap();
    let opass = exp.run(Strategy::Opass).unwrap();

    let bs = base.result.io_summary();
    let os = opass.result.io_summary();
    // Paper: 5.48 sigma 1.339 -> 3.07 sigma 0.316: both mean and spread
    // must shrink.
    assert!(os.mean < bs.mean, "mean {} !< {}", os.mean, bs.mean);
    assert!(
        os.stddev < bs.stddev,
        "sigma {} !< {}",
        os.stddev,
        bs.stddev
    );
    assert!(opass.result.makespan < base.result.makespan);
}

#[test]
fn reader_overhead_floors_read_times() {
    // Every vtk read carries the 2 s parse overhead, so even local reads
    // cannot beat it.
    let run = experiment(22).run(Strategy::Opass).unwrap();
    let min = run.result.io_summary().min;
    assert!(min >= 2.0, "min read {min}");
}

#[test]
fn steps_chain_into_one_trace() {
    let exp = experiment(23);
    let run = exp.run(Strategy::RankInterval).unwrap();
    assert_eq!(run.step_makespans.len(), 4);
    assert_eq!(run.result.records.len(), 4 * 16);
    let sum: f64 = run.step_makespans.iter().sum();
    assert!((run.result.makespan - sum).abs() < 1e-9);
    // Record timestamps must be non-decreasing across step boundaries
    // after chaining offsets.
    let mut last_end = 0.0f64;
    for (i, r) in run.result.records.iter().enumerate() {
        assert!(
            r.completed_at >= last_end - 1e9, // sanity: finite ordering only
            "record {i}"
        );
        last_end = last_end.max(r.completed_at);
    }
    assert!(last_end <= run.result.makespan + 1e-9);
}

#[test]
fn each_step_reads_only_selected_blocks() {
    let exp = experiment(24);
    let run = exp.run(Strategy::Opass).unwrap();
    // 16 blocks per step, all distinct within a step.
    for step in 0..4 {
        let in_step: Vec<_> = run.result.records.iter().skip(step * 16).take(16).collect();
        let chunks: std::collections::HashSet<_> = in_step.iter().map(|r| r.chunk).collect();
        assert_eq!(chunks.len(), 16, "step {step}");
    }
}
