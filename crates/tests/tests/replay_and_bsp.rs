//! Integration: trace replay feeding the full stack, and the
//! bulk-synchronous execution mode against the free-running executor.

use opass_core::planner::OpassPlanner;
use opass_core::request::PlanRequest;
use opass_dfs::{DfsConfig, Namenode, Placement};
use opass_runtime::{
    baseline, execute, execute_bulk_synchronous, ExecConfig, ProcessPlacement, TaskSource,
};
use opass_workloads::replay;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn trace_csv(n_big: usize, n_small: usize) -> String {
    let mut csv = String::from("size_bytes,compute_seconds\n");
    for _ in 0..n_big {
        csv.push_str("67108864,0.5\n");
    }
    for _ in 0..n_small {
        csv.push_str("4194304,0.05\n");
    }
    csv
}

#[test]
fn replayed_trace_flows_through_planner_and_executor() {
    let mut nn = Namenode::new(8, DfsConfig::default());
    let mut rng = StdRng::seed_from_u64(61);
    let csv = trace_csv(16, 16);
    let (_, workload) =
        replay::from_csv(&mut nn, "trace", &csv, &Placement::Random, &mut rng).unwrap();
    assert_eq!(workload.len(), 32);

    let placement = ProcessPlacement::one_per_node(8);
    let plan = OpassPlanner::default()
        .plan(&PlanRequest::single(&nn, &workload, &placement).seed(2))
        .into_single()
        .expect("single plan");
    assert!(plan.assignment.is_balanced());

    let run = execute(
        &nn,
        &workload,
        &placement,
        TaskSource::Static(plan.assignment),
        &ExecConfig::default(),
    );
    assert_eq!(run.records.len(), 32);
    // Mixed sizes preserved end to end.
    let sizes: std::collections::HashSet<u64> = run.records.iter().map(|r| r.bytes).collect();
    assert!(sizes.contains(&(64 << 20)));
    assert!(sizes.contains(&(4 << 20)));
    // Compute phases delay the makespan beyond pure I/O.
    let io_total_max: f64 = run.proc_finish_times(8).iter().cloned().fold(0.0, f64::max);
    assert!(run.makespan >= io_total_max);
}

#[test]
fn replay_round_trip_preserves_the_workload() {
    let mut nn = Namenode::new(6, DfsConfig::default());
    let mut rng = StdRng::seed_from_u64(62);
    let csv = trace_csv(5, 3);
    let (_, workload) =
        replay::from_csv(&mut nn, "rt", &csv, &Placement::Random, &mut rng).unwrap();
    let exported = replay::to_csv(&nn, &workload);
    let reparsed = replay::parse(&exported).unwrap();
    assert_eq!(reparsed.len(), workload.len());
    for (row, task) in reparsed.iter().zip(&workload.tasks) {
        assert_eq!(row.compute_seconds, task.compute_seconds);
        assert_eq!(row.size_bytes, nn.chunk(task.inputs[0]).unwrap().size);
    }
}

#[test]
fn bsp_and_free_running_read_identical_data() {
    let mut nn = Namenode::new(6, DfsConfig::default());
    let mut rng = StdRng::seed_from_u64(63);
    let csv = trace_csv(12, 6);
    let (_, workload) =
        replay::from_csv(&mut nn, "bsp", &csv, &Placement::Random, &mut rng).unwrap();
    let placement = ProcessPlacement::one_per_node(6);
    let assignment = baseline::rank_interval(workload.len(), 6);
    let config = ExecConfig {
        seed: 64,
        ..Default::default()
    };

    let free = execute(
        &nn,
        &workload,
        &placement,
        TaskSource::Static(assignment.clone()),
        &config,
    );
    let bsp = execute_bulk_synchronous(&nn, &workload, &placement, &assignment, &config);

    // Same multiset of (task, bytes) read either way.
    let key = |r: &opass_runtime::IoRecord| (r.task, r.bytes);
    let mut a: Vec<_> = free.records.iter().map(key).collect();
    let mut b: Vec<_> = bsp.records.iter().map(key).collect();
    a.sort_unstable();
    b.sort_unstable();
    assert_eq!(a, b);
    // Total served bytes identical.
    assert_eq!(
        free.served_bytes.iter().sum::<u64>(),
        bsp.served_bytes.iter().sum::<u64>()
    );
    // Both modes complete in finite positive time. (No ordering between
    // the two makespans is guaranteed: barriers add waiting but can also
    // *reduce* disk contention by staggering rounds.)
    assert!(bsp.makespan > 0.0 && bsp.makespan.is_finite());
}

#[test]
fn bsp_straggler_waste_exceeds_free_running_under_baseline() {
    // With a skewed baseline assignment, per-round barriers charge the
    // straggler every round: the barrier-waste metric should not improve.
    let mut nn = Namenode::new(8, DfsConfig::default());
    let mut rng = StdRng::seed_from_u64(65);
    let csv = trace_csv(24, 0);
    let (_, workload) =
        replay::from_csv(&mut nn, "waste", &csv, &Placement::Random, &mut rng).unwrap();
    let placement = ProcessPlacement::one_per_node(8);
    let assignment = baseline::rank_interval(24, 8);
    let config = ExecConfig::default();

    let free = execute(
        &nn,
        &workload,
        &placement,
        TaskSource::Static(assignment.clone()),
        &config,
    );
    let bsp = execute_bulk_synchronous(&nn, &workload, &placement, &assignment, &config);
    let (last_f, mean_f, free_waste) = free.straggler_report(8);
    let (last_b, mean_b, bsp_waste) = bsp.straggler_report(8);
    // Straggler metrics are internally consistent valid fractions; the
    // makespans themselves are not ordered in general (barriers trade
    // waiting against reduced contention).
    for (last, mean, waste) in [(last_f, mean_f, free_waste), (last_b, mean_b, bsp_waste)] {
        assert!(mean <= last + 1e-9);
        assert!((0.0..=1.0).contains(&waste), "waste {waste}");
    }
}
