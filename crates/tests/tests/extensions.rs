//! Integration tests for the repository's extensions beyond the paper:
//! rack-aware two-tier matching, heterogeneous weighted quotas, the
//! parallel write path, and the delay-scheduling baseline.

use opass_core::{ClusterSpec, Dynamic, Experiment, Heterogeneous, Racked, Strategy};
use opass_dfs::{DatasetSpec, DfsConfig, Namenode, Placement, RackMap};
use opass_runtime::{write_dataset, ProcessPlacement, WriteConfig};
use opass_simio::Topology;

fn racked(seed: u64) -> Racked {
    Racked {
        cluster: ClusterSpec {
            n_nodes: 16,
            seed,
            ..Racked::default().cluster
        },
        nodes_per_rack: 4,
        late_per_rack: 1,
        chunks_per_process: 4,
        ..Default::default()
    }
}

#[test]
fn rack_aware_matching_dominates_node_only() {
    for seed in [1u64, 2, 3] {
        let exp = racked(seed);
        let node_only = exp.run(Strategy::Opass).unwrap();
        let rack_aware = exp.run(Strategy::OpassRackAware).unwrap();
        let xn = exp.cross_rack_fraction(&node_only.result);
        let xr = exp.cross_rack_fraction(&rack_aware.result);
        assert!(xr <= xn + 1e-9, "seed {seed}: rack {xr} vs node {xn}");
        // Node-level locality is identical (the node tier runs first in
        // both); only the remainder placement differs.
        assert!(
            (rack_aware.result.local_fraction() - node_only.result.local_fraction()).abs() < 0.05,
            "seed {seed}"
        );
    }
}

#[test]
fn late_nodes_hold_no_data_but_get_balanced_quota() {
    let exp = racked(9);
    let run = exp.run(Strategy::OpassRackAware).unwrap();
    // Every process executes its fair share of tasks.
    let mut per_proc = vec![0usize; 16];
    for r in &run.result.records {
        per_proc[r.proc] += 1;
    }
    assert!(per_proc.iter().all(|&c| c == 4), "{per_proc:?}");
    // Late nodes (last of each rack: ids 3, 7, 11, 15) served nothing.
    for late in [3usize, 7, 11, 15] {
        assert_eq!(run.result.served_bytes[late], 0, "node {late}");
    }
}

#[test]
fn oversubscribed_uplink_punishes_cross_rack_baseline() {
    // Squeeze the uplink hard: the baseline (75%+ cross-rack) must slow
    // down much more than the rack-aware plan.
    let exp = Racked {
        uplink_bandwidth: 60.0 * 1024.0 * 1024.0,
        ..racked(4)
    };
    let base = exp.run(Strategy::RankInterval).unwrap();
    let rack = exp.run(Strategy::OpassRackAware).unwrap();
    assert!(
        base.result.makespan > rack.result.makespan * 1.5,
        "baseline {} vs rack-aware {}",
        base.result.makespan,
        rack.result.makespan
    );
}

#[test]
fn weighted_quotas_match_disk_speeds() {
    let exp = Heterogeneous {
        cluster: ClusterSpec {
            n_nodes: 8,
            seed: 5,
            ..Heterogeneous::default().cluster
        },
        slow_every: 2,
        slow_factor: 0.5,
        chunks_per_process: 6,
    };
    let uniform = exp.run(Strategy::Opass).unwrap();
    let weighted = exp.run(Strategy::OpassWeighted).unwrap();
    // Count tasks per process: weighted quotas give slow (even-id) nodes
    // fewer chunks.
    let mut per_proc = vec![0usize; 8];
    for r in &weighted.result.records {
        per_proc[r.proc] += 1;
    }
    let slow: usize = per_proc.iter().step_by(2).sum();
    let fast: usize = per_proc.iter().skip(1).step_by(2).sum();
    assert!(fast > slow, "fast nodes must take more tasks: {per_proc:?}");
    assert!(weighted.result.makespan <= uniform.result.makespan + 1e-9);
}

#[test]
fn write_then_plan_round_trip_on_racked_cluster() {
    // Ingest with rack-aware placement on a racked topology, then verify
    // the registered layout satisfies the rack invariant end to end.
    let racks = RackMap::uniform(12, 4);
    let mut nn = Namenode::new(12, DfsConfig::default());
    let spec = DatasetSpec::uniform("racked-ingest", 24, 32 << 20);
    let outcome = write_dataset(
        &mut nn,
        &spec,
        &ProcessPlacement::one_per_node(12),
        &WriteConfig {
            topology: Topology::Racked {
                nodes_per_rack: 4,
                uplink_bandwidth: 400.0 * 1024.0 * 1024.0,
            },
            placement: Placement::RackAware {
                racks: racks.clone(),
            },
            seed: 3,
            ..Default::default()
        },
    );
    nn.check_invariants().expect("post-write invariants");
    for &chunk in &nn.dataset(outcome.dataset).unwrap().chunks {
        let locs = nn.locate(chunk).unwrap();
        let mut rs: Vec<u32> = locs.iter().map(|&n| racks.rack_of(n)).collect();
        rs.sort_unstable();
        rs.dedup();
        assert_eq!(rs.len(), 2, "replicas of {chunk} must span exactly 2 racks");
    }
}

#[test]
fn delay_scheduling_skip_budget_is_monotone() {
    // More skips -> at least as much locality (same workload & seed).
    let exp = Dynamic {
        cluster: ClusterSpec {
            n_nodes: 16,
            seed: 8,
            ..Dynamic::default().cluster
        },
        tasks_per_process: 6,
        compute_median: 0.2,
        ..Default::default()
    };
    let mut last = 0.0f64;
    for skips in [0usize, 4, 32, 96] {
        let run = exp
            .run(Strategy::DelayScheduling { max_skips: skips })
            .unwrap();
        let local = run.result.local_fraction();
        assert!(
            local >= last - 0.08,
            "skips {skips}: locality {local} fell well below previous {last}"
        );
        last = last.max(local);
    }
    // Zero skips behaves like FIFO.
    let fifo = exp.run(Strategy::Fifo).unwrap();
    let zero = exp.run(Strategy::DelayScheduling { max_skips: 0 }).unwrap();
    assert!((fifo.result.local_fraction() - zero.result.local_fraction()).abs() < 1e-9);
}
