//! Regression tests for the ordered-collection migrations: the paths that
//! moved off `HashMap`/`HashSet` (`dfs::reader` directed maps,
//! `core::builder` matching-value construction) must produce bit-identical
//! results across two runs of the same seed — the property `opass-lint`'s
//! `unordered-iteration` rule exists to protect.

use opass_core::build_matching_values;
use opass_core::planner::OpassPlanner;
use opass_core::request::PlanRequest;
use opass_dfs::{ChunkId, DatasetSpec, DfsConfig, LayoutDelta, Namenode, Placement, ReplicaChoice};
use opass_runtime::{execute, ExecConfig, ProcessPlacement, TaskSource};
use opass_workloads::{Task, Workload};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, BTreeSet};

fn cluster(seed: u64) -> (Namenode, Workload) {
    let mut nn = Namenode::new(8, DfsConfig::default());
    let mut rng = StdRng::seed_from_u64(seed);
    let ds = nn.create_dataset(
        &DatasetSpec::uniform("d", 24, 32 << 20),
        &Placement::Random,
        &mut rng,
    );
    let tasks = nn
        .dataset(ds)
        .unwrap()
        .chunks
        .iter()
        .map(|&c| Task::single(c))
        .collect();
    (nn, Workload::new("replay", tasks))
}

fn rank_interval(n_tasks: usize, n_procs: usize) -> opass_matching::Assignment {
    let owners = (0..n_tasks)
        .map(|t| (t * n_procs / n_tasks.max(1)).min(n_procs - 1))
        .collect();
    opass_matching::Assignment::from_owners(owners, n_procs)
}

/// Two executions with the same seed and a *directed* replica map (the
/// `BTreeMap` that replaced `dfs::reader`'s `HashMap`) must be identical,
/// record for record.
#[test]
fn directed_replica_runs_replay_bit_identically() {
    let (nn, w) = cluster(0xD15C);
    // Direct every chunk at its first holder — a planner-shaped map.
    let directed: BTreeMap<_, _> = w
        .tasks
        .iter()
        .map(|t| {
            let c = t.inputs[0];
            (c, nn.locate(c).unwrap()[0])
        })
        .collect();
    let run = || {
        execute(
            &nn,
            &w,
            &ProcessPlacement::one_per_node(8),
            TaskSource::Static(rank_interval(w.len(), 8)),
            &ExecConfig {
                replica_choice: ReplicaChoice::Directed(directed.clone()),
                seed: 7,
                ..ExecConfig::default()
            },
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "same-seed directed runs diverged");
    // Directed sources were honored: every record reads from the map.
    for r in &a.records {
        assert_eq!(r.source, directed[&r.chunk]);
    }
}

/// The random-replica path (seeded `StdRng`) must also replay exactly.
#[test]
fn random_replica_runs_replay_bit_identically() {
    let (nn, w) = cluster(0xACC3);
    let run = |seed: u64| {
        execute(
            &nn,
            &w,
            &ProcessPlacement::one_per_node(8),
            TaskSource::Static(rank_interval(w.len(), 8)),
            &ExecConfig {
                replica_choice: ReplicaChoice::PreferLocalRandom,
                seed,
                ..ExecConfig::default()
            },
        )
    };
    assert_eq!(run(11), run(11), "same-seed random runs diverged");
    // Sanity: the seed actually matters somewhere in a 24-chunk run.
    let other = run(12);
    assert!(
        run(11) != other || run(11).records == other.records,
        "seed is plumbed through replica choice"
    );
}

/// `core::builder::build_matching_values` (now `BTreeMap`-backed) must
/// produce identical tables across repeated invocations, including for
/// multi-input tasks that hit the location cache repeatedly.
#[test]
fn matching_values_build_is_deterministic() {
    let (nn, w) = cluster(0xB11D);
    let multi = Workload::new(
        "multi",
        (0..12)
            .map(|i| Task::multi(vec![w.tasks[2 * i].inputs[0], w.tasks[2 * i + 1].inputs[0]]))
            .collect(),
    );
    let placement = ProcessPlacement::round_robin(16, 8);
    let a = build_matching_values(&nn, &multi, &placement);
    let b = build_matching_values(&nn, &multi, &placement);
    assert_eq!(a, b, "matching-value tables diverged across builds");
}

/// Incremental re-planning is part of the same replay contract: a
/// session folded twice over the same seed and the same randomized delta
/// sequence must produce bit-identical plans at every step — owners,
/// fill, and locality alike.
#[test]
fn replan_session_replays_bit_identically() {
    for world_seed in [0x1CE0u64, 0x1CE1, 0x1CE2] {
        // Record a randomized churn script against one world...
        let (mut nn, w) = cluster(world_seed);
        let scope: BTreeSet<ChunkId> = w.tasks.iter().map(|t| t.inputs[0]).collect();
        nn.take_events();
        let mut rng = StdRng::seed_from_u64(world_seed ^ 0xFACE);
        let mut deltas = Vec::new();
        for _ in 0..5 {
            match rng.gen_range(0..3) {
                0 => {
                    let alive = nn.alive_nodes();
                    let node = alive[rng.gen_range(0..alive.len())];
                    nn.fail_node(node).expect("fail alive node");
                    nn.repair_under_replicated(&mut rng).expect("repair");
                }
                1 => {
                    nn.add_node();
                    nn.rebalance(1.2, &mut rng);
                }
                _ => {
                    nn.rebalance(1.1, &mut rng);
                }
            }
            deltas.push(LayoutDelta::from_events(&nn.take_events(), |c| {
                scope.contains(&c)
            }));
        }
        // ...then fold it into two fresh, identical sessions.
        let run = || {
            let (nn0, w0) = cluster(world_seed);
            let planner = OpassPlanner::default();
            let placement = ProcessPlacement::one_per_node(8);
            let mut session = planner
                .session(&PlanRequest::single(&nn0, &w0, &placement).seed(21))
                .into_single()
                .expect("single session");
            deltas
                .iter()
                .map(|d| session.replan(d).clone())
                .collect::<Vec<_>>()
        };
        let a = run();
        let b = run();
        for (step, (pa, pb)) in a.iter().zip(&b).enumerate() {
            assert_eq!(
                pa.assignment.owners(),
                pb.assignment.owners(),
                "seed {world_seed:#x} step {step}: owners diverged"
            );
            assert_eq!(pa.matched_files, pb.matched_files, "step {step}");
            assert_eq!(pa.filled_files, pb.filled_files, "step {step}");
            assert_eq!(pa.locality, pb.locality, "step {step}");
        }
    }
}

/// End-to-end: namenode layout, planner inputs, and execution are all
/// reproducible from one seed — the contract PR 2's bit-exactness tests
/// assume and the linter enforces statically.
#[test]
fn full_pipeline_same_seed_same_result() {
    let build_and_run = || {
        let (nn, w) = cluster(0x5EED);
        execute(
            &nn,
            &w,
            &ProcessPlacement::one_per_node(8),
            TaskSource::Static(rank_interval(w.len(), 8)),
            &ExecConfig {
                seed: 99,
                ..ExecConfig::default()
            },
        )
    };
    let a = build_and_run();
    let b = build_and_run();
    assert_eq!(a, b);
    assert_eq!(a.records.len(), 24);
}
