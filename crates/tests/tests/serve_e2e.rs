//! End-to-end tests for the planning service: a real server on localhost
//! TCP, exercised through the blocking client.
//!
//! Concurrency-sensitive tests (shedding, coalescing) are built to hold
//! on a single-core machine: they use a world large enough that one cold
//! plan spans many scheduler slices, so overlap between requests is
//! structural rather than a preemption-timing accident.

use opass_core::dfs::{ChunkId, LayoutDelta, NodeId};
use opass_core::{OpassPlanner, PlanRequest};
use opass_serve::frame::{encode_frame, read_frame, write_frame};
use opass_serve::{
    serve, Client, ClientError, Request, Response, ServeSpec, ServerConfig, Strategy, World,
    MAX_FRAME,
};
use std::io::Write;
use std::net::TcpStream;

fn spec_small() -> ServeSpec {
    ServeSpec {
        n_nodes: 16,
        n_datasets: 3,
        chunks_per_dataset: 96,
        ..Default::default()
    }
}

/// One cold plan on this world takes many scheduler slices, so a burst
/// of concurrent requests reliably overlaps the in-flight computation
/// even when every thread shares one core.
fn spec_slow_plan() -> ServeSpec {
    ServeSpec {
        n_nodes: 64,
        n_datasets: 1,
        chunks_per_dataset: 4096,
        ..Default::default()
    }
}

fn boot(spec: ServeSpec, workers: usize, queue_depth: usize) -> opass_serve::ServerHandle {
    // Two shards everywhere: every contract below must hold when
    // requests are forwarded across the dataset→shard affinity boundary.
    boot_sharded(spec, workers, queue_depth, 2)
}

fn boot_sharded(
    spec: ServeSpec,
    workers: usize,
    queue_depth: usize,
    shards: usize,
) -> opass_serve::ServerHandle {
    serve(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers,
        queue_depth,
        shards,
        spec,
        ..ServerConfig::default()
    })
    .expect("server starts")
}

#[test]
fn remote_plan_is_byte_identical_to_in_process_planner() {
    let spec = spec_small();
    let handle = boot(spec, 2, 32);
    let mut client = Client::connect(handle.addr()).expect("connect");

    for dataset in 0..spec.n_datasets {
        for seed in [0u64, 7, 0xB17E] {
            let remote = client
                .plan(dataset, Strategy::Opass, seed)
                .expect("remote plan");

            // Rebuild the identical world locally and plan in-process.
            let world = World::new(spec);
            let snapshot = world.capture_layout(dataset).expect("dataset exists");
            let placement = spec.placement();
            let local = OpassPlanner::default()
                .plan(&PlanRequest::single_from_layout(&snapshot, &placement).seed(seed))
                .into_single()
                .expect("single plan");

            assert_eq!(
                remote.owners,
                local.assignment.owners().to_vec(),
                "dataset {dataset} seed {seed}: owners must match in-process planner"
            );
            assert_eq!(remote.matched_files, local.matched_files);
            assert_eq!(remote.filled_files, local.filled_files);
        }
    }
    handle.shutdown();
}

#[test]
fn layout_round_trip_reflects_the_served_world() {
    let spec = spec_small();
    let handle = boot(spec, 2, 32);
    let mut client = Client::connect(handle.addr()).expect("connect");

    let reply = client.layout(1).expect("layout");
    assert_eq!(reply.dataset, 1);
    assert_eq!(reply.entries.len(), spec.chunks_per_dataset);
    for entry in &reply.entries {
        assert_eq!(
            entry.locations.len(),
            spec.replication as usize,
            "every chunk carries one location per replica"
        );
        assert_eq!(entry.size, spec.chunk_size);
        for &node in &entry.locations {
            assert!((node as usize) < spec.n_nodes, "locations are node ids");
        }
    }

    let err = client.layout(spec.n_datasets).expect_err("unknown dataset");
    assert!(matches!(err, ClientError::Server(_)));
    handle.shutdown();
}

#[test]
fn caching_and_invalidation_follow_the_generation() {
    let spec = spec_small();
    let handle = boot(spec, 2, 32);
    let mut client = Client::connect(handle.addr()).expect("connect");

    let first = client.plan(0, Strategy::Opass, 9).expect("cold plan");
    assert!(!first.cached, "first plan computes");
    let second = client.plan(0, Strategy::Opass, 9).expect("warm plan");
    assert!(second.cached, "second plan hits the cache");
    assert_eq!(first.owners, second.owners);

    let generation = client.invalidate().expect("invalidate");
    assert_eq!(generation, first.generation + 1);

    let third = client.plan(0, Strategy::Opass, 9).expect("recomputed plan");
    assert!(!third.cached, "invalidation makes the cached plan stale");
    assert_eq!(third.generation, generation);
    assert_eq!(
        first.owners, third.owners,
        "same spec and seed: recomputation is deterministic"
    );

    let stats = client.stats().expect("stats");
    assert!(stats.cache_hits >= 1);
    assert!(stats.cache_misses >= 2);
    assert!(stats.cache_invalidated >= 1);
    assert_eq!(stats.generation, generation);
    handle.shutdown();
}

#[test]
fn delta_invalidation_repairs_in_place_and_spares_other_datasets() {
    let spec = spec_small();
    let handle = boot(spec, 2, 32);
    let mut client = Client::connect(handle.addr()).expect("connect");

    let first = client.plan(0, Strategy::Opass, 9).expect("cold plan d0");
    let other = client.plan(1, Strategy::Opass, 9).expect("cold plan d1");
    assert!(!first.cached && !first.repaired);
    assert!(!other.cached);

    // Drop one replica of dataset 0's first chunk, as a delta.
    let layout = client.layout(0).expect("layout d0");
    let delta = LayoutDelta {
        replicas_dropped: vec![(
            ChunkId(layout.entries[0].chunk),
            NodeId(layout.entries[0].locations[0] as u32),
        )],
        ..Default::default()
    };
    let generation = client
        .invalidate_with_delta(0, &delta)
        .expect("delta invalidate");
    assert_eq!(generation, first.generation + 1);

    // Dataset 0's plan is repaired — not recomputed — and agrees with a
    // from-scratch solve on the counts and locality the paper cares
    // about (the concrete owners may be a different maximum matching).
    let repaired = client.plan(0, Strategy::Opass, 9).expect("repaired plan");
    assert!(!repaired.cached, "the delta staled the cached plan");
    assert!(repaired.repaired, "the stale plan was repaired in place");
    assert_eq!(repaired.generation, generation);
    let world = World::new(spec);
    world
        .invalidate_dataset(0, &delta)
        .expect("local delta applies");
    let snapshot = world.capture_layout(0).expect("dataset exists");
    let placement = spec.placement();
    let scratch = OpassPlanner::default()
        .plan(&PlanRequest::single_from_layout(&snapshot, &placement).seed(9))
        .into_single()
        .expect("single plan");
    assert_eq!(repaired.matched_files, scratch.matched_files);
    assert_eq!(repaired.filled_files, scratch.filled_files);
    assert_eq!(
        repaired.local_task_fraction,
        scratch.locality.task_fraction()
    );
    assert_eq!(
        repaired.local_byte_fraction,
        scratch.locality.byte_fraction()
    );

    // Dataset 1 was untouched: still a cache hit at its old generation.
    let still_warm = client.plan(1, Strategy::Opass, 9).expect("warm plan d1");
    assert!(still_warm.cached, "unrelated datasets are not flushed");
    assert_eq!(still_warm.generation, other.generation);

    // A second repair chains off the repaired session.
    let generation = client
        .invalidate_with_delta(0, &delta)
        .expect("second delta invalidate");
    let again = client.plan(0, Strategy::Opass, 9).expect("repaired again");
    assert!(again.repaired);
    assert_eq!(again.generation, generation);

    let stats = client.stats().expect("stats");
    assert!(stats.repaired >= 2, "both repairs counted");
    assert_eq!(stats.repair_us.count, stats.repaired);
    assert!(
        stats.cold_plan_us.count >= 2,
        "the two cold plans were timed"
    );
    handle.shutdown();
}

#[test]
fn saturated_queue_sheds_with_typed_overloaded() {
    // One worker, queue of one, and plans that take many milliseconds:
    // a burst of eight distinct keys cannot all be admitted, and the
    // refusals must be typed `Overloaded`, never a hang or a dropped
    // connection.
    let handle = boot(spec_slow_plan(), 1, 1);
    let addr = handle.addr().to_string();

    const BURST: usize = 8;
    let mut clients: Vec<Client> = (0..BURST)
        .map(|_| {
            let mut c = Client::connect(&addr).expect("connect");
            c.ping().expect("ping");
            c
        })
        .collect();

    let barrier = std::sync::Barrier::new(BURST);
    let outcomes: Vec<Result<_, ClientError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = clients
            .iter_mut()
            .enumerate()
            .map(|(i, c)| {
                let barrier = &barrier;
                scope.spawn(move || {
                    barrier.wait();
                    c.plan(0, Strategy::Opass, i as u64)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("burst thread"))
            .collect()
    });

    let served = outcomes.iter().filter(|r| r.is_ok()).count();
    let shed = outcomes
        .iter()
        .filter(|r| matches!(r, Err(ClientError::Overloaded { .. })))
        .count();
    assert_eq!(
        served + shed,
        BURST,
        "every request is either served or typed-shed: {outcomes:?}"
    );
    assert!(served >= 1, "the admitted request completes");
    assert!(
        shed >= BURST - 2,
        "with one worker and a queue of one, at most two of {BURST} can be admitted"
    );

    let mut control = Client::connect(&addr).expect("control connect");
    let stats = control.stats().expect("stats");
    assert_eq!(stats.shed, shed as u64);
    assert_eq!(stats.queue_capacity, 1);
    assert_eq!(stats.workers, 1);
    handle.shutdown();
}

#[test]
fn stampede_after_invalidation_coalesces_to_one_computation() {
    let handle = boot(spec_slow_plan(), 4, 64);
    let addr = handle.addr().to_string();
    let mut control = Client::connect(&addr).expect("control connect");

    const BURST: usize = 8;
    let mut coalesced = 0u64;
    for attempt in 0..16u64 {
        control.invalidate().expect("invalidate");
        let seed = 500_000 + attempt;
        let mut clients: Vec<Client> = (0..BURST)
            .map(|_| {
                let mut c = Client::connect(&addr).expect("connect");
                c.ping().expect("ping");
                c
            })
            .collect();
        let barrier = std::sync::Barrier::new(BURST);
        let replies: Vec<_> = std::thread::scope(|scope| {
            let handles: Vec<_> = clients
                .iter_mut()
                .map(|c| {
                    let barrier = &barrier;
                    scope.spawn(move || {
                        barrier.wait();
                        c.plan(0, Strategy::Opass, seed).expect("burst plan")
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("burst thread"))
                .collect()
        });
        let owners = &replies[0].owners;
        assert!(
            replies.iter().all(|r| &r.owners == owners),
            "every stampeding client sees the same plan"
        );
        coalesced = control.stats().expect("stats").coalesced;
        if coalesced > 0 {
            break;
        }
    }
    assert!(
        coalesced > 0,
        "concurrent same-key requests must share the leader's computation"
    );
    handle.shutdown();
}

#[test]
fn garbage_frames_draw_typed_errors_without_wedging_the_server() {
    let spec = spec_small();
    let handle = boot(spec, 2, 32);
    let addr = handle.addr().to_string();

    // An oversized frame header is refused with a typed error reply.
    let mut raw = TcpStream::connect(&addr).expect("raw connect");
    let oversized = ((MAX_FRAME + 1) as u32).to_be_bytes();
    raw.write_all(&oversized).expect("write oversized header");
    let reply = read_frame(&mut raw).expect("error reply frame");
    let response = Response::from_json(&reply).expect("decodes");
    assert!(matches!(response, Response::Error { .. }));

    // A well-framed body that is not JSON draws the same treatment.
    let mut raw = TcpStream::connect(&addr).expect("raw connect");
    let body = b"not json at all";
    raw.write_all(&(body.len() as u32).to_be_bytes())
        .expect("header");
    raw.write_all(body).expect("body");
    let reply = read_frame(&mut raw).expect("error reply frame");
    let response = Response::from_json(&reply).expect("decodes");
    assert!(matches!(response, Response::Error { .. }));

    // A valid envelope with an unknown request type as well.
    let mut raw = TcpStream::connect(&addr).expect("raw connect");
    let json = opass_json::Json::parse(r#"{"v":1,"type":"frobnicate"}"#).expect("literal json");
    write_frame(&mut raw, &json).expect("write frame");
    let reply = read_frame(&mut raw).expect("error reply frame");
    let response = Response::from_json(&reply).expect("decodes");
    assert!(matches!(response, Response::Error { .. }));

    // None of that wedged the server: a fresh client still gets plans.
    let mut client = Client::connect(&addr).expect("connect");
    let plan = client.plan(0, Strategy::Opass, 1).expect("plan");
    assert!(!plan.owners.is_empty());
    handle.shutdown();
}

#[test]
fn frames_delivered_one_byte_at_a_time_still_serve() {
    let spec = spec_small();
    let handle = boot(spec, 2, 32);
    let addr = handle.addr().to_string();

    // Dribble a ping and then a plan request one byte per segment. The
    // reactor's frame buffer must reassemble across arbitrarily many
    // partial reads without consuming a thread per stalled connection.
    let mut raw = TcpStream::connect(&addr).expect("raw connect");
    raw.set_nodelay(true).expect("nodelay");
    for request in [
        Request::Ping,
        Request::Plan {
            dataset: 0,
            strategy: Strategy::Opass,
            seed: 42,
        },
    ] {
        let bytes = encode_frame(&request.to_json()).expect("encode request");
        for byte in bytes {
            raw.write_all(&[byte]).expect("write one byte");
            raw.flush().expect("flush");
            std::thread::sleep(std::time::Duration::from_micros(200));
        }
        let reply = read_frame(&mut raw).expect("reply frame");
        let response = Response::from_json(&reply).expect("decodes");
        match response {
            Response::Pong { .. } => {}
            Response::Plan(p) => assert_eq!(p.seed, 42),
            other => panic!("unexpected reply {other:?}"),
        }
    }
    handle.shutdown();
}

#[test]
fn pipelined_requests_reply_in_request_order() {
    let spec = spec_small();
    let handle = boot(spec, 2, 32);
    let addr = handle.addr().to_string();

    // One burst write carrying interleaved pings and plans with distinct
    // seeds. Replies complete out of order inside the server (cache hits
    // beat cold plans, pings beat everything) but must leave the
    // connection strictly in request order — the protocol has no ids.
    let seeds: Vec<u64> = (0..12).map(|i| 9_000 + i).collect();
    let mut burst = Vec::new();
    for &seed in &seeds {
        burst.extend(encode_frame(&Request::Ping.to_json()).expect("encode ping"));
        burst.extend(
            encode_frame(
                &Request::Plan {
                    dataset: (seed as usize) % spec.n_datasets,
                    strategy: Strategy::Opass,
                    seed,
                }
                .to_json(),
            )
            .expect("encode plan"),
        );
    }
    let mut raw = TcpStream::connect(&addr).expect("raw connect");
    raw.write_all(&burst).expect("write burst");
    for &seed in &seeds {
        let pong = Response::from_json(&read_frame(&mut raw).expect("pong frame")).expect("pong");
        assert!(
            matches!(pong, Response::Pong { .. }),
            "seed {seed}: pong first"
        );
        let plan = Response::from_json(&read_frame(&mut raw).expect("plan frame")).expect("plan");
        match plan {
            Response::Plan(p) => assert_eq!(p.seed, seed, "replies keep request order"),
            other => panic!("expected plan for seed {seed}, got {other:?}"),
        }
    }
    handle.shutdown();
}

#[test]
fn slow_reader_does_not_stall_its_shard() {
    // Layout replies on this world are hundreds of kilobytes; a reader
    // that never drains them fills the kernel send buffer, forcing the
    // shard's write state machine to park the connection mid-frame.
    let spec = ServeSpec {
        n_nodes: 16,
        n_datasets: 2,
        chunks_per_dataset: 8192,
        ..Default::default()
    };
    // A single shard: the slow reader and the live client share it, so
    // any blocking write in the reactor would stall the client below.
    let handle = boot_sharded(spec, 2, 64, 1);
    let addr = handle.addr().to_string();

    let mut slow = TcpStream::connect(&addr).expect("slow connect");
    let layout_req = encode_frame(&Request::Layout { dataset: 0 }.to_json()).expect("encode");
    let mut backlog = Vec::new();
    for _ in 0..48 {
        backlog.extend_from_slice(&layout_req);
    }
    // Tens of megabytes of replies now owe this connection; read none.
    slow.write_all(&backlog).expect("write layout burst");

    let mut live = Client::connect(&addr).expect("live connect");
    let first = live.plan(1, Strategy::Opass, 1).expect("cold plan");
    for _ in 0..100 {
        live.ping().expect("ping while slow reader is parked");
        let warm = live.plan(1, Strategy::Opass, 1).expect("warm plan");
        assert!(warm.cached, "the shard keeps serving its cache slice");
        assert_eq!(warm.owners, first.owners);
    }

    // The slow reader eventually drains one reply intact: the write
    // queue resumed mid-frame across however many short writes it took.
    let reply =
        Response::from_json(&read_frame(&mut slow).expect("first layout frame")).expect("decodes");
    match reply {
        Response::Layout(l) => assert_eq!(l.entries.len(), spec.chunks_per_dataset),
        other => panic!("expected layout, got {other:?}"),
    }
    drop(slow);
    handle.shutdown();
}

#[test]
fn stats_expose_per_shard_counters_in_order() {
    let spec = spec_small();
    let handle = boot(spec, 2, 32);
    let mut client = Client::connect(handle.addr()).expect("connect");

    // Datasets 0 and 1 live on different shards (dataset % 2); a single
    // connection exercises both the affine and the forwarded path.
    client.plan(0, Strategy::Opass, 5).expect("plan d0");
    client.plan(1, Strategy::Opass, 5).expect("plan d1");
    client.layout(0).expect("layout d0");

    let stats = client.stats().expect("stats");
    assert_eq!(stats.shards.len(), 2, "one entry per shard");
    for (i, shard) in stats.shards.iter().enumerate() {
        assert_eq!(shard.shard, i, "ascending shard order is guaranteed");
    }
    assert_eq!(
        stats.shards.iter().map(|s| s.accepted).sum::<u64>(),
        1,
        "one connection accepted"
    );
    assert!(
        stats.shards.iter().map(|s| s.requests).sum::<u64>() >= 4,
        "frames counted on the owning shard"
    );
    assert!(
        stats.shards.iter().map(|s| s.forwarded).sum::<u64>() >= 1,
        "a request crossed the affinity boundary"
    );
    assert_eq!(
        stats.shards.iter().map(|s| s.latency_us.count).sum::<u64>(),
        stats.latency_count,
        "per-shard latency histograms partition the merged one"
    );
    assert_eq!(stats.shards.iter().map(|s| s.pending).sum::<usize>(), 0);
    handle.shutdown();
}

#[test]
fn graceful_shutdown_drains_and_stops_accepting() {
    let spec = spec_small();
    let handle = boot(spec, 2, 8);
    let addr = handle.addr().to_string();
    let mut client = Client::connect(&addr).expect("connect");
    client.plan(0, Strategy::Opass, 3).expect("plan");
    client.shutdown().expect("shutdown acknowledged");
    handle.wait();
    assert!(
        Client::connect(&addr).is_err() || {
            // The OS may accept briefly after close on some platforms;
            // a request must then fail.
            let mut c = Client::connect(&addr).expect("raced connect");
            c.ping().is_err()
        },
        "a drained server accepts no new work"
    );
}
