//! Cross-crate property tests: arbitrary workloads and assignments through
//! the full executor must conserve work, respect causality, and stay
//! deterministic. Cases are drawn from seeded `StdRng` loops so every run
//! exercises the same instances.

use opass_core::planner::OpassPlanner;
use opass_core::request::PlanRequest;
use opass_dfs::{DatasetSpec, DfsConfig, Namenode, Placement, ReplicaChoice};
use opass_matching::Assignment;
use opass_runtime::{execute, ExecConfig, ProcessPlacement, TaskSource};
use opass_workloads::{Task, Workload};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds a namenode + single-input workload from compact parameters.
fn build(n_nodes: usize, n_chunks: usize, replication: u32, seed: u64) -> (Namenode, Workload) {
    let mut nn = Namenode::new(n_nodes, DfsConfig { replication });
    let mut rng = StdRng::seed_from_u64(seed);
    let ds = nn.create_dataset(
        &DatasetSpec::uniform("prop", n_chunks, 8 << 20),
        &Placement::Random,
        &mut rng,
    );
    let tasks = nn
        .dataset(ds)
        .expect("created")
        .chunks
        .iter()
        .map(|&c| Task::single(c))
        .collect();
    (nn, Workload::new("prop", tasks))
}

#[test]
fn executor_conserves_reads_and_bytes() {
    let mut rng = StdRng::seed_from_u64(0xE1);
    for _ in 0..24 {
        let n_nodes = rng.gen_range(3usize..12);
        let chunks_per = rng.gen_range(1usize..6);
        let owners_seed = rng.gen_range(0u64..500);
        let n_chunks = n_nodes * chunks_per;
        let (nn, workload) = build(n_nodes, n_chunks, 3, owners_seed);
        // Arbitrary (possibly unbalanced) deterministic assignment.
        let owners: Vec<usize> = (0..n_chunks)
            .map(|t| (t.wrapping_mul(7).wrapping_add(owners_seed as usize)) % n_nodes)
            .collect();
        let assignment = Assignment::from_owners(owners, n_nodes);
        let run = execute(
            &nn,
            &workload,
            &ProcessPlacement::one_per_node(n_nodes),
            TaskSource::Static(assignment),
            &ExecConfig {
                seed: owners_seed,
                ..Default::default()
            },
        );
        assert_eq!(run.records.len(), n_chunks);
        let total: u64 = run.served_bytes.iter().sum();
        assert_eq!(total, n_chunks as u64 * (8 << 20));
        // Causality: completion after issue, all within the makespan.
        for r in &run.records {
            assert!(r.completed_at >= r.issued_at);
            assert!(r.completed_at <= run.makespan + 1e-9);
        }
        // Every read sourced from an actual replica holder.
        for r in &run.records {
            let locations = nn.locate(r.chunk).expect("chunk exists");
            assert!(locations.contains(&r.source));
        }
    }
}

#[test]
fn planner_locality_never_below_baseline_for_same_layout() {
    let mut rng = StdRng::seed_from_u64(0xE2);
    for _ in 0..24 {
        let n_nodes = rng.gen_range(3usize..10);
        let chunks_per = rng.gen_range(1usize..5);
        let seed = rng.gen_range(0u64..300);
        let n_chunks = n_nodes * chunks_per;
        let (nn, workload) = build(n_nodes, n_chunks, 3, seed);
        let placement = ProcessPlacement::one_per_node(n_nodes);
        let plan = OpassPlanner::default()
            .plan(&PlanRequest::single(&nn, &workload, &placement).seed(seed))
            .into_single()
            .expect("single plan");
        assert!(plan.assignment.is_balanced());

        // Matched files are an upper bound for what any balanced
        // assignment achieves; rank-interval is one such assignment.
        let baseline = opass_runtime::baseline::rank_interval(n_chunks, n_nodes);
        let graph = opass_core::build_locality_graph(&nn, &workload, &placement);
        let sizes = vec![8u64 << 20; n_chunks];
        let base = opass_matching::locality_report(&baseline, &graph, &sizes);
        assert!(
            plan.matched_files >= base.local_tasks,
            "opass {} < baseline {}",
            plan.matched_files,
            base.local_tasks
        );
    }
}

#[test]
fn replica_choice_policies_always_pick_holders() {
    let mut rng = StdRng::seed_from_u64(0xE3);
    for _ in 0..24 {
        let n_nodes = rng.gen_range(3usize..10);
        let seed = rng.gen_range(0u64..300);
        let (nn, workload) = build(n_nodes, n_nodes * 2, 2, seed);
        for choice in [
            ReplicaChoice::PreferLocalRandom,
            ReplicaChoice::RandomReplica,
        ] {
            let run = execute(
                &nn,
                &workload,
                &ProcessPlacement::one_per_node(n_nodes),
                TaskSource::Static(opass_runtime::baseline::rank_interval(
                    workload.len(),
                    n_nodes,
                )),
                &ExecConfig {
                    replica_choice: choice,
                    seed,
                    ..Default::default()
                },
            );
            for r in &run.records {
                let locations = nn.locate(r.chunk).expect("chunk exists");
                assert!(locations.contains(&r.source));
            }
        }
    }
}
