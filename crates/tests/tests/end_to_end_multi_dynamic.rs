//! Integration: multi-input (Figure 9/10) and dynamic (Figure 11)
//! pipelines in miniature.

use opass_core::{ClusterSpec, Dynamic, Experiment, MultiData, Strategy};

fn multi(m: usize, seed: u64) -> MultiData {
    MultiData {
        cluster: ClusterSpec {
            n_nodes: m,
            seed,
            ..MultiData::default().cluster
        },
        tasks_per_process: 5,
        ..Default::default()
    }
}

fn dynamic(m: usize, seed: u64) -> Dynamic {
    Dynamic {
        cluster: ClusterSpec {
            n_nodes: m,
            seed,
            ..Dynamic::default().cluster
        },
        tasks_per_process: 5,
        compute_median: 0.3,
        compute_sigma: 1.0,
    }
}

#[test]
fn multi_input_improvement_is_partial() {
    // Paper Section V-A2: Opass improves multi-input reads, but less than
    // single-input, because a task's three inputs rarely share a node.
    let exp = multi(16, 2);
    let base = exp.run(Strategy::RankInterval).unwrap();
    let opass = exp.run(Strategy::Opass).unwrap();

    assert!(opass.result.local_byte_fraction() > base.result.local_byte_fraction() + 0.2);
    // Partial: some bytes still remote.
    assert!(opass.result.local_byte_fraction() < 0.95);
    assert!(opass.result.io_summary().mean < base.result.io_summary().mean);
}

#[test]
fn multi_input_reads_three_chunks_per_task() {
    let exp = multi(8, 3);
    let run = exp.run(Strategy::Opass).unwrap();
    assert_eq!(run.result.records.len(), 8 * 5 * 3);
    // Every task contributes exactly its three distinct inputs.
    let mut per_task = std::collections::HashMap::new();
    for r in &run.result.records {
        per_task
            .entry(r.task)
            .or_insert_with(Vec::new)
            .push(r.chunk);
    }
    for (task, chunks) in per_task {
        assert_eq!(chunks.len(), 3, "task {task}");
        let set: std::collections::HashSet<_> = chunks.iter().collect();
        assert_eq!(set.len(), 3, "task {task} has duplicate inputs");
    }
}

#[test]
fn dynamic_guided_beats_fifo_on_io() {
    let exp = dynamic(16, 4);
    let fifo = exp.run(Strategy::Fifo).unwrap();
    let guided = exp.run(Strategy::OpassGuided).unwrap();

    assert!(
        guided.result.local_fraction() > 0.7,
        "{}",
        guided.result.local_fraction()
    );
    assert!(fifo.result.local_fraction() < 0.5);
    assert!(guided.result.io_summary().mean < fifo.result.io_summary().mean);
}

#[test]
fn dynamic_completes_every_task_under_both_schedulers() {
    let exp = dynamic(12, 9);
    for strategy in [Strategy::Fifo, Strategy::OpassGuided] {
        let run = exp.run(strategy).unwrap();
        assert_eq!(run.result.records.len(), 12 * 5, "{strategy:?}");
    }
}

#[test]
fn dynamic_irregular_compute_spreads_finish_times() {
    // With heavy-tailed compute, some workers finish long before others
    // would under a static split; the dynamic dispatcher must still keep
    // the makespan below the static worst case of (max task) * quota.
    let exp = dynamic(8, 12);
    let run = exp.run(Strategy::OpassGuided).unwrap();
    let max_io_plus_compute = run
        .result
        .records
        .iter()
        .map(|r| r.completed_at - r.issued_at)
        .fold(0.0f64, f64::max);
    assert!(run.result.makespan > max_io_plus_compute);
    assert!(run.result.makespan.is_finite());
}
