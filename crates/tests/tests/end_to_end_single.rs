//! Integration: the single-data pipeline (paper Figures 7 & 8 in
//! miniature). Asserts the paper's qualitative claims — who wins, and
//! roughly by how much — across cluster sizes and seeds.

use opass_core::{ClusterSpec, Experiment, SingleData, Strategy};

fn experiment(m: usize, seed: u64) -> SingleData {
    SingleData {
        cluster: ClusterSpec {
            n_nodes: m,
            seed,
            ..Default::default()
        },
        chunks_per_process: 5,
    }
}

#[test]
fn opass_wins_across_cluster_sizes() {
    for m in [8usize, 16, 32] {
        let exp = experiment(m, 0xF00D ^ m as u64);
        let base = exp.run(Strategy::RankInterval).unwrap();
        let opass = exp.run(Strategy::Opass).unwrap();

        // Locality flips from mostly-remote to mostly-local.
        assert!(
            base.result.local_fraction() < 0.55,
            "m={m}: baseline locality {}",
            base.result.local_fraction()
        );
        assert!(
            opass.result.local_fraction() > 0.9,
            "m={m}: opass locality {}",
            opass.result.local_fraction()
        );
        // Average I/O and makespan improve.
        assert!(
            opass.result.io_summary().mean < base.result.io_summary().mean,
            "m={m}"
        );
        assert!(opass.result.makespan < base.result.makespan, "m={m}");
    }
}

#[test]
fn baseline_imbalance_grows_with_cluster_size() {
    // Paper Fig. 7(a): the max/min I/O ratio worsens as the cluster grows.
    let small = experiment(8, 1).run(Strategy::RankInterval).unwrap();
    let large = experiment(48, 1).run(Strategy::RankInterval).unwrap();
    assert!(
        large.result.io_summary().max_over_min() > small.result.io_summary().max_over_min(),
        "large {} vs small {}",
        large.result.io_summary().max_over_min(),
        small.result.io_summary().max_over_min()
    );
}

#[test]
fn opass_balances_served_bytes() {
    // Paper Fig. 8: with Opass every node serves about chunks_per_process
    // chunks; without, the spread is wide.
    let exp = experiment(32, 7);
    let base = exp.run(Strategy::RankInterval).unwrap();
    let opass = exp.run(Strategy::Opass).unwrap();
    let served_base = base.result.served_summary(32);
    let served_opass = opass.result.served_summary(32);
    assert!(
        served_opass.max - served_opass.min <= 2.0 * 64.0 * 1024.0 * 1024.0,
        "opass served spread {}..{}",
        served_opass.min,
        served_opass.max
    );
    assert!(
        served_base.max - served_base.min > served_opass.max - served_opass.min,
        "baseline must be more imbalanced"
    );
}

#[test]
fn every_chunk_read_exactly_once() {
    let exp = experiment(16, 3);
    for strategy in [
        Strategy::RankInterval,
        Strategy::RandomAssign,
        Strategy::Opass,
    ] {
        let run = exp.run(strategy).unwrap();
        let mut chunks: Vec<u64> = run.result.records.iter().map(|r| r.chunk.0).collect();
        chunks.sort_unstable();
        chunks.dedup();
        assert_eq!(chunks.len(), 16 * 5, "{strategy:?}");
        // Conservation: served bytes equal the dataset volume.
        let total: u64 = run.result.served_bytes.iter().sum();
        assert_eq!(total, (16 * 5) as u64 * (64 << 20), "{strategy:?}");
    }
}

#[test]
fn runs_are_deterministic_per_seed_and_differ_across_seeds() {
    let a = experiment(12, 5).run(Strategy::Opass).unwrap();
    let b = experiment(12, 5).run(Strategy::Opass).unwrap();
    assert_eq!(a.result, b.result);
    let c = experiment(12, 6).run(Strategy::Opass).unwrap();
    assert_ne!(a.result, c.result, "different seeds must differ");
}

#[test]
fn opass_io_times_are_tight_around_local_read_time() {
    // Paper Fig. 7(b): with Opass the avg I/O stays ~0.9 s with tiny
    // variance at every cluster size.
    for m in [8usize, 24, 40] {
        let run = experiment(m, 11).run(Strategy::Opass).unwrap();
        let s = run.result.io_summary();
        assert!((s.mean - 0.9).abs() < 0.3, "m={m} mean {}", s.mean);
        assert!(s.stddev < 0.5, "m={m} stddev {}", s.stddev);
    }
}
