//! Property: component-parallel repair is **bit-identical** to the
//! sequential reference kernel — not merely an equally-good matching.
//!
//! Three layers, each randomized over seeds and churn schedules and run
//! at 1, 2, and 8 threads:
//!
//! 1. matcher level — staged churn on an [`IncrementalMatcher`], then
//!    `repair_batch_threads(t)` vs `repair_batch()` on clones: the dense
//!    owner vectors must be byte-equal;
//! 2. session level — [`SingleDataSession`]s at different thread counts
//!    absorb the same delta stream (replica churn plus file adds and
//!    removals): every step's rendered plan must be identical down to
//!    its `Debug` bytes, and the evolved snapshots must agree;
//! 3. fanout level — [`replan_sessions_parallel`] over a mixed-thread
//!    session fleet must leave every session exactly where sequential
//!    replans leave its reference twin.

use opass_core::dfs::{
    ChunkLayout, DatasetSpec, DfsConfig, LayoutDelta, LayoutSnapshot, Namenode, NodeId,
};
use opass_core::{replan_sessions_parallel, OpassPlanner, PlanRequest, SingleDataSession};
use opass_matching::{BipartiteGraph, IncrementalMatcher, Objective, NONE};
use opass_runtime::ProcessPlacement;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CHUNK: u64 = 64 << 20;
const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// An island-partitioned locality graph: `islands` blocks of `per`
/// procs, each file wired to `r` procs of its own island — many
/// connected components, the shape the parallel engine splits on.
fn island_graph(
    islands: usize,
    per: usize,
    n_files: usize,
    r: usize,
    rng: &mut StdRng,
) -> BipartiteGraph {
    let mut g = BipartiteGraph::new(islands * per, n_files);
    for f in 0..n_files {
        let base = (f % islands) * per;
        let mut placed = 0;
        while placed < r {
            let p = base + rng.gen_range(0..per);
            if g.weight(p, f).is_none() {
                g.add_edge(p, f, CHUNK);
                placed += 1;
            }
        }
    }
    g
}

/// Stages one churn batch: `touched` files each lose their first edge
/// and gain a fresh one inside their island.
fn stage_churn(
    inc: &mut IncrementalMatcher,
    islands: usize,
    per: usize,
    touched: usize,
    rng: &mut StdRng,
) {
    let n = inc.graph().n_files();
    for _ in 0..touched {
        let f = rng.gen_range(0..n);
        let base = (f % islands) * per;
        let first = inc.graph().procs_of(f).next();
        if let Some((p, _)) = first {
            inc.stage_remove_edge(p, f);
        }
        for _ in 0..8 {
            let p = base + rng.gen_range(0..per);
            if inc.graph().weight(p, f).is_none() {
                inc.stage_add_edge(p, f, CHUNK);
                break;
            }
        }
    }
}

#[test]
fn matcher_parallel_repair_is_bit_identical_across_thread_counts() {
    for seed in 0..4u64 {
        for &(touched, objective) in &[
            (2usize, Objective::MatchCount),
            (40, Objective::MatchCount),
            (40, Objective::MatchedBytes),
            (400, Objective::MatchedBytes),
        ] {
            let mut rng = StdRng::seed_from_u64(seed);
            let base = IncrementalMatcher::new(island_graph(8, 4, 2000, 2, &mut rng), objective);
            let mut reference: Option<Vec<u32>> = None;
            for &threads in &THREAD_COUNTS {
                let mut inc = base.clone();
                let mut churn_rng = StdRng::seed_from_u64(seed ^ 0x5eed);
                stage_churn(&mut inc, 8, 4, touched, &mut churn_rng);
                inc.repair_batch_threads(threads);
                let owners = inc.owners_dense().to_vec();
                assert!(
                    owners.iter().any(|&o| o != NONE),
                    "matching must be non-trivial"
                );
                match &reference {
                    None => reference = Some(owners),
                    Some(want) => assert_eq!(
                        want, &owners,
                        "seed {seed}, touched {touched}, {objective:?}: \
                         {threads}-thread repair diverged from sequential"
                    ),
                }
            }
        }
    }
}

/// An island-placed snapshot over `islands * per` nodes.
fn island_snapshot(islands: usize, per: usize, chunks: usize, rng: &mut StdRng) -> LayoutSnapshot {
    let mut nn = Namenode::new(islands * per, DfsConfig { replication: 2 });
    let locations: Vec<Vec<NodeId>> = (0..chunks)
        .map(|i| {
            let base = (i % islands) * per;
            let a = base + rng.gen_range(0..per);
            let mut b = base + rng.gen_range(0..per);
            while b == a {
                b = base + rng.gen_range(0..per);
            }
            vec![NodeId(a as u32), NodeId(b as u32)]
        })
        .collect();
    let spec = DatasetSpec::uniform("islands", chunks, CHUNK);
    let ds = nn.create_dataset_placed(&spec, locations);
    let chunk_ids = nn.dataset(ds).expect("dataset exists").chunks.clone();
    LayoutSnapshot::capture(&nn, &chunk_ids)
}

/// A randomized delta against `snapshot`: replica churn on ~`churn`
/// chunks, plus (schedule permitting) a file removal and a brand-new
/// file with island-local replicas.
fn random_delta(
    snapshot: &LayoutSnapshot,
    islands: usize,
    per: usize,
    churn: usize,
    with_file_churn: bool,
    next_chunk_id: &mut u64,
    rng: &mut StdRng,
) -> LayoutDelta {
    let n = snapshot.entries().len();
    let mut delta = LayoutDelta::default();
    for _ in 0..churn.max(1) {
        let ci = rng.gen_range(0..n);
        let entry = &snapshot.entries()[ci];
        let base = (ci % islands) * per;
        if entry.locations.len() > 1 {
            delta
                .replicas_dropped
                .push((entry.chunk, entry.locations[0]));
        }
        for _ in 0..8 {
            let node = NodeId((base + rng.gen_range(0..per)) as u32);
            if !entry.locations.contains(&node) {
                delta.replicas_added.push((entry.chunk, node));
                break;
            }
        }
    }
    if with_file_churn {
        let victim = &snapshot.entries()[rng.gen_range(0..n)];
        delta.files_removed.push(victim.chunk);
        let base = rng.gen_range(0..islands) * per;
        delta.files_added.push(ChunkLayout {
            chunk: opass_core::dfs::ChunkId(*next_chunk_id),
            size: CHUNK,
            locations: vec![NodeId(base as u32), NodeId((base + 1) as u32)],
        });
        *next_chunk_id += 1;
    }
    delta.normalize();
    delta
}

#[test]
fn session_replans_are_bit_identical_across_thread_counts() {
    let (islands, per, chunks) = (8usize, 4usize, 1500usize);
    for seed in 0..3u64 {
        for with_file_churn in [false, true] {
            let mut rng = StdRng::seed_from_u64(seed);
            let snapshot = island_snapshot(islands, per, chunks, &mut rng);
            let placement = ProcessPlacement::one_per_node(islands * per);
            let planner = OpassPlanner::default();
            let mut sessions: Vec<SingleDataSession> = THREAD_COUNTS
                .iter()
                .map(|&t| {
                    planner
                        .session(
                            &PlanRequest::single_from_layout(&snapshot, &placement)
                                .seed(seed)
                                .threads(t),
                        )
                        .into_single()
                        .expect("single session")
                })
                .collect();

            let mut shadow = snapshot.clone();
            let mut next_chunk_id = 10_000_000u64;
            let mut delta_rng = StdRng::seed_from_u64(seed ^ 0xD417A);
            for step in 0..10 {
                let delta = random_delta(
                    &shadow,
                    islands,
                    per,
                    chunks / 100,
                    with_file_churn,
                    &mut next_chunk_id,
                    &mut delta_rng,
                );
                shadow.apply_delta(&delta);
                let reference = format!("{:?}", sessions[0].replan(&delta));
                for (i, session) in sessions.iter_mut().enumerate().skip(1) {
                    let plan = session.replan(&delta);
                    assert_eq!(
                        reference,
                        format!("{plan:?}"),
                        "seed {seed}, file_churn {with_file_churn}, step {step}: \
                         {}-thread plan bytes diverged from sequential",
                        THREAD_COUNTS[i]
                    );
                }
            }
            // The evolved snapshots (and the shadow they were checked
            // against) must all be the same world.
            for session in &sessions {
                assert_eq!(session.snapshot(), &shadow, "snapshots must converge");
                assert_eq!(session.replans(), 10);
            }
        }
    }
}

#[test]
fn parallel_fanout_leaves_sessions_where_sequential_replans_do() {
    let (islands, per, chunks) = (4usize, 4usize, 600usize);
    for seed in 0..3u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let snapshot = island_snapshot(islands, per, chunks, &mut rng);
        let placement = ProcessPlacement::one_per_node(islands * per);
        let planner = OpassPlanner::default();
        let start = |s: u64, threads: usize| {
            planner
                .session(
                    &PlanRequest::single_from_layout(&snapshot, &placement)
                        .seed(s)
                        .threads(threads),
                )
                .into_single()
                .expect("single session")
        };
        // A mixed fleet: per-session seeds and thread counts differ.
        let mut fleet: Vec<SingleDataSession> = (0..6)
            .map(|i| start(seed + i, THREAD_COUNTS[i as usize % 3]))
            .collect();
        let mut reference: Vec<SingleDataSession> = (0..6)
            .map(|i| start(seed + i, THREAD_COUNTS[i as usize % 3]))
            .collect();

        let mut shadow = snapshot.clone();
        let mut next_chunk_id = 20_000_000u64;
        let mut delta_rng = StdRng::seed_from_u64(seed ^ 0xFA17);
        for _ in 0..5 {
            let delta = random_delta(
                &shadow,
                islands,
                per,
                chunks / 50,
                true,
                &mut next_chunk_id,
                &mut delta_rng,
            );
            shadow.apply_delta(&delta);
            replan_sessions_parallel(&mut fleet, &delta, 4);
            for session in reference.iter_mut() {
                session.replan(&delta);
            }
        }
        for (fanned, reference) in fleet.iter().zip(&reference) {
            assert_eq!(
                format!("{:?}", fanned.plan()),
                format!("{:?}", reference.plan()),
                "seed {seed}: fanned-out session diverged from its sequential twin"
            );
            assert_eq!(fanned.snapshot(), reference.snapshot());
            assert_eq!(fanned.snapshot(), &shadow);
            assert_eq!(fanned.replans(), 5);
        }
    }
}
