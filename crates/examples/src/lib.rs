//! placeholder
