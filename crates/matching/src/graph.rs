//! The process-to-data bipartite graph (paper Section IV-A, Figure 4).
//!
//! Vertices are parallel processes on one side and chunk files on the other.
//! An edge `(p, f)` means a replica of `f` lives on the node where process
//! `p` runs; its weight is the number of bytes of `f` that `p` could read
//! locally (the full chunk size in HDFS, since replication is whole-chunk).
//! Opass builds this graph from the file-system layout and feeds it to the
//! matchers in [`crate::single_data`] and [`crate::multi_data`].
//!
//! Storage is struct-of-arrays: both adjacency mirrors live in pooled
//! [`crate::arena::AdjPool`] spans (`u32` keys, `u64` weights), so the
//! repair searches in [`crate::incremental`] iterate neighbors as dense
//! `u32` slices instead of chasing per-vertex allocations.

use crate::arena::AdjPool;

/// Weighted bipartite graph between `n_procs` processes and `n_files` files.
///
/// Indices are dense (`0..n_procs`, `0..n_files`); richer identifiers are
/// mapped by the caller. Re-adding an existing edge *replaces* its weight
/// (last write wins), so replaying a layout delta is idempotent and the
/// weight always reflects the latest chunk size. The graph is mutable in
/// both directions — edges and vertices can be added and removed without
/// a rebuild — and every mutation preserves the structural invariant that
/// the proc-side and file-side pools are exact sorted mirrors of each
/// other.
#[derive(Debug, Clone)]
pub struct BipartiteGraph {
    /// Per-process adjacency spans: sorted file keys with byte weights.
    procs: AdjPool,
    /// Per-file adjacency spans: sorted proc keys with byte weights.
    files: AdjPool,
    edges: usize,
}

impl BipartiteGraph {
    /// Creates an empty graph with the given vertex counts.
    pub fn new(n_procs: usize, n_files: usize) -> Self {
        BipartiteGraph {
            procs: AdjPool::with_vertices(n_procs),
            files: AdjPool::with_vertices(n_files),
            edges: 0,
        }
    }

    /// Number of process vertices.
    pub fn n_procs(&self) -> usize {
        self.procs.n_vertices()
    }

    /// Number of file vertices.
    pub fn n_files(&self) -> usize {
        self.files.n_vertices()
    }

    /// Total number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges
    }

    /// Adds the locality edge between `proc` and `file`, or updates its
    /// weight if it already exists. Both adjacency mirrors stay sorted.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range or `bytes` is zero.
    pub fn add_edge(&mut self, proc: usize, file: usize, bytes: u64) {
        assert!(proc < self.n_procs(), "process index {proc} out of range");
        assert!(file < self.n_files(), "file index {file} out of range");
        assert!(bytes > 0, "locality edges must carry positive bytes");
        if self.procs.insert(proc, file as u32, bytes) {
            self.edges += 1;
        }
        self.files.insert(file, proc as u32, bytes);
    }

    /// Removes the edge between `proc` and `file`. Returns whether the
    /// edge existed. Both adjacency mirrors stay sorted.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn remove_edge(&mut self, proc: usize, file: usize) -> bool {
        assert!(proc < self.n_procs(), "process index {proc} out of range");
        assert!(file < self.n_files(), "file index {file} out of range");
        if self.procs.remove(proc, file as u32) {
            let mirrored = self.files.remove(file, proc as u32);
            debug_assert!(mirrored, "adjacency mirrors agree");
            self.edges -= 1;
            true
        } else {
            false
        }
    }

    /// Appends a new file vertex with no edges; returns its index.
    pub fn push_file(&mut self) -> usize {
        self.files.push_vertex()
    }

    /// Appends a new process vertex with no edges; returns its index.
    pub fn push_proc(&mut self) -> usize {
        self.procs.push_vertex()
    }

    /// Removes file vertex `file` and all its edges; files above it shift
    /// down by one (the same order-preserving compaction a layout snapshot
    /// applies when a chunk leaves scope). O(n_files + edges).
    ///
    /// # Panics
    ///
    /// Panics if `file` is out of range.
    pub fn remove_file(&mut self, file: usize) {
        assert!(file < self.n_files(), "file index {file} out of range");
        // The span is at most replication-factor procs; copy it out so
        // the proc-side pool can be edited.
        let holders: Vec<u32> = self.files.keys_of(file).to_vec();
        for &p in &holders {
            let removed = self.procs.remove(p as usize, file as u32);
            debug_assert!(removed, "adjacency mirrors agree");
        }
        self.edges -= holders.len();
        self.files.remove_vertex(file);
        self.procs.shift_keys_above(file as u32);
    }

    /// Removes process vertex `proc` and all its edges; processes above it
    /// shift down by one. O(n_procs + edges).
    ///
    /// # Panics
    ///
    /// Panics if `proc` is out of range.
    pub fn remove_proc(&mut self, proc: usize) {
        assert!(proc < self.n_procs(), "process index {proc} out of range");
        let touched: Vec<u32> = self.procs.keys_of(proc).to_vec();
        for &f in &touched {
            let removed = self.files.remove(f as usize, proc as u32);
            debug_assert!(removed, "adjacency mirrors agree");
        }
        self.edges -= touched.len();
        self.procs.remove_vertex(proc);
        self.files.shift_keys_above(proc as u32);
    }

    /// Verifies the mirror invariant: the proc and file pools describe
    /// the same sorted edge set with equal weights. O(edges log edges);
    /// used by tests and debug assertions.
    pub fn check_mirror(&self) -> Result<(), String> {
        let mut counted = 0usize;
        for p in 0..self.n_procs() {
            let row = self.procs.keys_of(p);
            if row.windows(2).any(|w| w[0] >= w[1]) {
                return Err(format!("proc {p} adjacency not sorted/distinct"));
            }
            counted += row.len();
            for (&f, &bytes) in row.iter().zip(self.procs.wts_of(p)) {
                if f as usize >= self.n_files() {
                    return Err(format!("proc {p} lists out-of-range file {f}"));
                }
                match self.files.get(f as usize, p as u32) {
                    Some(b) if b == bytes => {}
                    Some(b) => {
                        return Err(format!("edge ({p},{f}) weight mismatch: {bytes} vs {b}"))
                    }
                    None => return Err(format!("edge ({p},{f}) missing from file side")),
                }
            }
        }
        if counted != self.edges || self.files.total_len() != self.edges {
            return Err(format!(
                "edge counter {} disagrees with pool totals {counted}/{}",
                self.edges,
                self.files.total_len()
            ));
        }
        for f in 0..self.n_files() {
            let col = self.files.keys_of(f);
            if col.windows(2).any(|w| w[0] >= w[1]) {
                return Err(format!("file {f} adjacency not sorted/distinct"));
            }
            for &p in col {
                if p as usize >= self.n_procs() {
                    return Err(format!("file {f} lists out-of-range proc {p}"));
                }
                if self.procs.get(p as usize, f as u32).is_none() {
                    return Err(format!("edge ({p},{f}) missing from proc side"));
                }
            }
        }
        Ok(())
    }

    /// Bytes of `file` readable locally by `proc`, or `None` if not
    /// co-located.
    pub fn weight(&self, proc: usize, file: usize) -> Option<u64> {
        debug_assert!(proc < self.n_procs() && file < self.n_files());
        self.procs.get(proc, file as u32)
    }

    /// Files co-located with `proc`, as sorted `(file, bytes)` pairs.
    pub fn files_of(&self, proc: usize) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.procs
            .keys_of(proc)
            .iter()
            .zip(self.procs.wts_of(proc))
            .map(|(&f, &b)| (f as usize, b))
    }

    /// Processes co-located with `file`, as sorted `(proc, bytes)` pairs.
    pub fn procs_of(&self, file: usize) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.files
            .keys_of(file)
            .iter()
            .zip(self.files.wts_of(file))
            .map(|(&p, &b)| (p as usize, b))
    }

    /// Sorted file handles adjacent to `proc`, as a dense `u32` slice —
    /// the zero-decode view the repair searches iterate.
    pub fn files_raw(&self, proc: usize) -> &[u32] {
        self.procs.keys_of(proc)
    }

    /// Sorted proc handles adjacent to `file`, as a dense `u32` slice.
    pub fn procs_raw(&self, file: usize) -> &[u32] {
        self.files.keys_of(file)
    }

    /// Weights parallel to [`BipartiteGraph::procs_raw`].
    pub fn procs_raw_wts(&self, file: usize) -> &[u64] {
        self.files.wts_of(file)
    }

    /// Degree of `file` (its replica co-location count).
    pub fn file_degree(&self, file: usize) -> usize {
        self.files.len_of(file)
    }

    /// Sum of the weights of all edges incident to `proc` — the paper's
    /// `d(p_i)`, the total data available locally to the process.
    pub fn local_bytes_of(&self, proc: usize) -> u64 {
        self.procs.wts_of(proc).iter().sum()
    }

    /// Files with no co-located process at all (isolated file vertices);
    /// these can never be read locally and force remote assignments.
    pub fn isolated_files(&self) -> Vec<usize> {
        (0..self.n_files())
            .filter(|&f| self.files.len_of(f) == 0)
            .collect()
    }

    /// Upper bound on any matching: a full matching assigns every file to a
    /// co-located process, so the bound is the number of non-isolated files.
    pub fn full_matching_size(&self) -> usize {
        self.n_files() - self.isolated_files().len()
    }
}

/// Semantic equality: same vertex counts and edge sets with equal
/// weights. Pool layout (span offsets, capacities, garbage) is an
/// artifact of the mutation history and deliberately ignored.
impl PartialEq for BipartiteGraph {
    fn eq(&self, other: &Self) -> bool {
        if self.n_procs() != other.n_procs()
            || self.n_files() != other.n_files()
            || self.edges != other.edges
        {
            return false;
        }
        (0..self.n_procs()).all(|p| {
            self.procs.keys_of(p) == other.procs.keys_of(p)
                && self.procs.wts_of(p) == other.procs.wts_of(p)
        })
    }
}

impl Eq for BipartiteGraph {}

#[cfg(test)]
mod tests {
    use super::*;

    fn files_vec(g: &BipartiteGraph, p: usize) -> Vec<(usize, u64)> {
        g.files_of(p).collect()
    }

    fn procs_vec(g: &BipartiteGraph, f: usize) -> Vec<(usize, u64)> {
        g.procs_of(f).collect()
    }

    #[test]
    fn empty_graph() {
        let g = BipartiteGraph::new(3, 5);
        assert_eq!(g.n_procs(), 3);
        assert_eq!(g.n_files(), 5);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.isolated_files().len(), 5);
        assert_eq!(g.full_matching_size(), 0);
    }

    #[test]
    fn add_and_query_edges() {
        let mut g = BipartiteGraph::new(2, 3);
        g.add_edge(0, 1, 64);
        g.add_edge(0, 2, 64);
        g.add_edge(1, 1, 64);
        assert_eq!(g.weight(0, 1), Some(64));
        assert_eq!(g.weight(1, 0), None);
        assert_eq!(files_vec(&g, 0), vec![(1, 64), (2, 64)]);
        assert_eq!(procs_vec(&g, 1), vec![(0, 64), (1, 64)]);
        assert_eq!(g.files_raw(0), &[1, 2]);
        assert_eq!(g.procs_raw(1), &[0, 1]);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.local_bytes_of(0), 128);
        assert_eq!(g.isolated_files(), vec![0]);
        assert_eq!(g.full_matching_size(), 2);
    }

    #[test]
    fn duplicate_edges_take_latest_weight() {
        // Last write wins: replaying a delta must leave the newest size,
        // even when it shrinks the chunk.
        let mut g = BipartiteGraph::new(1, 1);
        g.add_edge(0, 0, 10);
        g.add_edge(0, 0, 30);
        g.add_edge(0, 0, 20);
        assert_eq!(g.weight(0, 0), Some(20));
        assert_eq!(g.edge_count(), 1);
        g.check_mirror().unwrap();
    }

    #[test]
    fn remove_edge_keeps_mirrors_in_sync() {
        let mut g = BipartiteGraph::new(2, 3);
        g.add_edge(0, 0, 8);
        g.add_edge(0, 1, 8);
        g.add_edge(1, 1, 8);
        assert!(g.remove_edge(0, 1));
        assert!(!g.remove_edge(0, 1), "already gone");
        assert!(!g.remove_edge(1, 2), "never existed");
        assert_eq!(files_vec(&g, 0), vec![(0, 8)]);
        assert_eq!(procs_vec(&g, 1), vec![(1, 8)]);
        assert_eq!(g.edge_count(), 2);
        g.check_mirror().unwrap();
    }

    #[test]
    fn vertex_mutations_preserve_mirror_and_shift_indices() {
        let mut g = BipartiteGraph::new(3, 4);
        for p in 0..3 {
            for f in 0..4 {
                if (p + f) % 2 == 0 {
                    g.add_edge(p, f, (10 * p + f + 1) as u64);
                }
            }
        }
        g.check_mirror().unwrap();

        // Removing file 1 shifts files 2..4 down; edge weights follow.
        let w_before = g.weight(0, 2);
        g.remove_file(1);
        assert_eq!(g.n_files(), 3);
        assert_eq!(g.weight(0, 1), w_before, "old file 2 is now file 1");
        g.check_mirror().unwrap();

        // Removing proc 0 shifts procs 1..3 down.
        let w_before = g.weight(2, 2);
        g.remove_proc(0);
        assert_eq!(g.n_procs(), 2);
        assert_eq!(g.weight(1, 2), w_before, "old proc 2 is now proc 1");
        g.check_mirror().unwrap();

        // Push new vertices and connect them.
        let f = g.push_file();
        let p = g.push_proc();
        assert_eq!((p, f), (2, 3));
        g.add_edge(p, f, 99);
        assert_eq!(g.weight(2, 3), Some(99));
        g.check_mirror().unwrap();
    }

    #[test]
    fn mutation_sequence_matches_rebuild() {
        // Applying a random-looking add/remove schedule must land on the
        // same graph as building the final edge set from scratch.
        let mut g = BipartiteGraph::new(4, 6);
        let script: &[(bool, usize, usize, u64)] = &[
            (true, 0, 0, 5),
            (true, 1, 2, 7),
            (true, 3, 5, 2),
            (true, 0, 2, 9),
            (false, 1, 2, 0),
            (true, 2, 4, 4),
            (true, 1, 2, 11),
            (false, 0, 0, 0),
            (true, 3, 1, 6),
        ];
        for &(add, p, f, b) in script {
            if add {
                g.add_edge(p, f, b);
            } else {
                g.remove_edge(p, f);
            }
        }
        let mut fresh = BipartiteGraph::new(4, 6);
        for (p, f, b) in [(0, 2, 9), (1, 2, 11), (2, 4, 4), (3, 1, 6), (3, 5, 2)] {
            fresh.add_edge(p, f, b);
        }
        assert_eq!(g, fresh);
        g.check_mirror().unwrap();
    }

    #[test]
    fn adjacency_stays_sorted() {
        let mut g = BipartiteGraph::new(1, 10);
        for f in [7usize, 2, 9, 0, 4] {
            g.add_edge(0, f, 1);
        }
        let files: Vec<usize> = g.files_of(0).map(|(f, _)| f).collect();
        assert_eq!(files, vec![0, 2, 4, 7, 9]);
    }

    #[test]
    fn heavy_churn_pool_stays_consistent() {
        // Enough edge churn across enough vertices to force span
        // relocations and pool compactions; the mirror invariant and
        // semantic equality with a fresh rebuild must survive.
        let mut g = BipartiteGraph::new(32, 256);
        let mut state = 0x5EEDu64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state >> 16
        };
        for _ in 0..20_000 {
            let p = (next() % 32) as usize;
            let f = (next() % 256) as usize;
            if g.weight(p, f).is_some() && next() % 3 == 0 {
                g.remove_edge(p, f);
            } else {
                g.add_edge(p, f, next() % 1000 + 1);
            }
        }
        g.check_mirror().unwrap();
        let mut fresh = BipartiteGraph::new(32, 256);
        for p in 0..32 {
            for (f, b) in g.files_of(p).collect::<Vec<_>>() {
                fresh.add_edge(p, f, b);
            }
        }
        assert_eq!(g, fresh);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_index() {
        let mut g = BipartiteGraph::new(1, 1);
        g.add_edge(1, 0, 1);
    }

    #[test]
    #[should_panic(expected = "positive bytes")]
    fn rejects_zero_weight() {
        let mut g = BipartiteGraph::new(1, 1);
        g.add_edge(0, 0, 0);
    }
}
