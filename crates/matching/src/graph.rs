//! The process-to-data bipartite graph (paper Section IV-A, Figure 4).
//!
//! Vertices are parallel processes on one side and chunk files on the other.
//! An edge `(p, f)` means a replica of `f` lives on the node where process
//! `p` runs; its weight is the number of bytes of `f` that `p` could read
//! locally (the full chunk size in HDFS, since replication is whole-chunk).
//! Opass builds this graph from the file-system layout and feeds it to the
//! matchers in [`crate::single_data`] and [`crate::multi_data`].

/// Weighted bipartite graph between `n_procs` processes and `n_files` files.
///
/// Indices are dense (`0..n_procs`, `0..n_files`); richer identifiers are
/// mapped by the caller. Re-adding an existing edge *replaces* its weight
/// (last write wins), so replaying a layout delta is idempotent and the
/// weight always reflects the latest chunk size. The graph is mutable in
/// both directions — edges and vertices can be added and removed without
/// a rebuild — and every mutation preserves the structural invariant that
/// `proc_adj` and `file_adj` are exact sorted mirrors of each other.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BipartiteGraph {
    n_procs: usize,
    n_files: usize,
    /// Per-process adjacency: sorted `(file, bytes)` pairs.
    proc_adj: Vec<Vec<(usize, u64)>>,
    /// Per-file adjacency: sorted `(proc, bytes)` pairs.
    file_adj: Vec<Vec<(usize, u64)>>,
}

impl BipartiteGraph {
    /// Creates an empty graph with the given vertex counts.
    pub fn new(n_procs: usize, n_files: usize) -> Self {
        BipartiteGraph {
            n_procs,
            n_files,
            proc_adj: vec![Vec::new(); n_procs],
            file_adj: vec![Vec::new(); n_files],
        }
    }

    /// Number of process vertices.
    pub fn n_procs(&self) -> usize {
        self.n_procs
    }

    /// Number of file vertices.
    pub fn n_files(&self) -> usize {
        self.n_files
    }

    /// Total number of edges.
    pub fn edge_count(&self) -> usize {
        self.proc_adj.iter().map(Vec::len).sum()
    }

    /// Adds the locality edge between `proc` and `file`, or updates its
    /// weight if it already exists. Both adjacency mirrors stay sorted.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range or `bytes` is zero.
    pub fn add_edge(&mut self, proc: usize, file: usize, bytes: u64) {
        assert!(proc < self.n_procs, "process index {proc} out of range");
        assert!(file < self.n_files, "file index {file} out of range");
        assert!(bytes > 0, "locality edges must carry positive bytes");
        upsert(&mut self.proc_adj[proc], file, bytes);
        upsert(&mut self.file_adj[file], proc, bytes);
    }

    /// Removes the edge between `proc` and `file`. Returns whether the
    /// edge existed. Both adjacency mirrors stay sorted.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn remove_edge(&mut self, proc: usize, file: usize) -> bool {
        assert!(proc < self.n_procs, "process index {proc} out of range");
        assert!(file < self.n_files, "file index {file} out of range");
        let row = &mut self.proc_adj[proc];
        match row.binary_search_by_key(&file, |&(f, _)| f) {
            Ok(i) => {
                row.remove(i);
                let col = &mut self.file_adj[file];
                let j = col
                    .binary_search_by_key(&proc, |&(p, _)| p)
                    .expect("adjacency mirrors agree");
                col.remove(j);
                true
            }
            Err(_) => false,
        }
    }

    /// Appends a new file vertex with no edges; returns its index.
    pub fn push_file(&mut self) -> usize {
        self.file_adj.push(Vec::new());
        self.n_files += 1;
        self.n_files - 1
    }

    /// Appends a new process vertex with no edges; returns its index.
    pub fn push_proc(&mut self) -> usize {
        self.proc_adj.push(Vec::new());
        self.n_procs += 1;
        self.n_procs - 1
    }

    /// Removes file vertex `file` and all its edges; files above it shift
    /// down by one (the same order-preserving compaction a layout snapshot
    /// applies when a chunk leaves scope). O(n_files + edges).
    ///
    /// # Panics
    ///
    /// Panics if `file` is out of range.
    pub fn remove_file(&mut self, file: usize) {
        assert!(file < self.n_files, "file index {file} out of range");
        for &(p, _) in &std::mem::take(&mut self.file_adj[file]) {
            let row = &mut self.proc_adj[p];
            let i = row
                .binary_search_by_key(&file, |&(f, _)| f)
                .expect("adjacency mirrors agree");
            row.remove(i);
        }
        self.file_adj.remove(file);
        self.n_files -= 1;
        for row in &mut self.proc_adj {
            for entry in row.iter_mut() {
                if entry.0 > file {
                    entry.0 -= 1;
                }
            }
        }
    }

    /// Removes process vertex `proc` and all its edges; processes above it
    /// shift down by one. O(n_procs + edges).
    ///
    /// # Panics
    ///
    /// Panics if `proc` is out of range.
    pub fn remove_proc(&mut self, proc: usize) {
        assert!(proc < self.n_procs, "process index {proc} out of range");
        for &(f, _) in &std::mem::take(&mut self.proc_adj[proc]) {
            let col = &mut self.file_adj[f];
            let i = col
                .binary_search_by_key(&proc, |&(p, _)| p)
                .expect("adjacency mirrors agree");
            col.remove(i);
        }
        self.proc_adj.remove(proc);
        self.n_procs -= 1;
        for col in &mut self.file_adj {
            for entry in col.iter_mut() {
                if entry.0 > proc {
                    entry.0 -= 1;
                }
            }
        }
    }

    /// Verifies the mirror invariant: `proc_adj` and `file_adj` describe
    /// the same sorted edge set with equal weights. O(edges log edges);
    /// used by tests and debug assertions.
    pub fn check_mirror(&self) -> Result<(), String> {
        for (p, row) in self.proc_adj.iter().enumerate() {
            if row.windows(2).any(|w| w[0].0 >= w[1].0) {
                return Err(format!("proc {p} adjacency not sorted/distinct"));
            }
            for &(f, bytes) in row {
                if f >= self.n_files {
                    return Err(format!("proc {p} lists out-of-range file {f}"));
                }
                let col = &self.file_adj[f];
                match col.binary_search_by_key(&p, |&(q, _)| q) {
                    Ok(i) if col[i].1 == bytes => {}
                    Ok(i) => {
                        return Err(format!(
                            "edge ({p},{f}) weight mismatch: {} vs {}",
                            bytes, col[i].1
                        ))
                    }
                    Err(_) => return Err(format!("edge ({p},{f}) missing from file side")),
                }
            }
        }
        for (f, col) in self.file_adj.iter().enumerate() {
            if col.windows(2).any(|w| w[0].0 >= w[1].0) {
                return Err(format!("file {f} adjacency not sorted/distinct"));
            }
            for &(p, _) in col {
                if p >= self.n_procs {
                    return Err(format!("file {f} lists out-of-range proc {p}"));
                }
                if self.proc_adj[p]
                    .binary_search_by_key(&f, |&(g, _)| g)
                    .is_err()
                {
                    return Err(format!("edge ({p},{f}) missing from proc side"));
                }
            }
        }
        Ok(())
    }

    /// Bytes of `file` readable locally by `proc`, or `None` if not
    /// co-located.
    pub fn weight(&self, proc: usize, file: usize) -> Option<u64> {
        debug_assert!(proc < self.n_procs && file < self.n_files);
        self.proc_adj[proc]
            .binary_search_by_key(&file, |&(f, _)| f)
            .ok()
            .map(|i| self.proc_adj[proc][i].1)
    }

    /// Files co-located with `proc`, as sorted `(file, bytes)` pairs.
    pub fn files_of(&self, proc: usize) -> &[(usize, u64)] {
        &self.proc_adj[proc]
    }

    /// Processes co-located with `file`, as sorted `(proc, bytes)` pairs.
    pub fn procs_of(&self, file: usize) -> &[(usize, u64)] {
        &self.file_adj[file]
    }

    /// Sum of the weights of all edges incident to `proc` — the paper's
    /// `d(p_i)`, the total data available locally to the process.
    pub fn local_bytes_of(&self, proc: usize) -> u64 {
        self.proc_adj[proc].iter().map(|&(_, b)| b).sum()
    }

    /// Files with no co-located process at all (isolated file vertices);
    /// these can never be read locally and force remote assignments.
    pub fn isolated_files(&self) -> Vec<usize> {
        (0..self.n_files)
            .filter(|&f| self.file_adj[f].is_empty())
            .collect()
    }

    /// Upper bound on any matching: a full matching assigns every file to a
    /// co-located process, so the bound is the number of non-isolated files.
    pub fn full_matching_size(&self) -> usize {
        self.n_files - self.isolated_files().len()
    }
}

fn upsert(adj: &mut Vec<(usize, u64)>, key: usize, bytes: u64) {
    match adj.binary_search_by_key(&key, |&(k, _)| k) {
        // Replace, not max: a delta replay must leave the latest weight,
        // and both mirrors see the same write so they cannot diverge.
        Ok(i) => adj[i].1 = bytes,
        Err(i) => adj.insert(i, (key, bytes)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = BipartiteGraph::new(3, 5);
        assert_eq!(g.n_procs(), 3);
        assert_eq!(g.n_files(), 5);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.isolated_files().len(), 5);
        assert_eq!(g.full_matching_size(), 0);
    }

    #[test]
    fn add_and_query_edges() {
        let mut g = BipartiteGraph::new(2, 3);
        g.add_edge(0, 1, 64);
        g.add_edge(0, 2, 64);
        g.add_edge(1, 1, 64);
        assert_eq!(g.weight(0, 1), Some(64));
        assert_eq!(g.weight(1, 0), None);
        assert_eq!(g.files_of(0), &[(1, 64), (2, 64)]);
        assert_eq!(g.procs_of(1), &[(0, 64), (1, 64)]);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.local_bytes_of(0), 128);
        assert_eq!(g.isolated_files(), vec![0]);
        assert_eq!(g.full_matching_size(), 2);
    }

    #[test]
    fn duplicate_edges_take_latest_weight() {
        // Last write wins: replaying a delta must leave the newest size,
        // even when it shrinks the chunk.
        let mut g = BipartiteGraph::new(1, 1);
        g.add_edge(0, 0, 10);
        g.add_edge(0, 0, 30);
        g.add_edge(0, 0, 20);
        assert_eq!(g.weight(0, 0), Some(20));
        assert_eq!(g.edge_count(), 1);
        g.check_mirror().unwrap();
    }

    #[test]
    fn remove_edge_keeps_mirrors_in_sync() {
        let mut g = BipartiteGraph::new(2, 3);
        g.add_edge(0, 0, 8);
        g.add_edge(0, 1, 8);
        g.add_edge(1, 1, 8);
        assert!(g.remove_edge(0, 1));
        assert!(!g.remove_edge(0, 1), "already gone");
        assert!(!g.remove_edge(1, 2), "never existed");
        assert_eq!(g.files_of(0), &[(0, 8)]);
        assert_eq!(g.procs_of(1), &[(1, 8)]);
        assert_eq!(g.edge_count(), 2);
        g.check_mirror().unwrap();
    }

    #[test]
    fn vertex_mutations_preserve_mirror_and_shift_indices() {
        let mut g = BipartiteGraph::new(3, 4);
        for p in 0..3 {
            for f in 0..4 {
                if (p + f) % 2 == 0 {
                    g.add_edge(p, f, (10 * p + f + 1) as u64);
                }
            }
        }
        g.check_mirror().unwrap();

        // Removing file 1 shifts files 2..4 down; edge weights follow.
        let w_before = g.weight(0, 2);
        g.remove_file(1);
        assert_eq!(g.n_files(), 3);
        assert_eq!(g.weight(0, 1), w_before, "old file 2 is now file 1");
        g.check_mirror().unwrap();

        // Removing proc 0 shifts procs 1..3 down.
        let w_before = g.weight(2, 2);
        g.remove_proc(0);
        assert_eq!(g.n_procs(), 2);
        assert_eq!(g.weight(1, 2), w_before, "old proc 2 is now proc 1");
        g.check_mirror().unwrap();

        // Push new vertices and connect them.
        let f = g.push_file();
        let p = g.push_proc();
        assert_eq!((p, f), (2, 3));
        g.add_edge(p, f, 99);
        assert_eq!(g.weight(2, 3), Some(99));
        g.check_mirror().unwrap();
    }

    #[test]
    fn mutation_sequence_matches_rebuild() {
        // Applying a random-looking add/remove schedule must land on the
        // same graph as building the final edge set from scratch.
        let mut g = BipartiteGraph::new(4, 6);
        let script: &[(bool, usize, usize, u64)] = &[
            (true, 0, 0, 5),
            (true, 1, 2, 7),
            (true, 3, 5, 2),
            (true, 0, 2, 9),
            (false, 1, 2, 0),
            (true, 2, 4, 4),
            (true, 1, 2, 11),
            (false, 0, 0, 0),
            (true, 3, 1, 6),
        ];
        for &(add, p, f, b) in script {
            if add {
                g.add_edge(p, f, b);
            } else {
                g.remove_edge(p, f);
            }
        }
        let mut fresh = BipartiteGraph::new(4, 6);
        for (p, f, b) in [(0, 2, 9), (1, 2, 11), (2, 4, 4), (3, 1, 6), (3, 5, 2)] {
            fresh.add_edge(p, f, b);
        }
        assert_eq!(g, fresh);
        g.check_mirror().unwrap();
    }

    #[test]
    fn adjacency_stays_sorted() {
        let mut g = BipartiteGraph::new(1, 10);
        for f in [7usize, 2, 9, 0, 4] {
            g.add_edge(0, f, 1);
        }
        let files: Vec<usize> = g.files_of(0).iter().map(|&(f, _)| f).collect();
        assert_eq!(files, vec![0, 2, 4, 7, 9]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_index() {
        let mut g = BipartiteGraph::new(1, 1);
        g.add_edge(1, 0, 1);
    }

    #[test]
    #[should_panic(expected = "positive bytes")]
    fn rejects_zero_weight() {
        let mut g = BipartiteGraph::new(1, 1);
        g.add_edge(0, 0, 0);
    }
}
