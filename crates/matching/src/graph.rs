//! The process-to-data bipartite graph (paper Section IV-A, Figure 4).
//!
//! Vertices are parallel processes on one side and chunk files on the other.
//! An edge `(p, f)` means a replica of `f` lives on the node where process
//! `p` runs; its weight is the number of bytes of `f` that `p` could read
//! locally (the full chunk size in HDFS, since replication is whole-chunk).
//! Opass builds this graph from the file-system layout and feeds it to the
//! matchers in [`crate::single_data`] and [`crate::multi_data`].

/// Weighted bipartite graph between `n_procs` processes and `n_files` files.
///
/// Indices are dense (`0..n_procs`, `0..n_files`); richer identifiers are
/// mapped by the caller. Duplicate edges are merged by taking the larger
/// weight (a process is either co-located with a chunk or not; HDFS never
/// stores two replicas of one chunk on a node).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BipartiteGraph {
    n_procs: usize,
    n_files: usize,
    /// Per-process adjacency: sorted `(file, bytes)` pairs.
    proc_adj: Vec<Vec<(usize, u64)>>,
    /// Per-file adjacency: sorted `(proc, bytes)` pairs.
    file_adj: Vec<Vec<(usize, u64)>>,
}

impl BipartiteGraph {
    /// Creates an empty graph with the given vertex counts.
    pub fn new(n_procs: usize, n_files: usize) -> Self {
        BipartiteGraph {
            n_procs,
            n_files,
            proc_adj: vec![Vec::new(); n_procs],
            file_adj: vec![Vec::new(); n_files],
        }
    }

    /// Number of process vertices.
    pub fn n_procs(&self) -> usize {
        self.n_procs
    }

    /// Number of file vertices.
    pub fn n_files(&self) -> usize {
        self.n_files
    }

    /// Total number of edges.
    pub fn edge_count(&self) -> usize {
        self.proc_adj.iter().map(Vec::len).sum()
    }

    /// Adds (or widens) the locality edge between `proc` and `file`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range or `bytes` is zero.
    pub fn add_edge(&mut self, proc: usize, file: usize, bytes: u64) {
        assert!(proc < self.n_procs, "process index {proc} out of range");
        assert!(file < self.n_files, "file index {file} out of range");
        assert!(bytes > 0, "locality edges must carry positive bytes");
        upsert(&mut self.proc_adj[proc], file, bytes);
        upsert(&mut self.file_adj[file], proc, bytes);
    }

    /// Bytes of `file` readable locally by `proc`, or `None` if not
    /// co-located.
    pub fn weight(&self, proc: usize, file: usize) -> Option<u64> {
        debug_assert!(proc < self.n_procs && file < self.n_files);
        self.proc_adj[proc]
            .binary_search_by_key(&file, |&(f, _)| f)
            .ok()
            .map(|i| self.proc_adj[proc][i].1)
    }

    /// Files co-located with `proc`, as sorted `(file, bytes)` pairs.
    pub fn files_of(&self, proc: usize) -> &[(usize, u64)] {
        &self.proc_adj[proc]
    }

    /// Processes co-located with `file`, as sorted `(proc, bytes)` pairs.
    pub fn procs_of(&self, file: usize) -> &[(usize, u64)] {
        &self.file_adj[file]
    }

    /// Sum of the weights of all edges incident to `proc` — the paper's
    /// `d(p_i)`, the total data available locally to the process.
    pub fn local_bytes_of(&self, proc: usize) -> u64 {
        self.proc_adj[proc].iter().map(|&(_, b)| b).sum()
    }

    /// Files with no co-located process at all (isolated file vertices);
    /// these can never be read locally and force remote assignments.
    pub fn isolated_files(&self) -> Vec<usize> {
        (0..self.n_files)
            .filter(|&f| self.file_adj[f].is_empty())
            .collect()
    }

    /// Upper bound on any matching: a full matching assigns every file to a
    /// co-located process, so the bound is the number of non-isolated files.
    pub fn full_matching_size(&self) -> usize {
        self.n_files - self.isolated_files().len()
    }
}

fn upsert(adj: &mut Vec<(usize, u64)>, key: usize, bytes: u64) {
    match adj.binary_search_by_key(&key, |&(k, _)| k) {
        Ok(i) => adj[i].1 = adj[i].1.max(bytes),
        Err(i) => adj.insert(i, (key, bytes)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = BipartiteGraph::new(3, 5);
        assert_eq!(g.n_procs(), 3);
        assert_eq!(g.n_files(), 5);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.isolated_files().len(), 5);
        assert_eq!(g.full_matching_size(), 0);
    }

    #[test]
    fn add_and_query_edges() {
        let mut g = BipartiteGraph::new(2, 3);
        g.add_edge(0, 1, 64);
        g.add_edge(0, 2, 64);
        g.add_edge(1, 1, 64);
        assert_eq!(g.weight(0, 1), Some(64));
        assert_eq!(g.weight(1, 0), None);
        assert_eq!(g.files_of(0), &[(1, 64), (2, 64)]);
        assert_eq!(g.procs_of(1), &[(0, 64), (1, 64)]);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.local_bytes_of(0), 128);
        assert_eq!(g.isolated_files(), vec![0]);
        assert_eq!(g.full_matching_size(), 2);
    }

    #[test]
    fn duplicate_edges_keep_max_weight() {
        let mut g = BipartiteGraph::new(1, 1);
        g.add_edge(0, 0, 10);
        g.add_edge(0, 0, 30);
        g.add_edge(0, 0, 20);
        assert_eq!(g.weight(0, 0), Some(30));
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn adjacency_stays_sorted() {
        let mut g = BipartiteGraph::new(1, 10);
        for f in [7usize, 2, 9, 0, 4] {
            g.add_edge(0, f, 1);
        }
        let files: Vec<usize> = g.files_of(0).iter().map(|&(f, _)| f).collect();
        assert_eq!(files, vec![0, 2, 4, 7, 9]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_index() {
        let mut g = BipartiteGraph::new(1, 1);
        g.add_edge(1, 0, 1);
    }

    #[test]
    #[should_panic(expected = "positive bytes")]
    fn rejects_zero_weight() {
        let mut g = BipartiteGraph::new(1, 1);
        g.add_edge(0, 0, 0);
    }
}
