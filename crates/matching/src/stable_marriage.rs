//! Classic Gale–Shapley stable matching (one-to-one).
//!
//! The paper motivates its multi-data matcher by analogy with the stable
//! marriage problem ("which however only deals with one-to-one matching").
//! The reference implementation lives here: it documents the relationship,
//! anchors the property tests for [`crate::multi_data`] (whose trade-up rule
//! is deferred acceptance under quotas), and is exercised by the test suite
//! for stability in the textbook sense.

/// # Example
///
/// ```
/// use opass_matching::stable_marriage::{gale_shapley, is_stable};
///
/// let proposers = vec![vec![0, 1], vec![0, 1]];
/// let acceptors = vec![vec![1, 0], vec![0, 1]];
/// let matching = gale_shapley(&proposers, &acceptors);
/// assert!(is_stable(&proposers, &acceptors, &matching));
/// assert_eq!(matching, vec![1, 0]); // acceptor 0 prefers proposer 1
/// ```
///
/// Computes the proposer-optimal stable matching.
///
/// `proposer_prefs[p]` lists acceptor indices in descending preference;
/// `acceptor_prefs[a]` lists proposer indices in descending preference.
/// Both sides must have the same size `n`, and every preference list must be
/// a permutation of `0..n`.
///
/// Returns `match_of[p] = a`.
///
/// # Panics
///
/// Panics if the preference lists are malformed.
pub fn gale_shapley(proposer_prefs: &[Vec<usize>], acceptor_prefs: &[Vec<usize>]) -> Vec<usize> {
    let n = proposer_prefs.len();
    assert_eq!(acceptor_prefs.len(), n, "both sides must have equal size");
    for (i, prefs) in proposer_prefs
        .iter()
        .chain(acceptor_prefs.iter())
        .enumerate()
    {
        assert_eq!(prefs.len(), n, "preference list {i} has wrong length");
        let mut seen = vec![false; n];
        for &x in prefs {
            assert!(
                x < n && !seen[x],
                "preference list {i} is not a permutation"
            );
            seen[x] = true;
        }
    }
    if n == 0 {
        return Vec::new();
    }

    // rank[a][p] = position of proposer p in acceptor a's list (lower =
    // preferred).
    let mut rank = vec![vec![0usize; n]; n];
    for (a, prefs) in acceptor_prefs.iter().enumerate() {
        for (pos, &p) in prefs.iter().enumerate() {
            rank[a][p] = pos;
        }
    }

    let mut next_proposal = vec![0usize; n];
    let mut engaged_to: Vec<Option<usize>> = vec![None; n]; // acceptor -> proposer
    let mut free: Vec<usize> = (0..n).rev().collect();

    while let Some(p) = free.pop() {
        let a = proposer_prefs[p][next_proposal[p]];
        next_proposal[p] += 1;
        match engaged_to[a] {
            None => engaged_to[a] = Some(p),
            Some(current) => {
                if rank[a][p] < rank[a][current] {
                    engaged_to[a] = Some(p);
                    free.push(current);
                } else {
                    free.push(p);
                }
            }
        }
    }

    let mut match_of = vec![usize::MAX; n];
    for (a, p) in engaged_to.into_iter().enumerate() {
        match_of[p.expect("perfect matching exists")] = a;
    }
    match_of
}

/// Checks stability: no proposer–acceptor pair prefer each other to their
/// assigned partners.
pub fn is_stable(
    proposer_prefs: &[Vec<usize>],
    acceptor_prefs: &[Vec<usize>],
    match_of: &[usize],
) -> bool {
    let n = proposer_prefs.len();
    let mut acceptor_of = vec![usize::MAX; n];
    for (p, &a) in match_of.iter().enumerate() {
        acceptor_of[a] = p;
    }
    let pos = |prefs: &[usize], x: usize| {
        prefs
            .iter()
            .position(|&y| y == x)
            .expect("preference lists are permutations of 0..n, so x is present")
    };
    for p in 0..n {
        let my_a = match_of[p];
        let my_rank = pos(&proposer_prefs[p], my_a);
        for &a in proposer_prefs[p].iter().take(my_rank) {
            let a_current = acceptor_of[a];
            if pos(&acceptor_prefs[a], p) < pos(&acceptor_prefs[a], a_current) {
                return false; // blocking pair (p, a)
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_single_pair() {
        let m = gale_shapley(&[vec![0]], &[vec![0]]);
        assert_eq!(m, vec![0]);
    }

    #[test]
    fn empty_input() {
        let m = gale_shapley(&[], &[]);
        assert!(m.is_empty());
    }

    #[test]
    fn textbook_instance_is_stable() {
        // 3x3 instance with conflicting preferences.
        let proposers = vec![vec![0, 1, 2], vec![1, 0, 2], vec![0, 1, 2]];
        let acceptors = vec![vec![1, 0, 2], vec![0, 1, 2], vec![0, 1, 2]];
        let m = gale_shapley(&proposers, &acceptors);
        assert!(is_stable(&proposers, &acceptors, &m));
        // Everyone matched exactly once.
        let mut seen = [false; 3];
        for &a in &m {
            assert!(!seen[a]);
            seen[a] = true;
        }
    }

    #[test]
    fn proposer_optimality() {
        // When all proposers prefer the same acceptor, the one the acceptor
        // ranks highest wins it.
        let proposers = vec![vec![0, 1, 2], vec![0, 1, 2], vec![0, 2, 1]];
        let acceptors = vec![vec![2, 1, 0], vec![0, 1, 2], vec![1, 2, 0]];
        let m = gale_shapley(&proposers, &acceptors);
        assert_eq!(m[2], 0, "acceptor 0 prefers proposer 2");
        assert!(is_stable(&proposers, &acceptors, &m));
    }

    #[test]
    fn stability_detects_blocking_pair() {
        let proposers = vec![vec![0, 1], vec![1, 0]];
        let acceptors = vec![vec![0, 1], vec![1, 0]];
        // Swap the stable matching to create blocking pairs.
        let unstable = vec![1, 0];
        assert!(!is_stable(&proposers, &acceptors, &unstable));
    }

    #[test]
    fn deterministic_pseudorandom_instances_are_stable() {
        let n = 16;
        let mut state = 0xBADC0FFEu64;
        let mut shuffled = |seed_bump: u64| -> Vec<usize> {
            state = state.wrapping_add(seed_bump);
            let mut v: Vec<usize> = (0..n).collect();
            // Fisher-Yates with an xorshift generator.
            for i in (1..n).rev() {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                let j = (state % (i as u64 + 1)) as usize;
                v.swap(i, j);
            }
            v
        };
        for trial in 0..10u64 {
            let proposers: Vec<Vec<usize>> = (0..n).map(|_| shuffled(trial)).collect();
            let acceptors: Vec<Vec<usize>> = (0..n).map(|_| shuffled(trial + 99)).collect();
            let m = gale_shapley(&proposers, &acceptors);
            assert!(is_stable(&proposers, &acceptors, &m), "trial {trial}");
        }
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn rejects_malformed_preferences() {
        let _ = gale_shapley(&[vec![0, 0], vec![0, 1]], &[vec![0, 1], vec![0, 1]]);
    }
}
