//! Component-parallel batch repair.
//!
//! Augmenting, feeding, and exchange searches walk alternating paths, and
//! paths cannot leave the connected component of the (undirected)
//! locality graph they start in. Batch repair seeds every search at an
//! unmatched file, so a component with no unmatched file is provably
//! untouched by [`MatchState::repair_core`]. That makes the repair
//! embarrassingly parallel: extract each component containing an
//! unmatched file as a self-contained subproblem, run the *same*
//! sequential kernel on each, and write the owners back.
//!
//! Determinism discipline (same as the Monte-Carlo parallelism in
//! `opass-analysis`): components are discovered in ascending file order,
//! split into fixed contiguous blocks by component index, workers run on
//! scoped threads, and results are merged by joining the workers **in
//! spawn order** — never by completion order. Because within a component
//! the kernel sees files and processes in the same relative order as the
//! global sequential pass (extraction is order-preserving), and because
//! searches in different components commute (disjoint vertices, disjoint
//! marks), the merged owner vector is bit-identical to the sequential
//! path's — not merely equivalent. The property test in
//! `opass-tests` drives both paths through churn schedules at 1/2/8
//! threads to hold this line.

use crate::arena::NONE;
use crate::graph::BipartiteGraph;
use crate::incremental::MatchState;
use crate::single_data::Objective;

/// One connected component that contains at least one unmatched file:
/// sorted global file and process handles.
struct Component {
    files: Vec<u32>,
    procs: Vec<u32>,
}

/// Discovers the connected components of `g` reachable from unmatched
/// files, in ascending order of their smallest unmatched file. Member
/// lists come out sorted.
fn active_components(g: &BipartiteGraph, owner: &[u32]) -> Vec<Component> {
    let mut file_seen = vec![false; g.n_files()];
    let mut proc_seen = vec![false; g.n_procs()];
    let mut comps = Vec::new();
    let mut queue: Vec<u32> = Vec::new();
    for seed in 0..g.n_files() {
        if owner[seed] != NONE || file_seen[seed] {
            continue;
        }
        let mut files = Vec::new();
        let mut procs = Vec::new();
        file_seen[seed] = true;
        queue.push(seed as u32);
        files.push(seed as u32);
        // BFS alternating sides; `queue` holds file handles, process
        // frontiers expand inline.
        while let Some(f) = queue.pop() {
            for &p in g.procs_raw(f as usize) {
                if proc_seen[p as usize] {
                    continue;
                }
                proc_seen[p as usize] = true;
                procs.push(p);
                for &f2 in g.files_raw(p as usize) {
                    if !file_seen[f2 as usize] {
                        file_seen[f2 as usize] = true;
                        files.push(f2);
                        queue.push(f2);
                    }
                }
            }
        }
        files.sort_unstable();
        procs.sort_unstable();
        comps.push(Component { files, procs });
    }
    comps
}

/// Repairs one component as a self-contained subproblem and returns its
/// `(global_file, new_global_owner)` pairs. Extraction renumbers the
/// component's vertices by rank in the sorted member lists, which
/// preserves relative order — the kernel therefore visits neighbors,
/// owned chains, and unmatched seeds in exactly the order the global
/// sequential pass would.
fn repair_component(
    g: &BipartiteGraph,
    state: &MatchState,
    objective: Objective,
    comp: &Component,
) -> Vec<(u32, u32)> {
    let to_local_proc = |p: u32| {
        comp.procs
            .binary_search(&p)
            .expect("edge endpoint in component") as u32
    };
    let mut local_g = BipartiteGraph::new(comp.procs.len(), comp.files.len());
    let mut local_owner = vec![NONE; comp.files.len()];
    for (lf, &gf) in comp.files.iter().enumerate() {
        for (&p, &w) in g
            .procs_raw(gf as usize)
            .iter()
            .zip(g.procs_raw_wts(gf as usize))
        {
            local_g.add_edge(to_local_proc(p) as usize, lf, w);
        }
        let p = state.owner[gf as usize];
        if p != NONE {
            local_owner[lf] = to_local_proc(p);
        }
    }
    // Quotas are global per-process facts; the component inherits its
    // processes' slices verbatim (they do not sum to the local file
    // count, and need not — the kernel never assumes that).
    let local_quota: Vec<u32> = comp
        .procs
        .iter()
        .map(|&p| state.quota[p as usize])
        .collect();
    let mut local = MatchState::adopt(local_owner, local_quota);
    local.repair_core(&local_g, objective);
    comp.files
        .iter()
        .zip(&local.owner)
        .map(|(&gf, &lp)| {
            let gp = if lp == NONE {
                NONE
            } else {
                comp.procs[lp as usize]
            };
            (gf, gp)
        })
        .collect()
}

/// Runs batch repair across components on up to `threads` scoped
/// threads and returns the repaired global owner vector, or `None` when
/// the problem does not decompose (fewer than two active components) and
/// the caller should use the sequential kernel directly.
pub(crate) fn repair_parallel(
    g: &BipartiteGraph,
    state: &MatchState,
    objective: Objective,
    threads: usize,
) -> Option<Vec<u32>> {
    let comps = active_components(g, &state.owner);
    if comps.len() < 2 {
        return None;
    }
    let nt = threads.min(comps.len());
    let mut partials: Vec<Vec<(u32, u32)>> = Vec::with_capacity(nt);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(nt);
        for w in 0..nt {
            // Contiguous component block [lo, hi) for worker w; blocks
            // differ by at most one component.
            let lo = comps.len() * w / nt;
            let hi = comps.len() * (w + 1) / nt;
            let comps = &comps[lo..hi];
            handles.push(scope.spawn(move || {
                let mut out = Vec::new();
                for comp in comps {
                    out.extend(repair_component(g, state, objective, comp));
                }
                out
            }));
        }
        // Join in spawn order: the merge below must not depend on which
        // worker finishes first.
        for h in handles {
            partials.push(h.join().expect("repair worker panicked"));
        }
    });
    let mut owner = state.owner.clone();
    for (gf, gp) in partials.into_iter().flatten() {
        owner[gf as usize] = gp;
    }
    Some(owner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn component_discovery_skips_fully_matched_islands() {
        // Island A: one proc, one file, matched. Island B: one proc, two
        // files, one unmatched. Only B is active.
        let mut g = BipartiteGraph::new(2, 3);
        g.add_edge(0, 0, 8);
        g.add_edge(1, 1, 8);
        g.add_edge(1, 2, 8);
        let owner = vec![0, 1, NONE];
        let comps = active_components(&g, &owner);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].files, vec![1, 2]);
        assert_eq!(comps[0].procs, vec![1]);
    }

    #[test]
    fn component_discovery_orders_by_smallest_unmatched_file() {
        let mut g = BipartiteGraph::new(3, 6);
        for c in 0..3 {
            g.add_edge(c, c * 2, 8);
            g.add_edge(c, c * 2 + 1, 8);
        }
        let owner = vec![NONE; 6];
        let comps = active_components(&g, &owner);
        assert_eq!(comps.len(), 3);
        assert_eq!(comps[0].files, vec![0, 1]);
        assert_eq!(comps[1].files, vec![2, 3]);
        assert_eq!(comps[2].files, vec![4, 5]);
    }

    #[test]
    fn isolated_unmatched_file_forms_singleton_component() {
        let g = BipartiteGraph::new(1, 1);
        let comps = active_components(&g, &[NONE]);
        assert_eq!(comps.len(), 1);
        assert!(comps[0].procs.is_empty());
    }
}
