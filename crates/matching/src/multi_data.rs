//! Optimization of Parallel Multi-Data Access (paper Section IV-C,
//! Algorithm 1).
//!
//! Tasks now have *several* inputs (e.g. a genome-comparison task reading a
//! human, a mouse, and a chimpanzee subset), so a task's data can be partly
//! local to one process and partly local to another. The matching value
//! `m_i^j = |d(p_i) ∩ d(t_j)|` is the number of bytes of task `j`'s inputs
//! stored on process `i`'s node.
//!
//! The algorithm is a quota-constrained variant of deferred acceptance
//! (stable marriage): every process below its `n/m` quota repeatedly
//! proposes to its best not-yet-considered task; an unassigned task accepts;
//! an assigned task trades up if the new process has a strictly larger
//! matching value. Like the paper we add a liveness fallback: a process that
//! has considered every task (possible when all its candidates keep losing
//! ties) takes arbitrary unassigned tasks, so the algorithm always
//! terminates with a complete balanced assignment.

use crate::assignment::Assignment;

/// Sparse matching values between processes and tasks.
///
/// `values[p]` holds `(task, bytes)` pairs for tasks with non-zero
/// co-located data on process `p`'s node; everything absent is zero.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatchingValues {
    n_procs: usize,
    n_tasks: usize,
    values: Vec<Vec<(usize, u64)>>,
}

impl MatchingValues {
    /// Creates an all-zero table.
    pub fn new(n_procs: usize, n_tasks: usize) -> Self {
        MatchingValues {
            n_procs,
            n_tasks,
            values: vec![Vec::new(); n_procs],
        }
    }

    /// Number of processes.
    pub fn n_procs(&self) -> usize {
        self.n_procs
    }

    /// Number of tasks.
    pub fn n_tasks(&self) -> usize {
        self.n_tasks
    }

    /// Adds `bytes` of co-located data between `proc` and `task`.
    pub fn add(&mut self, proc: usize, task: usize, bytes: u64) {
        assert!(proc < self.n_procs, "process {proc} out of range");
        assert!(task < self.n_tasks, "task {task} out of range");
        if bytes == 0 {
            return;
        }
        let row = &mut self.values[proc];
        match row.binary_search_by_key(&task, |&(t, _)| t) {
            Ok(i) => row[i].1 += bytes,
            Err(i) => row.insert(i, (task, bytes)),
        }
    }

    /// Subtracts `bytes` of co-located data between `proc` and `task`
    /// (replica dropped or node failed); the entry disappears when it
    /// reaches zero, keeping the table sparse.
    ///
    /// # Panics
    ///
    /// Panics if the subtraction would underflow — the caller is replaying
    /// a layout delta, and removing bytes that were never added means the
    /// delta and the table have diverged.
    pub fn subtract(&mut self, proc: usize, task: usize, bytes: u64) {
        assert!(proc < self.n_procs, "process {proc} out of range");
        assert!(task < self.n_tasks, "task {task} out of range");
        if bytes == 0 {
            return;
        }
        let row = &mut self.values[proc];
        let i = row
            .binary_search_by_key(&task, |&(t, _)| t)
            .expect("subtracting from an absent (proc, task) value");
        assert!(
            row[i].1 >= bytes,
            "subtracting {bytes} from {} at ({proc},{task})",
            row[i].1
        );
        row[i].1 -= bytes;
        if row[i].1 == 0 {
            row.remove(i);
        }
    }

    /// The matching value `m_proc^task` (0 when not co-located).
    pub fn value(&self, proc: usize, task: usize) -> u64 {
        let row = &self.values[proc];
        row.binary_search_by_key(&task, |&(t, _)| t)
            .map(|i| row[i].1)
            .unwrap_or(0)
    }

    /// Non-zero `(task, bytes)` pairs for `proc`, sorted by task index.
    pub fn tasks_of(&self, proc: usize) -> &[(usize, u64)] {
        &self.values[proc]
    }

    /// Total co-located bytes achieved by an assignment under this table.
    pub fn total_value(&self, assignment: &Assignment) -> u64 {
        (0..assignment.n_tasks())
            .map(|t| self.value(assignment.owner_of(t), t))
            .sum()
    }
}

/// Outcome of the multi-data matcher.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MultiDataOutcome {
    /// The complete balanced assignment.
    pub assignment: Assignment,
    /// Total co-located bytes `Σ_t m_owner(t)^t`.
    pub matched_bytes: u64,
    /// Number of reassignment (trade-up) events that occurred — the paper's
    /// Figure 6(b) cancellation mechanism.
    pub reassignments: usize,
}

/// # Example
///
/// ```
/// use opass_matching::{assign_multi_data, MatchingValues};
///
/// // Two processes, two tasks; process 1 holds far more of task 0's data.
/// let mut values = MatchingValues::new(2, 2);
/// values.add(0, 0, 10);
/// values.add(1, 0, 50);
/// values.add(0, 1, 30);
///
/// let out = assign_multi_data(&values);
/// assert_eq!(out.assignment.owner_of(0), 1); // trade-up wins task 0
/// assert_eq!(out.assignment.owner_of(1), 0);
/// assert_eq!(out.matched_bytes, 80);
/// ```
/// Runs paper Algorithm 1.
///
/// Every process receives either `⌊n/m⌋` or `⌈n/m⌉` tasks (the paper assumes
/// `m | n`; we generalize). Complexity is `O(m·n)` proposals, each `O(1)`
/// with the pre-sorted candidate lists (`O(m·n·log n)` setup).
pub fn assign_multi_data(values: &MatchingValues) -> MultiDataOutcome {
    let m = values.n_procs();
    let n = values.n_tasks();
    assert!(m > 0, "need at least one process");
    let quota = crate::single_data::quotas(n, m);

    // Candidate lists: all tasks sorted by (value desc, task asc). Tasks
    // with zero value are included so the proposal loop is complete.
    let mut candidates: Vec<Vec<usize>> = Vec::with_capacity(m);
    for p in 0..m {
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| values.value(p, b).cmp(&values.value(p, a)).then(a.cmp(&b)));
        candidates.push(order);
    }
    let mut cursor = vec![0usize; m];

    let mut owner: Vec<Option<usize>> = vec![None; n];
    let mut load = vec![0usize; m];
    let mut reassignments = 0usize;

    // Work queue of processes below quota. Deterministic order.
    let mut queue: std::collections::VecDeque<usize> = (0..m).filter(|&p| quota[p] > 0).collect();

    while let Some(p) = queue.pop_front() {
        if load[p] >= quota[p] {
            continue;
        }
        // Propose to the best not-yet-considered task.
        if cursor[p] >= n {
            // Fallback: p has considered everything; grab any unassigned
            // tasks (they must exist because quotas sum to n).
            while load[p] < quota[p] {
                let task = owner
                    .iter()
                    .position(Option::is_none)
                    .expect("quotas sum to n, an unassigned task must exist");
                owner[task] = Some(p);
                load[p] += 1;
            }
            continue;
        }
        let task = candidates[p][cursor[p]];
        cursor[p] += 1;

        match owner[task] {
            None => {
                owner[task] = Some(p);
                load[p] += 1;
            }
            Some(current) => {
                // Trade up only on strictly larger value (paper line 11).
                if values.value(current, task) < values.value(p, task) {
                    owner[task] = Some(p);
                    load[p] += 1;
                    load[current] -= 1;
                    reassignments += 1;
                    queue.push_back(current);
                }
            }
        }
        if load[p] < quota[p] {
            queue.push_back(p);
        }
    }

    debug_assert!(owner.iter().all(Option::is_some));
    let owner: Vec<usize> = owner.into_iter().map(Option::unwrap).collect();
    let assignment = Assignment::from_owners(owner, m);
    let matched_bytes = values.total_value(&assignment);
    MultiDataOutcome {
        assignment,
        matched_bytes,
        reassignments,
    }
}

/// Repairs a multi-data assignment after layout churn by re-running the
/// Algorithm 1 proposal loop over `affected` tasks only.
///
/// Tasks outside `affected` keep their owners from `prev`; affected tasks
/// are unassigned and re-auctioned under the (possibly updated) `values`
/// table with the same strict trade-up rule, restricted so the repair can
/// never disturb an unaffected task. The result is always complete and
/// balanced, and is a pure function of `(values, prev, affected)` — the
/// cheap mirror of the single-data residual repair, not an exactness
/// guarantee (Algorithm 1 itself is a heuristic).
///
/// # Panics
///
/// Panics if `prev` disagrees with `values` on dimensions, or `affected`
/// contains an out-of-range task.
pub fn repair_multi_data(
    values: &MatchingValues,
    prev: &Assignment,
    affected: &[usize],
) -> MultiDataOutcome {
    let m = values.n_procs();
    let n = values.n_tasks();
    assert!(m > 0, "need at least one process");
    assert_eq!(prev.n_procs(), m, "process count changed; re-plan instead");
    assert_eq!(prev.n_tasks(), n, "task count changed; re-plan instead");
    let quota = crate::single_data::quotas(n, m);

    let mut affected: Vec<usize> = affected.to_vec();
    affected.sort_unstable();
    affected.dedup();
    if let Some(&t) = affected.last() {
        assert!(t < n, "task {t} out of range");
    }
    let in_scope = |t: usize| affected.binary_search(&t).is_ok();

    // Seed from the previous assignment with affected tasks evicted.
    let mut owner: Vec<Option<usize>> = (0..n)
        .map(|t| (!in_scope(t)).then(|| prev.owner_of(t)))
        .collect();
    let mut load = vec![0usize; m];
    for o in owner.iter().flatten() {
        load[*o] += 1;
    }

    // Candidate lists cover only the auctioned tasks.
    let mut candidates: Vec<Vec<usize>> = Vec::with_capacity(m);
    for p in 0..m {
        let mut order = affected.clone();
        order.sort_by(|&a, &b| values.value(p, b).cmp(&values.value(p, a)).then(a.cmp(&b)));
        candidates.push(order);
    }
    let mut cursor = vec![0usize; m];
    let mut reassignments = 0usize;

    let mut queue: std::collections::VecDeque<usize> =
        (0..m).filter(|&p| load[p] < quota[p]).collect();
    while let Some(p) = queue.pop_front() {
        if load[p] >= quota[p] {
            continue;
        }
        if cursor[p] >= candidates[p].len() {
            // Same liveness fallback as the full algorithm, over the
            // auctioned set only (exactly the affected tasks can be open).
            while load[p] < quota[p] {
                let task = owner
                    .iter()
                    .position(Option::is_none)
                    .expect("quotas sum to n, an unassigned task must exist");
                owner[task] = Some(p);
                load[p] += 1;
            }
            continue;
        }
        let task = candidates[p][cursor[p]];
        cursor[p] += 1;
        match owner[task] {
            None => {
                owner[task] = Some(p);
                load[p] += 1;
            }
            Some(current) => {
                if values.value(current, task) < values.value(p, task) {
                    owner[task] = Some(p);
                    load[p] += 1;
                    load[current] -= 1;
                    reassignments += 1;
                    queue.push_back(current);
                }
            }
        }
        if load[p] < quota[p] {
            queue.push_back(p);
        }
    }

    debug_assert!(owner.iter().all(Option::is_some));
    let owner: Vec<usize> = owner.into_iter().map(Option::unwrap).collect();
    let assignment = Assignment::from_owners(owner, m);
    let matched_bytes = values.total_value(&assignment);
    MultiDataOutcome {
        assignment,
        matched_bytes,
        reassignments,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: u64 = 1 << 20;

    #[test]
    fn empty_table_still_balances() {
        let values = MatchingValues::new(4, 8);
        let out = assign_multi_data(&values);
        assert!(out.assignment.is_balanced());
        assert_eq!(out.matched_bytes, 0);
        assert_eq!(out.assignment.n_tasks(), 8);
    }

    #[test]
    fn value_accumulates_multiple_inputs() {
        let mut v = MatchingValues::new(1, 1);
        v.add(0, 0, 30 * MB);
        v.add(0, 0, 10 * MB);
        assert_eq!(v.value(0, 0), 40 * MB);
    }

    #[test]
    fn paper_figure6_example() {
        // Figure 6(a): 4 processes, 8 tasks, with the table of co-located
        // sizes (MB). Zero entries omitted.
        let table: [[u64; 8]; 4] = [
            // t0  t1  t2  t3  t4  t5  t6  t7
            [30, 10, 20, 20, 40, 40, 10, 0],  // p0
            [30, 30, 20, 20, 0, 0, 10, 10],   // p1
            [10, 30, 30, 20, 20, 10, 10, 10], // p2
            [20, 10, 10, 20, 20, 10, 20, 0],  // p3
        ];
        let mut v = MatchingValues::new(4, 8);
        for (p, row) in table.iter().enumerate() {
            for (t, &mb) in row.iter().enumerate() {
                v.add(p, t, mb * MB);
            }
        }
        let out = assign_multi_data(&v);
        assert!(out.assignment.is_balanced());
        assert_eq!(out.assignment.tasks_of(0).len(), 2);
        // p0's top matches (t4, t5 at 40 MB) must be won by p0: nobody
        // else values them higher.
        assert_eq!(out.assignment.owner_of(4), 0);
        assert_eq!(out.assignment.owner_of(5), 0);
        // The greedy per-process optimum from each process's perspective
        // should reach a large total; the best possible here is bounded by
        // the sum of each task's max column value.
        let upper: u64 = (0..8)
            .map(|t| (0..4).map(|p| v.value(p, t)).max().unwrap())
            .sum();
        assert!(out.matched_bytes <= upper);
        assert!(
            out.matched_bytes >= upper / 2,
            "matched {} of {}",
            out.matched_bytes,
            upper
        );
    }

    #[test]
    fn reassignment_happens_when_later_proc_values_more() {
        // Task 0: p0 values 10, p1 values 50. p0 proposes first (queue
        // order), then p1 must steal it.
        let mut v = MatchingValues::new(2, 2);
        v.add(0, 0, 10);
        v.add(1, 0, 50);
        v.add(0, 1, 5);
        let out = assign_multi_data(&v);
        assert_eq!(out.assignment.owner_of(0), 1);
        assert_eq!(out.assignment.owner_of(1), 0);
        assert!(out.reassignments >= 1);
    }

    #[test]
    fn ties_do_not_cause_churn() {
        // All values equal: no reassignment should ever fire (strict
        // inequality), and the result must still balance.
        let mut v = MatchingValues::new(3, 6);
        for p in 0..3 {
            for t in 0..6 {
                v.add(p, t, 64);
            }
        }
        let out = assign_multi_data(&v);
        assert_eq!(out.reassignments, 0);
        assert!(out.assignment.is_balanced());
        assert_eq!(out.matched_bytes, 6 * 64);
    }

    #[test]
    fn quota_is_exact_when_divisible() {
        let mut v = MatchingValues::new(4, 12);
        // Skew everything toward p0; quota still caps it at 3.
        for t in 0..12 {
            v.add(0, t, 1000);
        }
        let out = assign_multi_data(&v);
        for p in 0..4 {
            assert_eq!(out.assignment.tasks_of(p).len(), 3, "p={p}");
        }
    }

    #[test]
    fn indivisible_task_counts_spread_by_one() {
        let v = MatchingValues::new(4, 10);
        let out = assign_multi_data(&v);
        let loads = out.assignment.load_vector();
        assert_eq!(loads.iter().sum::<usize>(), 10);
        assert!(out.assignment.load_spread() <= 1, "loads={loads:?}");
    }

    #[test]
    fn no_task_duplicated_or_dropped() {
        let mut v = MatchingValues::new(5, 23);
        // Deterministic pseudo-random values.
        let mut state = 12345u64;
        for p in 0..5 {
            for t in 0..23 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                if state % 3 == 0 {
                    v.add(p, t, state % 100 + 1);
                }
            }
        }
        let out = assign_multi_data(&v);
        let mut seen = [false; 23];
        for p in 0..5 {
            for &t in out.assignment.tasks_of(p) {
                assert!(!seen[t], "task {t} duplicated");
                seen[t] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "all tasks assigned");
    }

    fn random_values(m: usize, n: usize, seed: u64) -> MatchingValues {
        let mut v = MatchingValues::new(m, n);
        let mut state = seed;
        for p in 0..m {
            for t in 0..n {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                if state % 3 != 0 {
                    v.add(p, t, state % 200 + 1);
                }
            }
        }
        v
    }

    #[test]
    fn repair_with_no_affected_tasks_is_identity() {
        let v = random_values(4, 12, 8);
        let full = assign_multi_data(&v);
        let out = repair_multi_data(&v, &full.assignment, &[]);
        assert_eq!(out.assignment, full.assignment);
        assert_eq!(out.reassignments, 0);
    }

    #[test]
    fn repair_over_all_tasks_equals_full_run() {
        // Auctioning every task restricts nothing, so the repair loop is
        // the full algorithm: proposal order and results must coincide.
        let v = random_values(5, 20, 44);
        let full = assign_multi_data(&v);
        let all: Vec<usize> = (0..20).collect();
        let out = repair_multi_data(&v, &full.assignment, &all);
        assert_eq!(out.assignment, full.assignment);
        assert_eq!(out.matched_bytes, full.matched_bytes);
    }

    #[test]
    fn repair_keeps_unaffected_owners_and_stays_balanced() {
        let v = random_values(4, 16, 3);
        let full = assign_multi_data(&v);
        // Change values for two tasks (replica churn) and repair them.
        let mut v2 = v.clone();
        v2.add(0, 5, 10_000);
        v2.add(3, 11, 10_000);
        let out = repair_multi_data(&v2, &full.assignment, &[5, 11]);
        for t in 0..16 {
            if t != 5 && t != 11 {
                assert_eq!(
                    out.assignment.owner_of(t),
                    full.assignment.owner_of(t),
                    "unaffected task {t} must keep its owner"
                );
            }
        }
        assert!(out.assignment.is_balanced());
        // No task duplicated or dropped across the repair.
        let mut seen = [false; 16];
        for p in 0..4 {
            for &t in out.assignment.tasks_of(p) {
                assert!(!seen[t], "task {t} duplicated");
                seen[t] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn repair_is_deterministic() {
        let v = random_values(3, 9, 17);
        let full = assign_multi_data(&v);
        let a = repair_multi_data(&v, &full.assignment, &[2, 4, 7]);
        let b = repair_multi_data(&v, &full.assignment, &[7, 2, 4, 2]);
        assert_eq!(a, b, "order/duplicates in the affected set are ignored");
    }

    #[test]
    fn process_perspective_optimality() {
        // Stable-marriage-style check: no process p and task t exist such
        // that p values t strictly more than one of its own tasks AND t's
        // owner values t strictly less than p does (a blocking pair under
        // quota exchange).
        let mut v = MatchingValues::new(3, 9);
        let mut state = 99u64;
        for p in 0..3 {
            for t in 0..9 {
                state = state
                    .wrapping_mul(2862933555777941757)
                    .wrapping_add(3037000493);
                v.add(p, t, state % 64 + 1);
            }
        }
        let out = assign_multi_data(&v);
        for p in 0..3 {
            let my_min = out
                .assignment
                .tasks_of(p)
                .iter()
                .map(|&t| v.value(p, t))
                .min()
                .unwrap();
            for t in 0..9 {
                let owner = out.assignment.owner_of(t);
                if owner == p {
                    continue;
                }
                let blocking = v.value(p, t) > my_min && v.value(owner, t) < v.value(p, t);
                assert!(
                    !blocking,
                    "blocking pair: p={p} t={t} (value {} > own min {my_min}, owner {} holds at {})",
                    v.value(p, t),
                    owner,
                    v.value(owner, t)
                );
            }
        }
    }
}
