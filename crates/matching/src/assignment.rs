//! Task-to-process assignments and their quality metrics.
//!
//! Every matcher in this crate produces an [`Assignment`]; the runtime crate
//! executes one, and the figure harness reports its locality and balance.

use crate::graph::BipartiteGraph;

/// A complete mapping of `n_tasks` tasks onto `n_procs` processes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assignment {
    /// `owner[t]` = process that executes task `t`.
    owner: Vec<usize>,
    /// `per_proc[p]` = tasks of process `p`, in assignment order.
    per_proc: Vec<Vec<usize>>,
}

impl Assignment {
    /// Builds an assignment from an owner vector.
    ///
    /// # Panics
    ///
    /// Panics if any owner index is `>= n_procs`.
    pub fn from_owners(owner: Vec<usize>, n_procs: usize) -> Self {
        // Counting pass first so every per-proc list is allocated exactly
        // once — the lists are rebuilt on every incremental re-plan, and
        // growth reallocations dominated this constructor at 10^5+ tasks.
        let mut counts = vec![0usize; n_procs];
        for (task, &p) in owner.iter().enumerate() {
            assert!(p < n_procs, "task {task} assigned to unknown process {p}");
            counts[p] += 1;
        }
        let mut per_proc: Vec<Vec<usize>> = counts.iter().map(|&c| Vec::with_capacity(c)).collect();
        for (task, &p) in owner.iter().enumerate() {
            per_proc[p].push(task);
        }
        Assignment { owner, per_proc }
    }

    /// Number of tasks.
    pub fn n_tasks(&self) -> usize {
        self.owner.len()
    }

    /// Number of processes.
    pub fn n_procs(&self) -> usize {
        self.per_proc.len()
    }

    /// The process that owns `task`.
    pub fn owner_of(&self, task: usize) -> usize {
        self.owner[task]
    }

    /// Tasks assigned to `proc`, in assignment order.
    pub fn tasks_of(&self, proc: usize) -> &[usize] {
        &self.per_proc[proc]
    }

    /// The owner vector (task index → process index).
    pub fn owners(&self) -> &[usize] {
        &self.owner
    }

    /// Task counts per process.
    pub fn load_vector(&self) -> Vec<usize> {
        self.per_proc.iter().map(Vec::len).collect()
    }

    /// Largest minus smallest per-process task count; 0 means perfectly
    /// balanced, ≤1 is the best achievable when `n_tasks % n_procs != 0`.
    pub fn load_spread(&self) -> usize {
        let loads = self.load_vector();
        match (loads.iter().max(), loads.iter().min()) {
            (Some(&max), Some(&min)) => max - min,
            _ => 0,
        }
    }

    /// True when per-process loads differ by at most one task — the paper's
    /// "equal number of tasks" requirement.
    pub fn is_balanced(&self) -> bool {
        self.load_spread() <= 1
    }
}

/// Locality metrics of an assignment against a bipartite locality graph
/// whose files coincide with the assignment's tasks (single-data case).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LocalityReport {
    /// Tasks whose data is fully local to their owner.
    pub local_tasks: usize,
    /// Total tasks.
    pub total_tasks: usize,
    /// Bytes readable locally under this assignment.
    pub local_bytes: u64,
    /// Total bytes demanded by all tasks.
    pub total_bytes: u64,
}

impl LocalityReport {
    /// Fraction of tasks served locally.
    pub fn task_fraction(&self) -> f64 {
        if self.total_tasks == 0 {
            return 1.0;
        }
        self.local_tasks as f64 / self.total_tasks as f64
    }

    /// Fraction of bytes served locally.
    pub fn byte_fraction(&self) -> f64 {
        if self.total_bytes == 0 {
            return 1.0;
        }
        self.local_bytes as f64 / self.total_bytes as f64
    }
}

/// Scores a single-data assignment: task `t` is local iff the graph has an
/// edge between its owner and file `t`. `file_sizes[t]` gives each task's
/// demand in bytes.
pub fn locality_report(
    assignment: &Assignment,
    graph: &BipartiteGraph,
    file_sizes: &[u64],
) -> LocalityReport {
    assert_eq!(assignment.n_tasks(), graph.n_files(), "task/file mismatch");
    assert_eq!(file_sizes.len(), graph.n_files(), "size vector mismatch");
    let mut local_tasks = 0usize;
    let mut local_bytes = 0u64;
    for (task, &size) in file_sizes.iter().enumerate() {
        if graph.weight(assignment.owner_of(task), task).is_some() {
            local_tasks += 1;
            local_bytes += size;
        }
    }
    LocalityReport {
        local_tasks,
        total_tasks: assignment.n_tasks(),
        local_bytes,
        total_bytes: file_sizes.iter().sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_owners_builds_per_proc_lists() {
        let a = Assignment::from_owners(vec![0, 1, 0, 1], 2);
        assert_eq!(a.tasks_of(0), &[0, 2]);
        assert_eq!(a.tasks_of(1), &[1, 3]);
        assert_eq!(a.owner_of(3), 1);
        assert!(a.is_balanced());
        assert_eq!(a.load_spread(), 0);
    }

    #[test]
    fn imbalanced_assignment_detected() {
        let a = Assignment::from_owners(vec![0, 0, 0, 1], 2);
        assert!(!a.is_balanced());
        assert_eq!(a.load_spread(), 2);
        assert_eq!(a.load_vector(), vec![3, 1]);
    }

    #[test]
    fn locality_report_counts_edges() {
        let mut g = BipartiteGraph::new(2, 3);
        g.add_edge(0, 0, 10);
        g.add_edge(1, 1, 20);
        // task 2 has no locality anywhere
        let a = Assignment::from_owners(vec![0, 1, 0], 2);
        let report = locality_report(&a, &g, &[10, 20, 30]);
        assert_eq!(report.local_tasks, 2);
        assert_eq!(report.local_bytes, 30);
        assert_eq!(report.total_bytes, 60);
        assert!((report.task_fraction() - 2.0 / 3.0).abs() < 1e-12);
        assert!((report.byte_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_assignment_is_fully_local() {
        let g = BipartiteGraph::new(1, 0);
        let a = Assignment::from_owners(vec![], 1);
        let report = locality_report(&a, &g, &[]);
        assert_eq!(report.task_fraction(), 1.0);
        assert_eq!(report.byte_fraction(), 1.0);
    }

    #[test]
    #[should_panic(expected = "unknown process")]
    fn rejects_bad_owner() {
        let _ = Assignment::from_owners(vec![2], 2);
    }
}
