//! Incremental single-data matching: repair instead of re-solve.
//!
//! [`IncrementalMatcher`] keeps the residual network of the last max-flow
//! solve — for a unit-capacity bipartite matching that is exactly the
//! `owner` / `load` / `quota` state — and repairs it after a layout delta
//! with augmenting / de-augmenting path searches seeded only from the
//! delta-touched vertices. Each elementary mutation restores maximality
//! before the next is applied, so after any delta sequence the matching
//! has the same cardinality a from-scratch solve would produce; under
//! [`Objective::MatchedBytes`] an exchange pass additionally restores the
//! maximum matched-byte total among maximum matchings (matchable file sets
//! form a transversal matroid, so the absence of any single improving
//! exchange implies global optimality).
//!
//! Why seeded searches suffice: if the matching was maximum before a
//! single edge/vertex change, any new augmenting path must use the changed
//! element — otherwise it would have existed before, contradicting
//! maximality. A failed seeded search is therefore a *proof* that the
//! repaired matching is again maximum, not a heuristic give-up.
//!
//! The residual state lives in dense arenas ([`MatchState`]): `u32`
//! owner/load/quota slabs and an intrusive [`OwnedList`] inverse index,
//! so the searches run allocation-free over the graph's raw adjacency
//! slices. Batch repair can additionally fan out over connected
//! components on scoped threads
//! ([`IncrementalMatcher::repair_batch_threads`]) while staying
//! bit-identical to the sequential reference path.

use crate::arena::{OwnedList, NONE};
use crate::graph::BipartiteGraph;
use crate::parallel;
use crate::single_data::{quotas, Objective};

fn quotas_u32(n_files: usize, n_procs: usize) -> Vec<u32> {
    quotas(n_files, n_procs)
        .into_iter()
        .map(|q| u32::try_from(q).expect("quota fits u32"))
        .collect()
}

/// The dense residual state of a quota-constrained bipartite matching:
/// everything the repair searches touch per visit, flattened into
/// index-addressed slabs. [`NONE`] is the unmatched sentinel throughout.
///
/// Kept separate from the graph so the search methods can borrow the
/// adjacency (`&BipartiteGraph`) immutably while mutating the state —
/// the split-borrow that lets the DFS walk raw neighbor slices with
/// zero per-visit allocation.
#[derive(Debug, Clone)]
pub(crate) struct MatchState {
    /// Per-process task quota (always `quotas(n_files, n_procs)`).
    pub(crate) quota: Vec<u32>,
    /// `owner[f]` = process matched to file `f`, or [`NONE`].
    pub(crate) owner: Vec<u32>,
    /// Inverse of `owner` (`proc -> owned files`, ascending), kept in
    /// lockstep so the repair DFS enumerates a process's matches in
    /// O(load) instead of scanning every file.
    pub(crate) owned: OwnedList,
    /// `load[p]` = number of files matched to process `p`.
    pub(crate) load: Vec<u32>,
    /// DFS visited marks over processes, versioned to avoid clearing.
    mark: Vec<u64>,
    epoch: u64,
    /// Frame-stacked `(weight, file)` snapshots for the exchange DFS —
    /// one reusable buffer instead of a sort allocation per visit.
    scratch: Vec<(u64, u32)>,
}

impl MatchState {
    /// The single shared construction path (also the parallel-repair
    /// write-back): adopts a dense owner vector verbatim and derives
    /// `load` and the `owned` inverse index from it. `quota.len()` is
    /// the process count. Validation stays at the public callers.
    pub(crate) fn adopt(owner: Vec<u32>, quota: Vec<u32>) -> Self {
        let m = quota.len();
        let mut load = vec![0u32; m];
        for &p in &owner {
            if p != NONE {
                load[p as usize] += 1;
            }
        }
        let owned = OwnedList::rebuild_from(&owner, m);
        MatchState {
            quota,
            owner,
            owned,
            load,
            mark: vec![0; m],
            epoch: 0,
            scratch: Vec::new(),
        }
    }

    /// Points `file` at `proc` ([`NONE`] detaches), keeping the `owned`
    /// inverse index in lockstep. Load bookkeeping stays at the call
    /// sites — the searches move load along paths, not per file.
    fn set_owner(&mut self, file: u32, proc: u32) {
        let old = self.owner[file as usize];
        if old != NONE {
            self.owned.remove(old, file);
        }
        if proc != NONE {
            self.owned.insert(proc, file);
        }
        self.owner[file as usize] = proc;
    }

    /// Kuhn-style augmenting search from an unmatched file. Commits on
    /// success; on failure the matching is untouched.
    fn try_augment(&mut self, g: &BipartiteGraph, file: u32) -> bool {
        if self.owner[file as usize] != NONE {
            return false;
        }
        self.epoch += 1;
        self.dfs_rehome(g, file)
    }

    /// Finds a home for unmatched `file`: a co-located process with spare
    /// quota, re-homing matched files along the way. Sorted adjacency and
    /// the ascending `owned` chains make the path choice deterministic.
    fn dfs_rehome(&mut self, g: &BipartiteGraph, file: u32) -> bool {
        for &p in g.procs_raw(file as usize) {
            if self.mark[p as usize] == self.epoch {
                continue;
            }
            self.mark[p as usize] = self.epoch;
            if self.load[p as usize] < self.quota[p as usize] {
                self.set_owner(file, p);
                self.load[p as usize] += 1;
                return true;
            }
            // Walk p's owned chain live: capture the successor before
            // unlinking, and note that the recursion below cannot touch
            // p's chain (p is marked, so no deeper frame assigns to or
            // evicts from it) — a failed branch relinks `f2` in place and
            // the captured successor is still the right resume point.
            let mut f2 = self.owned.head_of(p);
            while f2 != NONE {
                let nxt = self.owned.next_of(f2);
                self.set_owner(f2, NONE);
                if self.dfs_rehome(g, f2) {
                    self.set_owner(file, p); // p trades f2 for file
                    return true;
                }
                self.set_owner(f2, p);
                f2 = nxt;
            }
        }
        false
    }

    /// Augmenting search that terminates *into* `proc` (which must have
    /// spare quota): reach an unmatched file along an alternating path
    /// rooted at `proc`. Commits on success.
    fn try_augment_into(&mut self, g: &BipartiteGraph, proc: u32) -> bool {
        if self.load[proc as usize] >= self.quota[proc as usize] {
            return false;
        }
        self.epoch += 1;
        self.dfs_feed(g, proc)
    }

    fn dfs_feed(&mut self, g: &BipartiteGraph, proc: u32) -> bool {
        if self.mark[proc as usize] == self.epoch {
            return false;
        }
        self.mark[proc as usize] = self.epoch;
        for &f in g.files_raw(proc as usize) {
            if self.owner[f as usize] == NONE {
                self.set_owner(f, proc);
                self.load[proc as usize] += 1;
                return true;
            }
        }
        for &f in g.files_raw(proc as usize) {
            let q = self.owner[f as usize];
            if self.mark[q as usize] == self.epoch {
                continue;
            }
            // Tentatively steal f so the recursion cannot grab it back,
            // then let q recover through its own adjacency.
            self.set_owner(f, proc);
            self.load[proc as usize] += 1;
            self.load[q as usize] -= 1;
            if self.dfs_feed(g, q) {
                return true;
            }
            self.set_owner(f, q);
            self.load[q as usize] += 1;
            self.load[proc as usize] -= 1;
        }
        false
    }

    /// Repairs after inserting edge `(proc, file)` where `file` is
    /// matched to some other process `q`. Any augmenting path must cross
    /// the new edge, splitting into a *release* half (source capacity
    /// reaches `proc`) and a *feed* half (`q` re-homes onto a different
    /// unmatched file). Both halves are vertex-disjoint from each other
    /// whenever the prior matching was maximum — a shared vertex would
    /// splice into an augmenting path that predates the edge — so they
    /// can be committed independently.
    fn augment_through(&mut self, g: &BipartiteGraph, proc: u32, file: u32) {
        if !self.release_capacity(g, proc) {
            return; // no augmenting path can cross the new edge
        }
        let q = self.owner[file as usize];
        debug_assert!(q != NONE, "caller checked matched");
        // Move `file` across the new edge (cardinality unchanged), then
        // let the freed unit at q hunt for an unmatched file.
        self.set_owner(file, proc);
        self.load[proc as usize] += 1;
        self.load[q as usize] -= 1;
        // If this fails the matching is still valid and still maximum;
        // the move simply stands (deterministic either way).
        self.try_augment_into(g, q);
    }

    /// Ensures `proc` has a spare quota unit, re-homing one of its owned
    /// files along an alternating path if necessary (commits on success).
    /// Failure proves no unit of source capacity can reach `proc`.
    fn release_capacity(&mut self, g: &BipartiteGraph, proc: u32) -> bool {
        if self.load[proc as usize] < self.quota[proc as usize] {
            return true;
        }
        let mut f2 = self.owned.head_of(proc);
        while f2 != NONE {
            let nxt = self.owned.next_of(f2);
            self.epoch += 1;
            self.mark[proc as usize] = self.epoch; // the chain must not re-enter
            self.set_owner(f2, NONE);
            self.load[proc as usize] -= 1;
            if self.dfs_rehome(g, f2) {
                return true;
            }
            self.set_owner(f2, proc);
            self.load[proc as usize] += 1;
            f2 = nxt;
        }
        false
    }

    /// Restores maximality after staged mutations: Kuhn phases over the
    /// unmatched files with phase-shared visited marks (the DFS stage of
    /// Hopcroft–Karp), repeated until a full phase augments nothing.
    /// Sound as a stopping proof because every augmenting path begins at
    /// an unmatched file; phase-sharing the marks only defers paths
    /// blocked by an earlier search in the same phase to the next phase.
    /// Finishes with the byte-optimality exchange pass.
    pub(crate) fn repair_core(&mut self, g: &BipartiteGraph, objective: Objective) {
        loop {
            self.epoch += 1;
            let mut progressed = false;
            for f in 0..self.owner.len() {
                if self.owner[f] == NONE && self.dfs_rehome(g, f as u32) {
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }
        self.restore_bytes_optimality(g, objective);
    }

    /// Restores byte-optimality among maximum matchings via improving
    /// alternating-path exchanges; a no-op under `Objective::MatchCount`.
    ///
    /// Every unmatched file tries to enter the matching by evicting a
    /// strictly smaller matched file reachable along an alternating path
    /// (the transversal-matroid exchange). Each successful swap strictly
    /// increases the byte total, so the fixpoint is reached in finitely
    /// many steps; at the fixpoint no single improving exchange exists,
    /// which for a matroid weight objective is global optimality.
    fn restore_bytes_optimality(&mut self, g: &BipartiteGraph, objective: Objective) {
        if objective != Objective::MatchedBytes {
            return;
        }
        loop {
            let mut unmatched: Vec<(u64, u32)> = (0..self.owner.len() as u32)
                .filter(|&f| self.owner[f as usize] == NONE)
                .map(|f| (file_size(g, f), f))
                .collect();
            // Deterministic order: biggest files first, then index.
            unmatched.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
            let mut progressed = false;
            for (size, f) in unmatched {
                if self.owner[f as usize] == NONE && self.try_exchange(g, f, size) {
                    progressed = true;
                }
            }
            if !progressed {
                return;
            }
        }
    }

    /// Attempts to bring unmatched `file` into the matching by evicting a
    /// strictly smaller matched file along an alternating path.
    fn try_exchange(&mut self, g: &BipartiteGraph, file: u32, size: u64) -> bool {
        if size == 0 {
            return false;
        }
        self.epoch += 1;
        self.dfs_exchange(g, file, size)
    }

    /// DFS for an alternating path from unmatched `file` ending at a
    /// victim with size < `limit`; `file` enters, the victim leaves,
    /// cardinality is unchanged and matched bytes strictly increase.
    /// Only mutates state on the committed success path.
    fn dfs_exchange(&mut self, g: &BipartiteGraph, file: u32, limit: u64) -> bool {
        for &p in g.procs_raw(file as usize) {
            if self.mark[p as usize] == self.epoch {
                continue;
            }
            self.mark[p as usize] = self.epoch;
            debug_assert!(
                self.load[p as usize] >= self.quota[p as usize],
                "spare quota next to an unmatched file contradicts maximality"
            );
            // Snapshot p's owned files smallest-first onto the scratch
            // stack: evict the cheapest, and prefer direct eviction over
            // deeper pass-through chains. Frames below ours push past
            // `end` and truncate back to it, so our slots stay stable.
            let frame = self.scratch.len();
            let mut f2 = self.owned.head_of(p);
            while f2 != NONE {
                let w = g.weight(p as usize, f2 as usize).unwrap_or(0);
                self.scratch.push((w, f2));
                f2 = self.owned.next_of(f2);
            }
            self.scratch[frame..].sort_unstable();
            let end = self.scratch.len();
            for i in frame..end {
                let (w, f2) = self.scratch[i];
                if w < limit {
                    self.set_owner(f2, NONE);
                    self.set_owner(file, p);
                    self.scratch.truncate(frame);
                    return true;
                }
                self.set_owner(f2, NONE);
                if self.dfs_exchange(g, f2, limit) {
                    self.set_owner(file, p);
                    self.scratch.truncate(frame);
                    return true;
                }
                self.set_owner(f2, p);
            }
            self.scratch.truncate(frame);
        }
        false
    }
}

/// The file's chunk size: edge weights are uniform across a file's
/// replicas (a process reads the whole chunk locally or not at all).
fn file_size(g: &BipartiteGraph, file: u32) -> u64 {
    g.procs_raw_wts(file as usize).first().copied().unwrap_or(0)
}

/// A maximum bipartite matching that can be repaired in place as the
/// underlying locality graph mutates.
///
/// The matcher owns its copy of the graph; callers mutate it exclusively
/// through the methods here so the residual state never goes stale.
#[derive(Debug, Clone)]
pub struct IncrementalMatcher {
    graph: BipartiteGraph,
    objective: Objective,
    state: MatchState,
}

/// Semantic equality: same graph, objective, quotas, owners, and loads.
/// Search scratch (visited marks, epoch counter, exchange stack) and the
/// `owned` index — a pure function of `owner` — are excluded, so two
/// matchers that would behave identically compare equal even if they
/// reached the state through different repair schedules.
impl PartialEq for IncrementalMatcher {
    fn eq(&self, other: &Self) -> bool {
        self.graph == other.graph
            && self.objective == other.objective
            && self.state.quota == other.state.quota
            && self.state.owner == other.state.owner
            && self.state.load == other.state.load
    }
}

impl Eq for IncrementalMatcher {}

impl IncrementalMatcher {
    /// Builds the matcher from a graph, solving the initial matching with
    /// augmenting searches (same cardinality as max-flow).
    pub fn new(graph: BipartiteGraph, objective: Objective) -> Self {
        let m = graph.n_procs();
        let n = graph.n_files();
        assert!(m > 0, "need at least one process");
        let state = MatchState::adopt(vec![NONE; n], quotas_u32(n, m));
        let mut s = IncrementalMatcher {
            graph,
            objective,
            state,
        };
        for f in 0..n as u32 {
            s.state.try_augment(&s.graph, f);
        }
        s.state.restore_bytes_optimality(&s.graph, s.objective);
        s.debug_check();
        s
    }

    /// Adopts an existing matching (e.g. the one a from-scratch flow
    /// solve produced) instead of re-solving, so a long-lived session can
    /// start from the scratch planner's exact assignment and still repair
    /// incrementally. The matching is topped up to maximality (a no-op
    /// when the input is already maximum — every augmenting search fails
    /// without mutating anything) and, under
    /// [`Objective::MatchedBytes`], the exchange pass restores byte
    /// optimality (again a no-op for a min-cost-flow input).
    ///
    /// # Panics
    ///
    /// Panics if `owner` has the wrong length, names an edge absent from
    /// the graph, or overfills a process's quota.
    pub fn from_matching(
        graph: BipartiteGraph,
        objective: Objective,
        owner: Vec<Option<usize>>,
    ) -> Self {
        let m = graph.n_procs();
        let n = graph.n_files();
        assert!(m > 0, "need at least one process");
        assert_eq!(owner.len(), n, "one owner slot per file");
        let dense: Vec<u32> = owner
            .iter()
            .enumerate()
            .map(|(f, o)| match *o {
                Some(p) => {
                    assert!(
                        graph.weight(p, f).is_some(),
                        "matched edge ({p},{f}) absent from the graph"
                    );
                    p as u32
                }
                None => NONE,
            })
            .collect();
        let state = MatchState::adopt(dense, quotas_u32(n, m));
        for (p, (&l, &q)) in state.load.iter().zip(&state.quota).enumerate() {
            assert!(l <= q, "process {p} above quota");
        }
        let mut s = IncrementalMatcher {
            graph,
            objective,
            state,
        };
        for f in 0..n as u32 {
            if s.state.owner[f as usize] == NONE {
                s.state.try_augment(&s.graph, f);
            }
        }
        s.state.restore_bytes_optimality(&s.graph, s.objective);
        s.debug_check();
        s
    }

    /// The graph as currently mutated.
    pub fn graph(&self) -> &BipartiteGraph {
        &self.graph
    }

    /// Current matching cardinality.
    pub fn matched_count(&self) -> usize {
        // The load slab is maintained on every owner change, so summing
        // it is O(procs), not O(files).
        self.state.load.iter().map(|&l| l as usize).sum()
    }

    /// Sum of matched-edge weights (locally read bytes).
    pub fn matched_bytes(&self) -> u64 {
        self.state
            .owner
            .iter()
            .enumerate()
            .filter(|&(_, &p)| p != NONE)
            .map(|(f, &p)| {
                self.graph
                    .weight(p as usize, f)
                    .expect("matched edge exists")
            })
            .sum()
    }

    /// Owner of each file, if matched locally, decoded from the dense
    /// slab (a fresh vector — use [`IncrementalMatcher::owner_of`] or
    /// [`IncrementalMatcher::owners_dense`] on hot paths).
    pub fn owners(&self) -> Vec<Option<usize>> {
        self.state
            .owner
            .iter()
            .map(|&p| (p != NONE).then_some(p as usize))
            .collect()
    }

    /// Owner of `file`, if matched locally.
    pub fn owner_of(&self, file: usize) -> Option<usize> {
        let p = self.state.owner[file];
        (p != NONE).then_some(p as usize)
    }

    /// The raw owner slab: one `u32` process handle per file, [`NONE`]
    /// when unmatched. Zero-copy view for render and bench paths.
    pub fn owners_dense(&self) -> &[u32] {
        &self.state.owner
    }

    /// Per-process quotas in force.
    pub fn quota(&self) -> &[u32] {
        &self.state.quota
    }

    /// Per-process matched load.
    pub fn load(&self) -> &[u32] {
        &self.state.load
    }

    /// Adds (or reweights) a locality edge and repairs the matching.
    pub fn add_edge(&mut self, proc: usize, file: usize, bytes: u64) {
        let existed = self.graph.weight(proc, file).is_some();
        self.graph.add_edge(proc, file, bytes);
        if !existed {
            if self.state.owner[file] == NONE {
                self.state.try_augment(&self.graph, file as u32);
            } else {
                self.state
                    .augment_through(&self.graph, proc as u32, file as u32);
            }
        }
        self.state
            .restore_bytes_optimality(&self.graph, self.objective);
        self.debug_check();
    }

    /// Removes a locality edge and repairs the matching.
    pub fn remove_edge(&mut self, proc: usize, file: usize) {
        if !self.graph.remove_edge(proc, file) {
            return;
        }
        if self.state.owner[file] == proc as u32 {
            self.state.set_owner(file as u32, NONE);
            self.state.load[proc] -= 1;
            // Two independent recovery routes, each bounded by the one
            // unit of residual capacity the removal created: rematch the
            // file elsewhere, and refill the freed quota unit of `proc`.
            self.state.try_augment(&self.graph, file as u32);
            self.state.try_augment_into(&self.graph, proc as u32);
        }
        self.state
            .restore_bytes_optimality(&self.graph, self.objective);
        self.debug_check();
    }

    /// Appends a new file with the given locality edges `(proc, bytes)`
    /// and repairs. Quotas grow by one unit at process `n mod m` (the
    /// largest-remainder layout shifts in exactly one slot), so the
    /// max-flow value can rise by at most one on each of the two new
    /// sources of slack: the new file and the grown quota. Returns the
    /// new file index.
    pub fn add_file(&mut self, edges: &[(usize, u64)]) -> usize {
        let f = self.graph.push_file();
        self.state.owner.push(NONE);
        self.state.owned.push_file();
        for &(p, bytes) in edges {
            self.graph.add_edge(p, f, bytes);
        }
        let gainer = (self.graph.n_files() - 1) % self.state.load.len();
        self.state.quota[gainer] += 1;
        self.state.try_augment(&self.graph, f as u32);
        self.state.try_augment_into(&self.graph, gainer as u32);
        self.state
            .restore_bytes_optimality(&self.graph, self.objective);
        self.debug_check();
        f
    }

    /// Removes file `file` (files above shift down, mirroring snapshot
    /// compaction) and repairs. The quota unit lost at process
    /// `(n-1) mod m` de-augments a deterministic victim — the smallest
    /// `(bytes, index)` file that process owns — which then gets one
    /// rematch attempt; a failed rematch proves the shrunk network's flow
    /// really is one lower.
    pub fn remove_file(&mut self, file: usize) {
        let freed_proc = self.state.owner[file];
        self.state.owner.remove(file);
        self.graph.remove_file(file);
        // Every file index above `file` shifted down: re-adopt the owner
        // slab through the shared construction path, which re-derives
        // `owned` and `load` (removal is already O(n) in the graph
        // compaction). Quotas are still pre-shrink here.
        let owner = std::mem::take(&mut self.state.owner);
        let quota = std::mem::take(&mut self.state.quota);
        self.state = MatchState::adopt(owner, quota);
        let loser = self.graph.n_files() % self.state.load.len();
        self.state.quota[loser] -= 1;
        let mut victim = NONE;
        if self.state.load[loser] > self.state.quota[loser] {
            let mut best = (u64::MAX, NONE);
            let mut f2 = self.state.owned.head_of(loser as u32);
            while f2 != NONE {
                let w = self.graph.weight(loser, f2 as usize).unwrap_or(0);
                if (w, f2) < best {
                    best = (w, f2);
                }
                f2 = self.state.owned.next_of(f2);
            }
            let v = best.1;
            assert!(v != NONE, "load > quota implies an owned file");
            self.state.set_owner(v, NONE);
            self.state.load[loser] -= 1;
            victim = v;
        }
        if victim != NONE {
            self.state.try_augment(&self.graph, victim);
        }
        if freed_proc != NONE {
            self.state.try_augment_into(&self.graph, freed_proc);
        }
        self.state
            .restore_bytes_optimality(&self.graph, self.objective);
        self.debug_check();
    }

    /// Stages an edge insertion (or reweight) without repairing; pair
    /// with [`IncrementalMatcher::repair_batch`]. Staging a whole delta
    /// and repairing once replaces per-mutation proof searches — each up
    /// to O(edges) — with a few shared phases for the entire batch.
    pub fn stage_add_edge(&mut self, proc: usize, file: usize, bytes: u64) {
        self.graph.add_edge(proc, file, bytes);
    }

    /// Stages an edge removal without repairing: if `file` was matched
    /// across the edge it simply becomes unmatched. Pair with
    /// [`IncrementalMatcher::repair_batch`].
    pub fn stage_remove_edge(&mut self, proc: usize, file: usize) {
        if !self.graph.remove_edge(proc, file) {
            return;
        }
        if self.state.owner[file] == proc as u32 {
            self.state.set_owner(file as u32, NONE);
            self.state.load[proc] -= 1;
        }
    }

    /// Restores maximality after staged mutations on the sequential
    /// reference path; see [`MatchState::repair_core`] for the phase
    /// discipline and stopping proof.
    pub fn repair_batch(&mut self) {
        self.state.repair_core(&self.graph, self.objective);
        self.debug_check();
    }

    /// Like [`IncrementalMatcher::repair_batch`], but fans the repair out
    /// over the connected components of the locality graph on up to
    /// `threads` scoped threads. Augmenting and exchange paths never
    /// leave a component, and only components containing an unmatched
    /// file can change, so each component repairs independently with the
    /// *same* sequential kernel and the merged result is bit-identical
    /// to the reference path — `threads <= 1`, or too few components,
    /// simply falls back to it.
    pub fn repair_batch_threads(&mut self, threads: usize) {
        if threads <= 1 {
            self.repair_batch();
            return;
        }
        match parallel::repair_parallel(&self.graph, &self.state, self.objective, threads) {
            Some(owner) => {
                let quota = std::mem::take(&mut self.state.quota);
                self.state = MatchState::adopt(owner, quota);
                self.debug_check();
            }
            None => self.repair_batch(),
        }
    }

    #[cfg(debug_assertions)]
    fn debug_check(&self) {
        self.graph.check_mirror().expect("graph mirror invariant");
        assert_eq!(
            self.state.quota.iter().map(|&q| q as usize).sum::<usize>(),
            self.graph.n_files(),
            "quotas sum to the file count"
        );
        let mut load = vec![0u32; self.state.load.len()];
        for (f, &p) in self.state.owner.iter().enumerate() {
            if p != NONE {
                assert!(
                    self.graph.weight(p as usize, f).is_some(),
                    "matched pair ({p},{f}) must be an edge"
                );
                load[p as usize] += 1;
            }
        }
        assert_eq!(load, self.state.load, "load vector consistent with owners");
        for (p, (&l, &q)) in load.iter().zip(&self.state.quota).enumerate() {
            assert!(l <= q, "process {p} over quota");
        }
        for p in 0..self.state.load.len() as u32 {
            let mut prev = NONE;
            let mut count = 0u32;
            for f in self.state.owned.iter(p) {
                assert!(prev == NONE || prev < f, "owned chain of {p} must ascend");
                assert_eq!(self.state.owner[f as usize], p, "chain member owned by {p}");
                prev = f;
                count += 1;
            }
            assert_eq!(count, load[p as usize], "chain length equals load");
        }
    }

    #[cfg(not(debug_assertions))]
    fn debug_check(&self) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::maxflow::FlowAlgo;
    use crate::single_data::{FillPolicy, SingleDataMatcher};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Reference (cardinality, matched bytes) via the flow matcher.
    fn flow_reference(graph: &BipartiteGraph, objective: Objective) -> (usize, u64) {
        let matcher = SingleDataMatcher {
            algo: FlowAlgo::Dinic,
            fill: FillPolicy::LeastLoaded,
            objective,
        };
        let out = matcher.assign(graph, &mut StdRng::seed_from_u64(0));
        // Matched bytes = weights of owner edges that exist in the graph
        // (fill assignments have no locality edge and contribute nothing).
        let bytes: u64 = out
            .assignment
            .owners()
            .iter()
            .enumerate()
            .filter_map(|(f, &p)| graph.weight(p, f))
            .sum();
        (out.matched_files, bytes)
    }

    fn random_graph(m: usize, n: usize, density_mod: u64, seed: u64) -> BipartiteGraph {
        let mut g = BipartiteGraph::new(m, n);
        let mut state = seed;
        for f in 0..n {
            for p in 0..m {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                if state % density_mod == 0 {
                    g.add_edge(p, f, 64);
                }
            }
        }
        g
    }

    #[test]
    fn initial_solve_matches_flow_cardinality() {
        for seed in 0..8 {
            let g = random_graph(4, 16, 3, seed);
            let inc = IncrementalMatcher::new(g.clone(), Objective::MatchCount);
            let (card, _) = flow_reference(&g, Objective::MatchCount);
            assert_eq!(inc.matched_count(), card, "seed {seed}");
        }
    }

    #[test]
    fn edge_add_repairs_to_flow_cardinality() {
        let mut inc = IncrementalMatcher::new(random_graph(4, 16, 4, 11), Objective::MatchCount);
        let mut state = 99u64;
        for _ in 0..40 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let p = (state >> 8) as usize % 4;
            let f = (state >> 24) as usize % 16;
            if inc.graph().weight(p, f).is_none() {
                inc.add_edge(p, f, 64);
                let (card, _) = flow_reference(inc.graph(), Objective::MatchCount);
                assert_eq!(inc.matched_count(), card, "after add ({p},{f})");
            }
        }
    }

    #[test]
    fn edge_remove_repairs_to_flow_cardinality() {
        let mut inc = IncrementalMatcher::new(random_graph(4, 16, 2, 5), Objective::MatchCount);
        let mut state = 7u64;
        for _ in 0..60 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let p = (state >> 8) as usize % 4;
            let f = (state >> 24) as usize % 16;
            if inc.graph().weight(p, f).is_some() {
                inc.remove_edge(p, f);
                let (card, _) = flow_reference(inc.graph(), Objective::MatchCount);
                assert_eq!(inc.matched_count(), card, "after remove ({p},{f})");
            }
        }
    }

    #[test]
    fn mixed_churn_repairs_to_flow_cardinality() {
        let mut inc = IncrementalMatcher::new(random_graph(5, 20, 3, 31), Objective::MatchCount);
        let mut state = 13u64;
        for step in 0..80 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let p = (state >> 8) as usize % 5;
            let f = (state >> 24) as usize % inc.graph().n_files();
            if inc.graph().weight(p, f).is_some() {
                inc.remove_edge(p, f);
            } else {
                inc.add_edge(p, f, 64);
            }
            let (card, _) = flow_reference(inc.graph(), Objective::MatchCount);
            assert_eq!(inc.matched_count(), card, "step {step}");
        }
    }

    #[test]
    fn staged_batch_repairs_to_flow_cardinality() {
        // The staged path (mutate everything, repair once) must land on
        // the same cardinality as both the flow reference and the
        // per-mutation elementary path, for batches of any mix.
        let mut state = 41u64;
        for round in 0..6 {
            let g = random_graph(5, 24, 3, 100 + round);
            let mut staged = IncrementalMatcher::new(g.clone(), Objective::MatchCount);
            let mut elementary = IncrementalMatcher::new(g, Objective::MatchCount);
            let mut ops = Vec::new();
            for _ in 0..12 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let p = (state >> 8) as usize % 5;
                let f = (state >> 24) as usize % 24;
                ops.push((p, f, staged.graph().weight(p, f).is_some()));
            }
            for &(p, f, present) in &ops {
                if present {
                    staged.stage_remove_edge(p, f);
                    elementary.remove_edge(p, f);
                } else {
                    staged.stage_add_edge(p, f, 64);
                    elementary.add_edge(p, f, 64);
                }
            }
            staged.repair_batch();
            let (card, _) = flow_reference(staged.graph(), Objective::MatchCount);
            assert_eq!(staged.matched_count(), card, "round {round}: vs flow");
            assert_eq!(
                staged.matched_count(),
                elementary.matched_count(),
                "round {round}: staged and elementary paths must agree"
            );
            assert_eq!(
                staged.graph(),
                elementary.graph(),
                "round {round}: both paths apply the same graph mutations"
            );
        }
    }

    #[test]
    fn staged_batch_restores_byte_optimality() {
        let sizes = [120u64, 8, 64, 5, 250, 40, 77, 13];
        let mut g = BipartiteGraph::new(3, 8);
        let mut state = 23u64;
        for (f, &sz) in sizes.iter().enumerate() {
            for p in 0..3 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                if state % 2 == 0 {
                    g.add_edge(p, f, sz);
                }
            }
        }
        let mut inc = IncrementalMatcher::new(g, Objective::MatchedBytes);
        let mut state = 9u64;
        for step in 0..10 {
            // Stage a small batch, repair once, compare to min-cost flow.
            for _ in 0..4 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let p = (state >> 8) as usize % 3;
                let f = (state >> 24) as usize % 8;
                if inc.graph().weight(p, f).is_some() {
                    inc.stage_remove_edge(p, f);
                } else {
                    inc.stage_add_edge(p, f, sizes[f]);
                }
            }
            inc.repair_batch();
            let (card, bytes) = flow_reference(inc.graph(), Objective::MatchedBytes);
            assert_eq!(inc.matched_count(), card, "cardinality, step {step}");
            assert_eq!(inc.matched_bytes(), bytes, "bytes, step {step}");
        }
    }

    #[test]
    fn file_add_and_remove_repair_to_flow_cardinality() {
        let g = random_graph(4, 12, 3, 21);
        let mut inc = IncrementalMatcher::new(g, Objective::MatchCount);
        let f = inc.add_file(&[(0, 64), (2, 64)]);
        assert_eq!(f, 12);
        inc.add_file(&[]); // isolated file
        inc.add_file(&[(1, 64)]);
        let (card, _) = flow_reference(inc.graph(), Objective::MatchCount);
        assert_eq!(inc.matched_count(), card);
        inc.remove_file(0);
        inc.remove_file(7);
        inc.remove_file(inc.graph().n_files() - 1);
        let (card, _) = flow_reference(inc.graph(), Objective::MatchCount);
        assert_eq!(inc.matched_count(), card);
    }

    #[test]
    fn quota_tracks_file_count() {
        let q32 = |n, m| {
            quotas(n, m)
                .into_iter()
                .map(|q| q as u32)
                .collect::<Vec<u32>>()
        };
        let g = random_graph(3, 10, 2, 2);
        let mut inc = IncrementalMatcher::new(g, Objective::MatchCount);
        assert_eq!(inc.quota(), &q32(10, 3)[..]);
        inc.add_file(&[(0, 64)]);
        assert_eq!(inc.quota(), &q32(11, 3)[..]);
        inc.remove_file(3);
        inc.remove_file(0);
        assert_eq!(inc.quota(), &q32(9, 3)[..]);
    }

    #[test]
    fn bytes_objective_reaches_flow_byte_total() {
        // Mixed chunk sizes; every repair must land on the same matched
        // byte total as min-cost flow from scratch.
        let sizes = [100u64, 10, 64, 7, 200, 33, 50, 91];
        let mut g = BipartiteGraph::new(3, 8);
        let mut state = 17u64;
        for (f, &sz) in sizes.iter().enumerate() {
            for p in 0..3 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                if state % 2 == 0 {
                    g.add_edge(p, f, sz);
                }
            }
        }
        let mut inc = IncrementalMatcher::new(g.clone(), Objective::MatchedBytes);
        let (card, bytes) = flow_reference(&g, Objective::MatchedBytes);
        assert_eq!(inc.matched_count(), card);
        assert_eq!(inc.matched_bytes(), bytes);
        let mut state = 3u64;
        for step in 0..30 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let p = (state >> 8) as usize % 3;
            let f = (state >> 24) as usize % 8;
            if inc.graph().weight(p, f).is_some() {
                inc.remove_edge(p, f);
            } else {
                inc.add_edge(p, f, sizes[f]);
            }
            let (card, bytes) = flow_reference(inc.graph(), Objective::MatchedBytes);
            assert_eq!(inc.matched_count(), card, "cardinality, step {step}");
            assert_eq!(inc.matched_bytes(), bytes, "bytes, step {step}");
        }
    }

    #[test]
    fn repair_is_deterministic() {
        let g = random_graph(4, 20, 3, 77);
        let script = |inc: &mut IncrementalMatcher| {
            inc.add_edge(0, 5, 64);
            inc.remove_edge(1, 2);
            inc.add_file(&[(2, 64), (3, 64)]);
            inc.remove_file(4);
        };
        let mut a = IncrementalMatcher::new(g.clone(), Objective::MatchCount);
        let mut b = IncrementalMatcher::new(g, Objective::MatchCount);
        script(&mut a);
        script(&mut b);
        assert_eq!(a, b, "same delta sequence must be bit-identical");
        assert_eq!(a.owners_dense(), b.owners_dense());
    }

    #[test]
    fn from_matching_adopts_flow_solve_verbatim_and_repairs() {
        for seed in [1u64, 9, 44] {
            let graph = random_graph(6, 40, 3, seed);
            let scratch = SingleDataMatcher {
                algo: FlowAlgo::Dinic,
                fill: FillPolicy::LeastLoaded,
                objective: Objective::MatchCount,
            };
            let (owners, matched) = scratch.flow_owners(&graph);
            let mut inc = IncrementalMatcher::from_matching(
                graph.clone(),
                Objective::MatchCount,
                owners.clone(),
            );
            assert_eq!(
                inc.owners(),
                &owners[..],
                "adopting a maximum matching must not change it"
            );
            assert_eq!(inc.matched_count(), matched);
            // The adopted state repairs like a freshly-solved one.
            inc.remove_file(seed as usize % 40);
            let (want, _) = flow_reference(inc.graph(), Objective::MatchCount);
            assert_eq!(inc.matched_count(), want, "seed {seed}");
        }
    }

    #[test]
    fn from_matching_tops_up_a_non_maximum_input() {
        let graph = random_graph(5, 30, 2, 7);
        // Empty matching in: the constructor must reach maximality.
        let inc =
            IncrementalMatcher::from_matching(graph.clone(), Objective::MatchCount, vec![None; 30]);
        let (want, _) = flow_reference(&graph, Objective::MatchCount);
        assert_eq!(inc.matched_count(), want);
    }

    #[test]
    fn from_matching_bytes_input_stays_byte_optimal() {
        let graph = random_graph(4, 24, 2, 123);
        let scratch = SingleDataMatcher {
            algo: FlowAlgo::Dinic,
            fill: FillPolicy::LeastLoaded,
            objective: Objective::MatchedBytes,
        };
        let (owners, _) = scratch.flow_owners(&graph);
        let inc = IncrementalMatcher::from_matching(
            graph.clone(),
            Objective::MatchedBytes,
            owners.clone(),
        );
        assert_eq!(
            inc.owners(),
            &owners[..],
            "a min-cost-flow matching is already byte-optimal"
        );
        let (_, want_bytes) = flow_reference(&graph, Objective::MatchedBytes);
        assert_eq!(inc.matched_bytes(), want_bytes);
    }

    /// A clustered world with disjoint components so the parallel path
    /// actually partitions: `groups` islands of `m_per` procs and `n_per`
    /// files each, randomly wired within the island only.
    fn clustered_graph(groups: usize, m_per: usize, n_per: usize, seed: u64) -> BipartiteGraph {
        let mut g = BipartiteGraph::new(groups * m_per, groups * n_per);
        let mut state = seed;
        for c in 0..groups {
            for f in 0..n_per {
                for p in 0..m_per {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    if state % 3 == 0 {
                        g.add_edge(c * m_per + p, c * n_per + f, state % 500 + 1);
                    }
                }
            }
        }
        g
    }

    #[test]
    fn parallel_repair_is_bit_identical_to_sequential() {
        for objective in [Objective::MatchCount, Objective::MatchedBytes] {
            for seed in [3u64, 19, 71] {
                let g = clustered_graph(6, 3, 9, seed);
                let mut seq = IncrementalMatcher::new(g.clone(), objective);
                let mut par2 = seq.clone();
                let mut par8 = seq.clone();
                let mut state = seed ^ 0xABCD;
                let mut ops = Vec::new();
                for _ in 0..30 {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let p = (state >> 8) as usize % g.n_procs();
                    // Stay within the island so components survive churn.
                    let island = p / 3;
                    let f = island * 9 + (state >> 24) as usize % 9;
                    ops.push((p, f, state % 997 + 1));
                }
                for m in [&mut seq, &mut par2, &mut par8] {
                    for &(p, f, bytes) in &ops {
                        if m.graph().weight(p, f).is_some() {
                            m.stage_remove_edge(p, f);
                        } else {
                            m.stage_add_edge(p, f, bytes);
                        }
                    }
                }
                seq.repair_batch();
                par2.repair_batch_threads(2);
                par8.repair_batch_threads(8);
                assert_eq!(seq, par2, "2 threads, seed {seed}");
                assert_eq!(seq, par8, "8 threads, seed {seed}");
                assert_eq!(seq.owners_dense(), par2.owners_dense());
                assert_eq!(seq.owners_dense(), par8.owners_dense());
                // And the parallel result keeps repairing identically.
                par8.add_edge(0, 1, 42);
                seq.add_edge(0, 1, 42);
                assert_eq!(seq, par8, "post-merge repairs stay in lockstep");
            }
        }
    }

    #[test]
    fn parallel_repair_falls_back_on_single_component() {
        // One fully-connected component: the parallel entry point must
        // fall back to the sequential kernel and still be identical.
        let g = random_graph(4, 16, 2, 55);
        let mut seq = IncrementalMatcher::new(g.clone(), Objective::MatchedBytes);
        let mut par = seq.clone();
        seq.stage_remove_edge(0, 0);
        par.stage_remove_edge(0, 0);
        seq.repair_batch();
        par.repair_batch_threads(8);
        assert_eq!(seq, par);
    }
}
