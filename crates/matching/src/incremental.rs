//! Incremental single-data matching: repair instead of re-solve.
//!
//! [`IncrementalMatcher`] keeps the residual network of the last max-flow
//! solve — for a unit-capacity bipartite matching that is exactly the
//! `owner` / `load` / `quota` state — and repairs it after a layout delta
//! with augmenting / de-augmenting path searches seeded only from the
//! delta-touched vertices. Each elementary mutation restores maximality
//! before the next is applied, so after any delta sequence the matching
//! has the same cardinality a from-scratch solve would produce; under
//! [`Objective::MatchedBytes`] an exchange pass additionally restores the
//! maximum matched-byte total among maximum matchings (matchable file sets
//! form a transversal matroid, so the absence of any single improving
//! exchange implies global optimality).
//!
//! Why seeded searches suffice: if the matching was maximum before a
//! single edge/vertex change, any new augmenting path must use the changed
//! element — otherwise it would have existed before, contradicting
//! maximality. A failed seeded search is therefore a *proof* that the
//! repaired matching is again maximum, not a heuristic give-up.

use crate::graph::BipartiteGraph;
use crate::single_data::{quotas, Objective};
use std::collections::BTreeSet;

/// A maximum bipartite matching that can be repaired in place as the
/// underlying locality graph mutates.
///
/// The matcher owns its copy of the graph; callers mutate it exclusively
/// through the methods here so the residual state never goes stale.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IncrementalMatcher {
    graph: BipartiteGraph,
    objective: Objective,
    /// Per-process task quota (always `quotas(n_files, n_procs)`).
    quota: Vec<usize>,
    /// `owner[f]` = process matched to file `f`, if any.
    owner: Vec<Option<usize>>,
    /// `owned[p]` = files matched to process `p` — the inverse of
    /// `owner`, kept in lockstep so the repair DFS can enumerate a
    /// process's matches in O(load) instead of scanning every file.
    owned: Vec<BTreeSet<usize>>,
    /// `load[p]` = number of files matched to process `p`.
    load: Vec<usize>,
    /// DFS visited marks over processes, versioned to avoid clearing.
    mark: Vec<u64>,
    epoch: u64,
}

impl IncrementalMatcher {
    /// Builds the matcher from a graph, solving the initial matching with
    /// augmenting searches (same cardinality as max-flow).
    pub fn new(graph: BipartiteGraph, objective: Objective) -> Self {
        let m = graph.n_procs();
        let n = graph.n_files();
        assert!(m > 0, "need at least one process");
        let mut s = IncrementalMatcher {
            graph,
            objective,
            quota: quotas(n, m),
            owner: vec![None; n],
            owned: vec![BTreeSet::new(); m],
            load: vec![0; m],
            mark: vec![0; m],
            epoch: 0,
        };
        for f in 0..n {
            s.try_augment(f);
        }
        s.restore_bytes_optimality();
        s.debug_check();
        s
    }

    /// Adopts an existing matching (e.g. the one a from-scratch flow
    /// solve produced) instead of re-solving, so a long-lived session can
    /// start from the scratch planner's exact assignment and still repair
    /// incrementally. The matching is topped up to maximality (a no-op
    /// when the input is already maximum — every augmenting search fails
    /// without mutating anything) and, under
    /// [`Objective::MatchedBytes`], the exchange pass restores byte
    /// optimality (again a no-op for a min-cost-flow input).
    ///
    /// # Panics
    ///
    /// Panics if `owner` has the wrong length, names an edge absent from
    /// the graph, or overfills a process's quota.
    pub fn from_matching(
        graph: BipartiteGraph,
        objective: Objective,
        owner: Vec<Option<usize>>,
    ) -> Self {
        let m = graph.n_procs();
        let n = graph.n_files();
        assert!(m > 0, "need at least one process");
        assert_eq!(owner.len(), n, "one owner slot per file");
        let quota = quotas(n, m);
        let mut load = vec![0usize; m];
        for (f, o) in owner.iter().enumerate() {
            if let Some(p) = *o {
                assert!(
                    graph.weight(p, f).is_some(),
                    "matched edge ({p},{f}) absent from the graph"
                );
                load[p] += 1;
                assert!(load[p] <= quota[p], "process {p} above quota");
            }
        }
        let mut owned = vec![BTreeSet::new(); m];
        for (f, o) in owner.iter().enumerate() {
            if let Some(p) = *o {
                owned[p].insert(f);
            }
        }
        let mut s = IncrementalMatcher {
            graph,
            objective,
            quota,
            owner,
            owned,
            load,
            mark: vec![0; m],
            epoch: 0,
        };
        for f in 0..n {
            if s.owner[f].is_none() {
                s.try_augment(f);
            }
        }
        s.restore_bytes_optimality();
        s.debug_check();
        s
    }

    /// The graph as currently mutated.
    pub fn graph(&self) -> &BipartiteGraph {
        &self.graph
    }

    /// Current matching cardinality.
    pub fn matched_count(&self) -> usize {
        self.owner.iter().filter(|o| o.is_some()).count()
    }

    /// Sum of matched-edge weights (locally read bytes).
    pub fn matched_bytes(&self) -> u64 {
        self.owner
            .iter()
            .enumerate()
            .filter_map(|(f, o)| o.map(|p| self.graph.weight(p, f).expect("matched edge exists")))
            .sum()
    }

    /// Owner of each file, if matched locally.
    pub fn owners(&self) -> &[Option<usize>] {
        &self.owner
    }

    /// Per-process quotas in force.
    pub fn quota(&self) -> &[usize] {
        &self.quota
    }

    /// Per-process matched load.
    pub fn load(&self) -> &[usize] {
        &self.load
    }

    /// Adds (or reweights) a locality edge and repairs the matching.
    pub fn add_edge(&mut self, proc: usize, file: usize, bytes: u64) {
        let existed = self.graph.weight(proc, file).is_some();
        self.graph.add_edge(proc, file, bytes);
        if !existed {
            if self.owner[file].is_none() {
                self.try_augment(file);
            } else {
                self.augment_through(proc, file);
            }
        }
        self.restore_bytes_optimality();
        self.debug_check();
    }

    /// Removes a locality edge and repairs the matching.
    pub fn remove_edge(&mut self, proc: usize, file: usize) {
        if !self.graph.remove_edge(proc, file) {
            return;
        }
        if self.owner[file] == Some(proc) {
            self.set_owner(file, None);
            self.load[proc] -= 1;
            // Two independent recovery routes, each bounded by the one
            // unit of residual capacity the removal created: rematch the
            // file elsewhere, and refill the freed quota unit of `proc`.
            self.try_augment(file);
            self.try_augment_into(proc);
        }
        self.restore_bytes_optimality();
        self.debug_check();
    }

    /// Appends a new file with the given locality edges `(proc, bytes)`
    /// and repairs. Quotas grow by one unit at process `n mod m` (the
    /// largest-remainder layout shifts in exactly one slot), so the
    /// max-flow value can rise by at most one on each of the two new
    /// sources of slack: the new file and the grown quota. Returns the
    /// new file index.
    pub fn add_file(&mut self, edges: &[(usize, u64)]) -> usize {
        let f = self.graph.push_file();
        self.owner.push(None);
        for &(p, bytes) in edges {
            self.graph.add_edge(p, f, bytes);
        }
        let gainer = (self.graph.n_files() - 1) % self.load.len();
        self.quota[gainer] += 1;
        self.try_augment(f);
        self.try_augment_into(gainer);
        self.restore_bytes_optimality();
        self.debug_check();
        f
    }

    /// Removes file `file` (files above shift down, mirroring snapshot
    /// compaction) and repairs. The quota unit lost at process
    /// `(n-1) mod m` de-augments a deterministic victim — the smallest
    /// `(bytes, index)` file that process owns — which then gets one
    /// rematch attempt; a failed rematch proves the shrunk network's flow
    /// really is one lower.
    pub fn remove_file(&mut self, file: usize) {
        let freed_proc = self.owner[file];
        self.owner.remove(file);
        // Every file index above `file` shifted down: rebuild the
        // inverse index (removal is already O(n) in the graph compaction).
        for set in &mut self.owned {
            set.clear();
        }
        for (f, o) in self.owner.iter().enumerate() {
            if let Some(p) = *o {
                self.owned[p].insert(f);
            }
        }
        self.graph.remove_file(file);
        if let Some(p) = freed_proc {
            self.load[p] -= 1;
        }
        let loser = self.graph.n_files() % self.load.len();
        self.quota[loser] -= 1;
        let mut victim = None;
        if self.load[loser] > self.quota[loser] {
            let v = self
                .owned_files(loser)
                .into_iter()
                .min_by_key(|&g| (self.graph.weight(loser, g).unwrap_or(0), g))
                .expect("load > quota implies an owned file");
            self.set_owner(v, None);
            self.load[loser] -= 1;
            victim = Some(v);
        }
        if let Some(v) = victim {
            self.try_augment(v);
        }
        if let Some(p) = freed_proc {
            self.try_augment_into(p);
        }
        self.restore_bytes_optimality();
        self.debug_check();
    }

    /// Stages an edge insertion (or reweight) without repairing; pair
    /// with [`IncrementalMatcher::repair_batch`]. Staging a whole delta
    /// and repairing once replaces per-mutation proof searches — each up
    /// to O(edges) — with a few shared phases for the entire batch.
    pub fn stage_add_edge(&mut self, proc: usize, file: usize, bytes: u64) {
        self.graph.add_edge(proc, file, bytes);
    }

    /// Stages an edge removal without repairing: if `file` was matched
    /// across the edge it simply becomes unmatched. Pair with
    /// [`IncrementalMatcher::repair_batch`].
    pub fn stage_remove_edge(&mut self, proc: usize, file: usize) {
        if !self.graph.remove_edge(proc, file) {
            return;
        }
        if self.owner[file] == Some(proc) {
            self.set_owner(file, None);
            self.load[proc] -= 1;
        }
    }

    /// Restores maximality after staged mutations: Kuhn phases over the
    /// unmatched files with phase-shared visited marks (the DFS stage of
    /// Hopcroft–Karp), repeated until a full phase augments nothing.
    /// Sound as a stopping proof because every augmenting path begins at
    /// an unmatched file; phase-sharing the marks only defers paths
    /// blocked by an earlier search in the same phase to the next phase.
    /// Finishes with the byte-optimality exchange pass.
    pub fn repair_batch(&mut self) {
        loop {
            self.epoch += 1;
            let mut progressed = false;
            for f in 0..self.owner.len() {
                if self.owner[f].is_none() && self.dfs_rehome(f) {
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }
        self.restore_bytes_optimality();
        self.debug_check();
    }

    /// Files currently owned by `proc` (ascending index). O(load), not
    /// O(files): the DFS searches call this for every visited process,
    /// and a failed (proof-of-maximality) search visits a whole
    /// component — a linear scan here made repair slower than re-solving.
    fn owned_files(&self, proc: usize) -> Vec<usize> {
        self.owned[proc].iter().copied().collect()
    }

    /// Points `file` at `proc`, keeping the `owned` inverse index in
    /// lockstep. Load bookkeeping stays at the call sites — the searches
    /// move load along paths, not per file.
    fn set_owner(&mut self, file: usize, proc: Option<usize>) {
        if let Some(old) = self.owner[file] {
            self.owned[old].remove(&file);
        }
        if let Some(p) = proc {
            self.owned[p].insert(file);
        }
        self.owner[file] = proc;
    }

    /// Repairs after inserting edge `(proc, file)` where `file` is
    /// matched to some other process `q`. Any augmenting path must cross
    /// the new edge, splitting into a *release* half (source capacity
    /// reaches `proc`) and a *feed* half (`q` re-homes onto a different
    /// unmatched file). Both halves are vertex-disjoint from each other
    /// whenever the prior matching was maximum — a shared vertex would
    /// splice into an augmenting path that predates the edge — so they
    /// can be committed independently.
    fn augment_through(&mut self, proc: usize, file: usize) {
        if !self.release_capacity(proc) {
            return; // no augmenting path can cross the new edge
        }
        let q = self.owner[file].expect("caller checked matched");
        // Move `file` across the new edge (cardinality unchanged), then
        // let the freed unit at q hunt for an unmatched file.
        self.set_owner(file, Some(proc));
        self.load[proc] += 1;
        self.load[q] -= 1;
        // If this fails the matching is still valid and still maximum;
        // the move simply stands (deterministic either way).
        self.try_augment_into(q);
    }

    /// Ensures `proc` has a spare quota unit, re-homing one of its owned
    /// files along an alternating path if necessary (commits on success).
    /// Failure proves no unit of source capacity can reach `proc`.
    fn release_capacity(&mut self, proc: usize) -> bool {
        if self.load[proc] < self.quota[proc] {
            return true;
        }
        for g in self.owned_files(proc) {
            self.epoch += 1;
            self.mark[proc] = self.epoch; // the chain must not re-enter
            self.set_owner(g, None);
            self.load[proc] -= 1;
            if self.dfs_rehome(g) {
                return true;
            }
            self.set_owner(g, Some(proc));
            self.load[proc] += 1;
        }
        false
    }

    /// Kuhn-style augmenting search from an unmatched file. Commits on
    /// success; on failure the matching is untouched.
    fn try_augment(&mut self, file: usize) -> bool {
        if self.owner[file].is_some() {
            return false;
        }
        self.epoch += 1;
        self.dfs_rehome(file)
    }

    /// Finds a home for unmatched `file`: a co-located process with spare
    /// quota, re-homing matched files along the way. Sorted adjacency
    /// makes the path choice deterministic.
    fn dfs_rehome(&mut self, file: usize) -> bool {
        let procs: Vec<usize> = self.graph.procs_of(file).iter().map(|&(p, _)| p).collect();
        for p in procs {
            if self.mark[p] == self.epoch {
                continue;
            }
            self.mark[p] = self.epoch;
            if self.load[p] < self.quota[p] {
                self.set_owner(file, Some(p));
                self.load[p] += 1;
                return true;
            }
            for g in self.owned_files(p) {
                self.set_owner(g, None);
                if self.dfs_rehome(g) {
                    self.set_owner(file, Some(p)); // p trades g for file
                    return true;
                }
                self.set_owner(g, Some(p));
            }
        }
        false
    }

    /// Augmenting search that terminates *into* `proc` (which must have
    /// spare quota): reach an unmatched file along an alternating path
    /// rooted at `proc`. Commits on success.
    fn try_augment_into(&mut self, proc: usize) -> bool {
        if self.load[proc] >= self.quota[proc] {
            return false;
        }
        self.epoch += 1;
        self.dfs_feed(proc)
    }

    fn dfs_feed(&mut self, proc: usize) -> bool {
        if self.mark[proc] == self.epoch {
            return false;
        }
        self.mark[proc] = self.epoch;
        let files: Vec<usize> = self.graph.files_of(proc).iter().map(|&(f, _)| f).collect();
        for &f in &files {
            if self.owner[f].is_none() {
                self.set_owner(f, Some(proc));
                self.load[proc] += 1;
                return true;
            }
        }
        for &f in &files {
            let q = self.owner[f].expect("unmatched handled above");
            if self.mark[q] == self.epoch {
                continue;
            }
            // Tentatively steal f so the recursion cannot grab it back,
            // then let q recover through its own adjacency.
            self.set_owner(f, Some(proc));
            self.load[proc] += 1;
            self.load[q] -= 1;
            if self.dfs_feed(q) {
                return true;
            }
            self.set_owner(f, Some(q));
            self.load[q] += 1;
            self.load[proc] -= 1;
        }
        false
    }

    /// Restores byte-optimality among maximum matchings via improving
    /// alternating-path exchanges; a no-op under `Objective::MatchCount`.
    ///
    /// Every unmatched file tries to enter the matching by evicting a
    /// strictly smaller matched file reachable along an alternating path
    /// (the transversal-matroid exchange). Each successful swap strictly
    /// increases the byte total, so the fixpoint is reached in finitely
    /// many steps; at the fixpoint no single improving exchange exists,
    /// which for a matroid weight objective is global optimality.
    fn restore_bytes_optimality(&mut self) {
        if self.objective != Objective::MatchedBytes {
            return;
        }
        loop {
            let mut unmatched: Vec<usize> = (0..self.owner.len())
                .filter(|&f| self.owner[f].is_none())
                .collect();
            // Deterministic order: biggest files first, then index.
            unmatched.sort_by_key(|&f| (std::cmp::Reverse(self.file_size(f)), f));
            let mut progressed = false;
            for f in unmatched {
                if self.owner[f].is_none() && self.try_exchange(f) {
                    progressed = true;
                }
            }
            if !progressed {
                return;
            }
        }
    }

    /// The file's chunk size: edge weights are uniform across a file's
    /// replicas (a process reads the whole chunk locally or not at all).
    fn file_size(&self, file: usize) -> u64 {
        self.graph
            .procs_of(file)
            .first()
            .map(|&(_, b)| b)
            .unwrap_or(0)
    }

    /// Attempts to bring unmatched `file` into the matching by evicting a
    /// strictly smaller matched file along an alternating path.
    fn try_exchange(&mut self, file: usize) -> bool {
        let size = self.file_size(file);
        if size == 0 {
            return false;
        }
        self.epoch += 1;
        self.dfs_exchange(file, size)
    }

    /// DFS for an alternating path from unmatched `file` ending at a
    /// victim with size < `limit`; `file` enters, the victim leaves,
    /// cardinality is unchanged and matched bytes strictly increase.
    /// Only mutates state on the committed success path.
    fn dfs_exchange(&mut self, file: usize, limit: u64) -> bool {
        let procs: Vec<usize> = self.graph.procs_of(file).iter().map(|&(p, _)| p).collect();
        for p in procs {
            if self.mark[p] == self.epoch {
                continue;
            }
            self.mark[p] = self.epoch;
            debug_assert!(
                self.load[p] >= self.quota[p],
                "spare quota next to an unmatched file contradicts maximality"
            );
            // Owned files smallest-first: evict the cheapest, and prefer
            // direct eviction over deeper pass-through chains.
            let mut owned = self.owned_files(p);
            owned.sort_by_key(|&g| (self.graph.weight(p, g).unwrap_or(0), g));
            for g in owned {
                if self.graph.weight(p, g).unwrap_or(0) < limit {
                    self.set_owner(g, None);
                    self.set_owner(file, Some(p));
                    return true;
                }
                self.set_owner(g, None);
                if self.dfs_exchange(g, limit) {
                    self.set_owner(file, Some(p));
                    return true;
                }
                self.set_owner(g, Some(p));
            }
        }
        false
    }

    #[cfg(debug_assertions)]
    fn debug_check(&self) {
        self.graph.check_mirror().expect("graph mirror invariant");
        assert_eq!(
            self.quota.iter().sum::<usize>(),
            self.graph.n_files(),
            "quotas sum to the file count"
        );
        let mut load = vec![0usize; self.load.len()];
        for (f, o) in self.owner.iter().enumerate() {
            if let Some(p) = *o {
                assert!(
                    self.graph.weight(p, f).is_some(),
                    "matched pair ({p},{f}) must be an edge"
                );
                load[p] += 1;
            }
        }
        assert_eq!(load, self.load, "load vector consistent with owners");
        for (p, &l) in load.iter().enumerate() {
            assert!(l <= self.quota[p], "process {p} over quota");
        }
        let mut owned = vec![BTreeSet::new(); self.load.len()];
        for (f, o) in self.owner.iter().enumerate() {
            if let Some(p) = *o {
                owned[p].insert(f);
            }
        }
        assert_eq!(owned, self.owned, "inverse index consistent with owners");
    }

    #[cfg(not(debug_assertions))]
    fn debug_check(&self) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::maxflow::FlowAlgo;
    use crate::single_data::{FillPolicy, SingleDataMatcher};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Reference (cardinality, matched bytes) via the flow matcher.
    fn flow_reference(graph: &BipartiteGraph, objective: Objective) -> (usize, u64) {
        let matcher = SingleDataMatcher {
            algo: FlowAlgo::Dinic,
            fill: FillPolicy::LeastLoaded,
            objective,
        };
        let out = matcher.assign(graph, &mut StdRng::seed_from_u64(0));
        // Matched bytes = weights of owner edges that exist in the graph
        // (fill assignments have no locality edge and contribute nothing).
        let bytes: u64 = out
            .assignment
            .owners()
            .iter()
            .enumerate()
            .filter_map(|(f, &p)| graph.weight(p, f))
            .sum();
        (out.matched_files, bytes)
    }

    fn random_graph(m: usize, n: usize, density_mod: u64, seed: u64) -> BipartiteGraph {
        let mut g = BipartiteGraph::new(m, n);
        let mut state = seed;
        for f in 0..n {
            for p in 0..m {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                if state % density_mod == 0 {
                    g.add_edge(p, f, 64);
                }
            }
        }
        g
    }

    #[test]
    fn initial_solve_matches_flow_cardinality() {
        for seed in 0..8 {
            let g = random_graph(4, 16, 3, seed);
            let inc = IncrementalMatcher::new(g.clone(), Objective::MatchCount);
            let (card, _) = flow_reference(&g, Objective::MatchCount);
            assert_eq!(inc.matched_count(), card, "seed {seed}");
        }
    }

    #[test]
    fn edge_add_repairs_to_flow_cardinality() {
        let mut inc = IncrementalMatcher::new(random_graph(4, 16, 4, 11), Objective::MatchCount);
        let mut state = 99u64;
        for _ in 0..40 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let p = (state >> 8) as usize % 4;
            let f = (state >> 24) as usize % 16;
            if inc.graph().weight(p, f).is_none() {
                inc.add_edge(p, f, 64);
                let (card, _) = flow_reference(inc.graph(), Objective::MatchCount);
                assert_eq!(inc.matched_count(), card, "after add ({p},{f})");
            }
        }
    }

    #[test]
    fn edge_remove_repairs_to_flow_cardinality() {
        let mut inc = IncrementalMatcher::new(random_graph(4, 16, 2, 5), Objective::MatchCount);
        let mut state = 7u64;
        for _ in 0..60 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let p = (state >> 8) as usize % 4;
            let f = (state >> 24) as usize % 16;
            if inc.graph().weight(p, f).is_some() {
                inc.remove_edge(p, f);
                let (card, _) = flow_reference(inc.graph(), Objective::MatchCount);
                assert_eq!(inc.matched_count(), card, "after remove ({p},{f})");
            }
        }
    }

    #[test]
    fn mixed_churn_repairs_to_flow_cardinality() {
        let mut inc = IncrementalMatcher::new(random_graph(5, 20, 3, 31), Objective::MatchCount);
        let mut state = 13u64;
        for step in 0..80 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let p = (state >> 8) as usize % 5;
            let f = (state >> 24) as usize % inc.graph().n_files();
            if inc.graph().weight(p, f).is_some() {
                inc.remove_edge(p, f);
            } else {
                inc.add_edge(p, f, 64);
            }
            let (card, _) = flow_reference(inc.graph(), Objective::MatchCount);
            assert_eq!(inc.matched_count(), card, "step {step}");
        }
    }

    #[test]
    fn staged_batch_repairs_to_flow_cardinality() {
        // The staged path (mutate everything, repair once) must land on
        // the same cardinality as both the flow reference and the
        // per-mutation elementary path, for batches of any mix.
        let mut state = 41u64;
        for round in 0..6 {
            let g = random_graph(5, 24, 3, 100 + round);
            let mut staged = IncrementalMatcher::new(g.clone(), Objective::MatchCount);
            let mut elementary = IncrementalMatcher::new(g, Objective::MatchCount);
            let mut ops = Vec::new();
            for _ in 0..12 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let p = (state >> 8) as usize % 5;
                let f = (state >> 24) as usize % 24;
                ops.push((p, f, staged.graph().weight(p, f).is_some()));
            }
            for &(p, f, present) in &ops {
                if present {
                    staged.stage_remove_edge(p, f);
                    elementary.remove_edge(p, f);
                } else {
                    staged.stage_add_edge(p, f, 64);
                    elementary.add_edge(p, f, 64);
                }
            }
            staged.repair_batch();
            let (card, _) = flow_reference(staged.graph(), Objective::MatchCount);
            assert_eq!(staged.matched_count(), card, "round {round}: vs flow");
            assert_eq!(
                staged.matched_count(),
                elementary.matched_count(),
                "round {round}: staged and elementary paths must agree"
            );
            assert_eq!(
                staged.graph(),
                elementary.graph(),
                "round {round}: both paths apply the same graph mutations"
            );
        }
    }

    #[test]
    fn staged_batch_restores_byte_optimality() {
        let sizes = [120u64, 8, 64, 5, 250, 40, 77, 13];
        let mut g = BipartiteGraph::new(3, 8);
        let mut state = 23u64;
        for (f, &sz) in sizes.iter().enumerate() {
            for p in 0..3 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                if state % 2 == 0 {
                    g.add_edge(p, f, sz);
                }
            }
        }
        let mut inc = IncrementalMatcher::new(g, Objective::MatchedBytes);
        let mut state = 9u64;
        for step in 0..10 {
            // Stage a small batch, repair once, compare to min-cost flow.
            for _ in 0..4 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let p = (state >> 8) as usize % 3;
                let f = (state >> 24) as usize % 8;
                if inc.graph().weight(p, f).is_some() {
                    inc.stage_remove_edge(p, f);
                } else {
                    inc.stage_add_edge(p, f, sizes[f]);
                }
            }
            inc.repair_batch();
            let (card, bytes) = flow_reference(inc.graph(), Objective::MatchedBytes);
            assert_eq!(inc.matched_count(), card, "cardinality, step {step}");
            assert_eq!(inc.matched_bytes(), bytes, "bytes, step {step}");
        }
    }

    #[test]
    fn file_add_and_remove_repair_to_flow_cardinality() {
        let g = random_graph(4, 12, 3, 21);
        let mut inc = IncrementalMatcher::new(g, Objective::MatchCount);
        let f = inc.add_file(&[(0, 64), (2, 64)]);
        assert_eq!(f, 12);
        inc.add_file(&[]); // isolated file
        inc.add_file(&[(1, 64)]);
        let (card, _) = flow_reference(inc.graph(), Objective::MatchCount);
        assert_eq!(inc.matched_count(), card);
        inc.remove_file(0);
        inc.remove_file(7);
        inc.remove_file(inc.graph().n_files() - 1);
        let (card, _) = flow_reference(inc.graph(), Objective::MatchCount);
        assert_eq!(inc.matched_count(), card);
    }

    #[test]
    fn quota_tracks_file_count() {
        let g = random_graph(3, 10, 2, 2);
        let mut inc = IncrementalMatcher::new(g, Objective::MatchCount);
        assert_eq!(inc.quota(), &quotas(10, 3)[..]);
        inc.add_file(&[(0, 64)]);
        assert_eq!(inc.quota(), &quotas(11, 3)[..]);
        inc.remove_file(3);
        inc.remove_file(0);
        assert_eq!(inc.quota(), &quotas(9, 3)[..]);
    }

    #[test]
    fn bytes_objective_reaches_flow_byte_total() {
        // Mixed chunk sizes; every repair must land on the same matched
        // byte total as min-cost flow from scratch.
        let sizes = [100u64, 10, 64, 7, 200, 33, 50, 91];
        let mut g = BipartiteGraph::new(3, 8);
        let mut state = 17u64;
        for (f, &sz) in sizes.iter().enumerate() {
            for p in 0..3 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                if state % 2 == 0 {
                    g.add_edge(p, f, sz);
                }
            }
        }
        let mut inc = IncrementalMatcher::new(g.clone(), Objective::MatchedBytes);
        let (card, bytes) = flow_reference(&g, Objective::MatchedBytes);
        assert_eq!(inc.matched_count(), card);
        assert_eq!(inc.matched_bytes(), bytes);
        let mut state = 3u64;
        for step in 0..30 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let p = (state >> 8) as usize % 3;
            let f = (state >> 24) as usize % 8;
            if inc.graph().weight(p, f).is_some() {
                inc.remove_edge(p, f);
            } else {
                inc.add_edge(p, f, sizes[f]);
            }
            let (card, bytes) = flow_reference(inc.graph(), Objective::MatchedBytes);
            assert_eq!(inc.matched_count(), card, "cardinality, step {step}");
            assert_eq!(inc.matched_bytes(), bytes, "bytes, step {step}");
        }
    }

    #[test]
    fn repair_is_deterministic() {
        let g = random_graph(4, 20, 3, 77);
        let script = |inc: &mut IncrementalMatcher| {
            inc.add_edge(0, 5, 64);
            inc.remove_edge(1, 2);
            inc.add_file(&[(2, 64), (3, 64)]);
            inc.remove_file(4);
        };
        let mut a = IncrementalMatcher::new(g.clone(), Objective::MatchCount);
        let mut b = IncrementalMatcher::new(g, Objective::MatchCount);
        script(&mut a);
        script(&mut b);
        assert_eq!(a, b, "same delta sequence must be bit-identical");
    }

    #[test]
    fn from_matching_adopts_flow_solve_verbatim_and_repairs() {
        for seed in [1u64, 9, 44] {
            let graph = random_graph(6, 40, 3, seed);
            let scratch = SingleDataMatcher {
                algo: FlowAlgo::Dinic,
                fill: FillPolicy::LeastLoaded,
                objective: Objective::MatchCount,
            };
            let (owners, matched) = scratch.flow_owners(&graph);
            let mut inc = IncrementalMatcher::from_matching(
                graph.clone(),
                Objective::MatchCount,
                owners.clone(),
            );
            assert_eq!(
                inc.owners(),
                &owners[..],
                "adopting a maximum matching must not change it"
            );
            assert_eq!(inc.matched_count(), matched);
            // The adopted state repairs like a freshly-solved one.
            inc.remove_file(seed as usize % 40);
            let (want, _) = flow_reference(inc.graph(), Objective::MatchCount);
            assert_eq!(inc.matched_count(), want, "seed {seed}");
        }
    }

    #[test]
    fn from_matching_tops_up_a_non_maximum_input() {
        let graph = random_graph(5, 30, 2, 7);
        // Empty matching in: the constructor must reach maximality.
        let inc =
            IncrementalMatcher::from_matching(graph.clone(), Objective::MatchCount, vec![None; 30]);
        let (want, _) = flow_reference(&graph, Objective::MatchCount);
        assert_eq!(inc.matched_count(), want);
    }

    #[test]
    fn from_matching_bytes_input_stays_byte_optimal() {
        let graph = random_graph(4, 24, 2, 123);
        let scratch = SingleDataMatcher {
            algo: FlowAlgo::Dinic,
            fill: FillPolicy::LeastLoaded,
            objective: Objective::MatchedBytes,
        };
        let (owners, _) = scratch.flow_owners(&graph);
        let inc = IncrementalMatcher::from_matching(
            graph.clone(),
            Objective::MatchedBytes,
            owners.clone(),
        );
        assert_eq!(
            inc.owners(),
            &owners[..],
            "a min-cost-flow matching is already byte-optimal"
        );
        let (_, want_bytes) = flow_reference(&graph, Objective::MatchedBytes);
        assert_eq!(inc.matched_bytes(), want_bytes);
    }
}
