//! Flat arena structures for the solver hot path.
//!
//! The matching core runs millions of tiny adjacency probes and
//! owner-set edits per repair at 10⁵+ chunks; pointer-heavy containers
//! (`Vec<Vec<(usize, u64)>>` adjacency, `Vec<BTreeSet<usize>>` inverse
//! indices) spend most of that time chasing allocations. This module
//! provides the two dense replacements:
//!
//! * [`AdjPool`] — struct-of-arrays CSR-style adjacency: every vertex's
//!   sorted neighbor span lives in two shared pools (`u32` keys, `u64`
//!   weights) with per-vertex `(start, len, cap)` descriptors, doubling
//!   relocation on overflow, and garbage compaction. Neighbor iteration
//!   is a dense `u32` slice scan — 4 bytes per probe instead of a
//!   16-byte AoS tuple.
//! * [`OwnedList`] — the `owned[p] = {files matched to p}` inverse index
//!   as an intrusive doubly-linked list over flat `next`/`prev` arenas,
//!   kept in ascending file order so enumeration is canonical (the same
//!   order the old `BTreeSet` gave, which the repair searches' path
//!   choices — and therefore bit-exact replay — depend on).
//!
//! Handles are dense `u32` indices; [`NONE`] is the sentinel. All
//! operations are pure functions of the call history, so two structures
//! driven by the same operation sequence are semantically identical
//! (pool layout may differ after different histories — comparisons must
//! go through span contents, not raw pools).

/// Sentinel for "no handle" in dense `u32` index arrays.
pub const NONE: u32 = u32::MAX;

/// Pooled struct-of-arrays adjacency. Vertex `v`'s neighbors are the
/// sorted key span `keys[start[v]..start[v]+len[v]]` with parallel
/// weights in `wts`; `cap[v]` slots are reserved. Spans that outgrow
/// their capacity relocate to the pool tail (doubling), abandoning the
/// old slots; abandoned slots are reclaimed by a full compaction once
/// they outnumber the live ones.
#[derive(Debug, Clone)]
pub struct AdjPool {
    start: Vec<u32>,
    len: Vec<u32>,
    cap: Vec<u32>,
    keys: Vec<u32>,
    wts: Vec<u64>,
    /// Abandoned pool slots (relocations + removed vertices).
    dead: usize,
}

impl AdjPool {
    /// An empty pool with `n` vertices and no neighbors.
    pub fn with_vertices(n: usize) -> Self {
        assert!(n < NONE as usize, "vertex count must fit u32 handles");
        AdjPool {
            start: vec![0; n],
            len: vec![0; n],
            cap: vec![0; n],
            keys: Vec::new(),
            wts: Vec::new(),
            dead: 0,
        }
    }

    /// Number of vertices.
    pub fn n_vertices(&self) -> usize {
        self.start.len()
    }

    /// Neighbor count of vertex `v`.
    pub fn len_of(&self, v: usize) -> usize {
        self.len[v] as usize
    }

    /// Sorted neighbor keys of `v` as a dense slice.
    pub fn keys_of(&self, v: usize) -> &[u32] {
        let s = self.start[v] as usize;
        &self.keys[s..s + self.len[v] as usize]
    }

    /// Neighbor weights of `v`, parallel to [`AdjPool::keys_of`].
    pub fn wts_of(&self, v: usize) -> &[u64] {
        let s = self.start[v] as usize;
        &self.wts[s..s + self.len[v] as usize]
    }

    /// Weight of the `(v, key)` entry, if present.
    pub fn get(&self, v: usize, key: u32) -> Option<u64> {
        self.keys_of(v)
            .binary_search(&key)
            .ok()
            .map(|i| self.wts[self.start[v] as usize + i])
    }

    /// Inserts or reweights `(v, key)`. Returns `true` when the key was
    /// newly inserted (span stays sorted either way).
    pub fn insert(&mut self, v: usize, key: u32, w: u64) -> bool {
        match self.keys_of(v).binary_search(&key) {
            Ok(i) => {
                self.wts[self.start[v] as usize + i] = w;
                false
            }
            Err(i) => {
                let (s, l, c) = (
                    self.start[v] as usize,
                    self.len[v] as usize,
                    self.cap[v] as usize,
                );
                if l < c {
                    self.keys.copy_within(s + i..s + l, s + i + 1);
                    self.wts.copy_within(s + i..s + l, s + i + 1);
                    self.keys[s + i] = key;
                    self.wts[s + i] = w;
                    self.len[v] += 1;
                } else {
                    self.relocate_insert(v, i, key, w);
                }
                true
            }
        }
    }

    /// Moves `v`'s span to the pool tail with doubled capacity, placing
    /// the new `(key, w)` entry at sorted position `i`.
    fn relocate_insert(&mut self, v: usize, i: usize, key: u32, w: u64) {
        let (s, l, c) = (
            self.start[v] as usize,
            self.len[v] as usize,
            self.cap[v] as usize,
        );
        let new_cap = (c * 2).max(4);
        let new_start = self.keys.len();
        assert!(new_start + new_cap < NONE as usize, "adjacency pool full");
        self.keys.reserve(new_cap);
        self.wts.reserve(new_cap);
        self.keys.extend_from_within(s..s + i);
        self.keys.push(key);
        self.keys.extend_from_within(s + i..s + l);
        self.wts.extend_from_within(s..s + i);
        self.wts.push(w);
        self.wts.extend_from_within(s + i..s + l);
        // Materialize the reserved capacity so later relocations of other
        // vertices cannot land inside this span's growth room.
        let pad = new_cap - (l + 1);
        self.keys.resize(self.keys.len() + pad, 0);
        self.wts.resize(self.wts.len() + pad, 0);
        self.dead += c;
        self.start[v] = new_start as u32;
        self.len[v] = (l + 1) as u32;
        self.cap[v] = new_cap as u32;
        self.maybe_compact();
    }

    /// Removes `(v, key)`; returns whether it existed.
    pub fn remove(&mut self, v: usize, key: u32) -> bool {
        match self.keys_of(v).binary_search(&key) {
            Ok(i) => {
                let (s, l) = (self.start[v] as usize, self.len[v] as usize);
                self.keys.copy_within(s + i + 1..s + l, s + i);
                self.wts.copy_within(s + i + 1..s + l, s + i);
                self.len[v] -= 1;
                true
            }
            Err(_) => false,
        }
    }

    /// Appends a new empty vertex; returns its index.
    pub fn push_vertex(&mut self) -> usize {
        assert!(self.start.len() + 1 < NONE as usize, "vertex space full");
        self.start.push(0);
        self.len.push(0);
        self.cap.push(0);
        self.start.len() - 1
    }

    /// Removes vertex `v`; vertices above shift down by one. The caller
    /// must have already dropped the mirrored entries on the other side.
    pub fn remove_vertex(&mut self, v: usize) {
        self.dead += self.cap[v] as usize;
        self.start.remove(v);
        self.len.remove(v);
        self.cap.remove(v);
        self.maybe_compact();
    }

    /// Decrements every key strictly above `threshold` in every span —
    /// the cross-side index compaction after [`AdjPool::remove_vertex`]
    /// on the mirrored pool.
    pub fn shift_keys_above(&mut self, threshold: u32) {
        for v in 0..self.start.len() {
            let s = self.start[v] as usize;
            for k in &mut self.keys[s..s + self.len[v] as usize] {
                if *k > threshold {
                    *k -= 1;
                }
            }
        }
    }

    fn maybe_compact(&mut self) {
        if self.keys.len() >= 4096 && self.dead * 2 > self.keys.len() {
            self.compact();
        }
    }

    /// Rewrites the pools in vertex order, dropping abandoned slots and
    /// leaving each span 50% growth headroom.
    fn compact(&mut self) {
        let live: usize = self.len.iter().map(|&l| l as usize).sum();
        let mut keys = Vec::with_capacity(live + live / 2 + 4 * self.start.len());
        let mut wts = Vec::with_capacity(keys.capacity());
        for v in 0..self.start.len() {
            let (s, l) = (self.start[v] as usize, self.len[v] as usize);
            let cap = (l + l / 2).max(4);
            self.start[v] = keys.len() as u32;
            self.cap[v] = cap as u32;
            keys.extend_from_slice(&self.keys[s..s + l]);
            wts.extend_from_slice(&self.wts[s..s + l]);
            keys.resize(keys.len() + (cap - l), 0);
            wts.resize(wts.len() + (cap - l), 0);
        }
        self.keys = keys;
        self.wts = wts;
        self.dead = 0;
    }

    /// Live entries across all spans.
    pub fn total_len(&self) -> usize {
        self.len.iter().map(|&l| l as usize).sum()
    }
}

/// The `owned` inverse index (`proc -> files matched to it`) as an
/// intrusive doubly-linked list over flat arenas: `head[p]` points at
/// the first owned file, `next[f]`/`prev[f]` link the per-proc chains.
/// Lists are kept in **ascending file order** (inserts walk to the
/// sorted position), so enumeration order is a pure function of the
/// owner relation — exactly the `BTreeSet` order the repair searches
/// were tuned against, at O(1) unlink and O(position) link cost with
/// zero allocation.
#[derive(Debug, Clone)]
pub struct OwnedList {
    head: Vec<u32>,
    next: Vec<u32>,
    prev: Vec<u32>,
}

impl OwnedList {
    /// Empty chains for `n_procs` procs over `n_files` file slots.
    pub fn new(n_procs: usize, n_files: usize) -> Self {
        OwnedList {
            head: vec![NONE; n_procs],
            next: vec![NONE; n_files],
            prev: vec![NONE; n_files],
        }
    }

    /// Rebuilds the whole index from a dense owner vector (`NONE` =
    /// unmatched) — the single shared construction path for adoption,
    /// post-compaction rebuilds, and parallel-repair write-back.
    pub fn rebuild_from(owner: &[u32], n_procs: usize) -> Self {
        let mut list = OwnedList::new(n_procs, owner.len());
        let mut tail = vec![NONE; n_procs];
        for (f, &p) in owner.iter().enumerate() {
            if p == NONE {
                continue;
            }
            let f = f as u32;
            let t = tail[p as usize];
            if t == NONE {
                list.head[p as usize] = f;
            } else {
                list.next[t as usize] = f;
            }
            list.prev[f as usize] = t;
            tail[p as usize] = f;
        }
        list
    }

    /// First file of `p`'s chain, or [`NONE`].
    pub fn head_of(&self, p: u32) -> u32 {
        self.head[p as usize]
    }

    /// Successor of `f` in its chain, or [`NONE`].
    pub fn next_of(&self, f: u32) -> u32 {
        self.next[f as usize]
    }

    /// Links `f` into `p`'s chain at its ascending-order position.
    pub fn insert(&mut self, p: u32, f: u32) {
        let mut prev = NONE;
        let mut cur = self.head[p as usize];
        while cur != NONE && cur < f {
            prev = cur;
            cur = self.next[cur as usize];
        }
        self.next[f as usize] = cur;
        self.prev[f as usize] = prev;
        if cur != NONE {
            self.prev[cur as usize] = f;
        }
        if prev == NONE {
            self.head[p as usize] = f;
        } else {
            self.next[prev as usize] = f;
        }
    }

    /// Unlinks `f` from `p`'s chain in O(1).
    pub fn remove(&mut self, p: u32, f: u32) {
        let (pr, nx) = (self.prev[f as usize], self.next[f as usize]);
        if pr == NONE {
            self.head[p as usize] = nx;
        } else {
            self.next[pr as usize] = nx;
        }
        if nx != NONE {
            self.prev[nx as usize] = pr;
        }
    }

    /// Ascending iteration over `p`'s owned files.
    pub fn iter(&self, p: u32) -> OwnedIter<'_> {
        OwnedIter {
            next: &self.next,
            cur: self.head[p as usize],
        }
    }

    /// Grows the file arenas by one slot (new trailing file vertex).
    pub fn push_file(&mut self) {
        self.next.push(NONE);
        self.prev.push(NONE);
    }
}

/// Iterator over one proc's owned chain.
pub struct OwnedIter<'a> {
    next: &'a [u32],
    cur: u32,
}

impl Iterator for OwnedIter<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        if self.cur == NONE {
            return None;
        }
        let f = self.cur;
        self.cur = self.next[f as usize];
        Some(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adj_pool_sorted_upsert_and_remove() {
        let mut pool = AdjPool::with_vertices(3);
        assert!(pool.insert(0, 7, 70));
        assert!(pool.insert(0, 2, 20));
        assert!(pool.insert(0, 9, 90));
        assert!(!pool.insert(0, 7, 71), "upsert replaces");
        assert_eq!(pool.keys_of(0), &[2, 7, 9]);
        assert_eq!(pool.wts_of(0), &[20, 71, 90]);
        assert_eq!(pool.get(0, 7), Some(71));
        assert_eq!(pool.get(0, 3), None);
        assert!(pool.remove(0, 7));
        assert!(!pool.remove(0, 7));
        assert_eq!(pool.keys_of(0), &[2, 9]);
        assert_eq!(pool.len_of(1), 0);
        assert_eq!(pool.total_len(), 2);
    }

    #[test]
    fn adj_pool_relocation_preserves_other_spans() {
        let mut pool = AdjPool::with_vertices(2);
        for k in 0..20u32 {
            pool.insert(0, k * 2, u64::from(k));
            pool.insert(1, k * 2 + 1, u64::from(k) + 100);
        }
        let want0: Vec<u32> = (0..20).map(|k| k * 2).collect();
        let want1: Vec<u32> = (0..20).map(|k| k * 2 + 1).collect();
        assert_eq!(pool.keys_of(0), &want0[..]);
        assert_eq!(pool.keys_of(1), &want1[..]);
    }

    #[test]
    fn adj_pool_vertex_removal_shifts_cross_keys() {
        let mut pool = AdjPool::with_vertices(4);
        for v in 0..4 {
            for k in [1u32, 3, 5] {
                pool.insert(v, k, 9);
            }
        }
        // Pretend key 3 was a vertex on the mirrored side that got
        // removed: keys above 3 shift down.
        for v in 0..4 {
            pool.remove(v, 3);
        }
        pool.shift_keys_above(3);
        for v in 0..4 {
            assert_eq!(pool.keys_of(v), &[1, 4]);
        }
    }

    #[test]
    fn adj_pool_compaction_keeps_contents() {
        let mut pool = AdjPool::with_vertices(64);
        // Grow every span through several relocations so dead slots pile
        // up past the compaction threshold, then verify contents.
        for round in 0..6 {
            for v in 0..64 {
                for j in 0..16u32 {
                    pool.insert(v, round * 16 + j, u64::from(round * 16 + j));
                }
            }
        }
        for v in 0..64 {
            let want: Vec<u32> = (0..96).collect();
            assert_eq!(pool.keys_of(v), &want[..]);
            assert_eq!(pool.get(v, 95), Some(95));
        }
    }

    #[test]
    fn owned_list_keeps_ascending_order() {
        let mut list = OwnedList::new(2, 10);
        for f in [7u32, 2, 9, 4] {
            list.insert(0, f);
        }
        list.insert(1, 5);
        assert_eq!(list.iter(0).collect::<Vec<_>>(), vec![2, 4, 7, 9]);
        assert_eq!(list.iter(1).collect::<Vec<_>>(), vec![5]);
        list.remove(0, 2); // head removal
        list.remove(0, 7); // middle removal
        assert_eq!(list.iter(0).collect::<Vec<_>>(), vec![4, 9]);
        list.insert(0, 7);
        assert_eq!(list.iter(0).collect::<Vec<_>>(), vec![4, 7, 9]);
    }

    #[test]
    fn owned_list_rebuild_matches_incremental_inserts() {
        let owner: Vec<u32> = vec![1, NONE, 0, 1, 0, NONE, 1];
        let rebuilt = OwnedList::rebuild_from(&owner, 2);
        let mut incremental = OwnedList::new(2, owner.len());
        for (f, &p) in owner.iter().enumerate() {
            if p != NONE {
                incremental.insert(p, f as u32);
            }
        }
        for p in 0..2 {
            assert_eq!(
                rebuilt.iter(p).collect::<Vec<_>>(),
                incremental.iter(p).collect::<Vec<_>>()
            );
        }
    }
}
