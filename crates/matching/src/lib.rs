//! # opass-matching — matching-based parallel data-access optimizers
//!
//! The algorithmic heart of the Opass reproduction (paper Section IV):
//!
//! * [`arena`] — the flat solver arenas: pooled struct-of-arrays
//!   adjacency spans and the intrusive owned-file lists the hot paths
//!   run on (`u32` handles, zero per-visit allocation);
//! * [`graph`] — the process↔chunk bipartite locality graph built from the
//!   file-system layout (Figure 4), stored on the arena pools;
//! * [`maxflow`] — Edmonds–Karp (as in the paper) and Dinic implementations
//!   over one residual network representation;
//! * [`single_data`] — the flow-network matcher for equal-quota tasks with
//!   one input each (Section IV-B, Figure 5), with the paper's random fill
//!   for unmatched files plus a least-loaded ablation variant;
//! * [`incremental`] — the delta-repair matcher: keeps the residual state
//!   of the last solve and repairs it after layout churn with searches
//!   seeded only from the touched vertices, instead of re-solving;
//! * [`multi_data`] — Algorithm 1 for tasks with several inputs
//!   (Section IV-C, Figure 6): quota-constrained deferred acceptance with
//!   strict trade-up;
//! * [`placement`] — the inverse problem: bounded replica-move proposals
//!   that migrate data toward demand, scored by exact marginal
//!   matched-byte gain on the incremental matcher's residual state;
//! * [`dynamic`] — the guided master/worker scheduler (Section IV-D):
//!   per-worker lists from a matching, locality-aware stealing from the
//!   longest list, plus the FIFO baseline;
//! * [`stable_marriage`] — reference Gale–Shapley, the one-to-one ancestor
//!   the paper cites;
//! * [`assignment`] — the shared assignment type and locality/balance
//!   metrics.
//!
//! ```
//! use opass_matching::{BipartiteGraph, SingleDataMatcher};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! // Two processes, four chunks; each process co-located with two chunks.
//! let mut graph = BipartiteGraph::new(2, 4);
//! graph.add_edge(0, 0, 64); graph.add_edge(0, 1, 64);
//! graph.add_edge(1, 2, 64); graph.add_edge(1, 3, 64);
//!
//! let out = SingleDataMatcher::default().assign(&graph, &mut StdRng::seed_from_u64(1));
//! assert_eq!(out.matched_files, 4);       // full matching: all reads local
//! assert!(out.assignment.is_balanced());  // two tasks each
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod arena;
pub mod assignment;
pub mod dynamic;
pub mod graph;
pub mod incremental;
pub mod maxflow;
pub mod multi_data;
mod parallel;
pub mod placement;
pub mod single_data;
pub mod stable_marriage;

pub use arena::{AdjPool, OwnedList, NONE};
pub use assignment::{locality_report, Assignment, LocalityReport};
pub use dynamic::{
    DelayScheduler, DynamicScheduler, FifoScheduler, GuidedScheduler, StealPolicy, StealRecord,
};
pub use graph::BipartiteGraph;
pub use incremental::IncrementalMatcher;
pub use maxflow::{FlowAlgo, FlowNetwork};
pub use multi_data::{assign_multi_data, repair_multi_data, MatchingValues, MultiDataOutcome};
pub use placement::{propose_moves, PlacementPolicy, ReplicaMove};
pub use single_data::{
    quotas, weighted_quotas, FillPolicy, Objective, SingleDataMatcher, SingleDataOutcome,
    TwoTierOutcome,
};
