//! Opass for Dynamic Parallel Data Access (paper Section IV-D).
//!
//! Irregular workloads (gene comparison, mpiBLAST) use a master process that
//! hands tasks to whichever worker is idle. Opass keeps the dynamic load
//! balancing but *guides* it: a matching computed up front yields one task
//! list `L_i` per worker; an idle worker drains its own list first, and when
//! it runs dry it steals — from the **longest** remaining list — the task
//! with the largest co-located data on the idle worker's node. The paper's
//! baseline (and our [`FifoScheduler`]) ignores locality entirely.

use crate::assignment::Assignment;
use crate::multi_data::MatchingValues;
use std::collections::VecDeque;

/// One steal decision made by a work-stealing scheduler: `thief` went idle
/// and took `task` from `victim`'s list. Plain data so observability layers
/// can consume it without knowing the scheduler type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StealRecord {
    /// Worker that went idle and stole.
    pub thief: usize,
    /// Worker whose list the task came from.
    pub victim: usize,
    /// The stolen task.
    pub task: usize,
}

/// A task dispenser driven by the master loop: `next_task(worker)` is called
/// whenever `worker` goes idle; `None` means no work remains anywhere.
pub trait DynamicScheduler {
    /// Picks the next task for an idle worker, or `None` when exhausted.
    fn next_task(&mut self, worker: usize) -> Option<usize>;

    /// Tasks not yet dispensed.
    fn remaining(&self) -> usize;

    /// Drains steal decisions made since the last call. Schedulers without
    /// a stealing phase keep the default (always empty); consumers poll
    /// this after `next_task` to attribute steals to a point in time.
    fn drain_steals(&mut self) -> Vec<StealRecord> {
        Vec::new()
    }
}

/// Baseline: a single FIFO queue, no locality awareness — the "default
/// dynamic data assignment" of Section V-A3.
#[derive(Debug, Clone)]
pub struct FifoScheduler {
    queue: VecDeque<usize>,
}

impl FifoScheduler {
    /// Builds a queue over tasks `0..n_tasks` in index order.
    pub fn new(n_tasks: usize) -> Self {
        FifoScheduler {
            queue: (0..n_tasks).collect(),
        }
    }

    /// Builds a queue over an explicit task order.
    pub fn from_order(order: Vec<usize>) -> Self {
        FifoScheduler {
            queue: order.into(),
        }
    }
}

impl DynamicScheduler for FifoScheduler {
    fn next_task(&mut self, _worker: usize) -> Option<usize> {
        self.queue.pop_front()
    }

    fn remaining(&self) -> usize {
        self.queue.len()
    }
}

/// Delay scheduling (Zaharia et al., EuroSys'10) adapted to the
/// opportunity-count formulation: when a worker asks for work, scan up to
/// `max_skips` tasks from the head of the shared queue for one with
/// co-located data; if none of them is local, concede and hand out the
/// head task. The paper cites this as the closest scheduler-side
/// alternative to Opass — it discovers locality greedily at dispatch time
/// instead of planning it with a matching.
#[derive(Debug, Clone)]
pub struct DelayScheduler {
    queue: VecDeque<usize>,
    values: MatchingValues,
    max_skips: usize,
}

impl DelayScheduler {
    /// Builds the scheduler over tasks `0..n_tasks` in index order.
    ///
    /// `values` provides the locality signal; `max_skips` is the number of
    /// queue positions an idle worker may look ahead for a local task
    /// (0 degrades to FIFO).
    pub fn new(n_tasks: usize, values: MatchingValues, max_skips: usize) -> Self {
        assert_eq!(values.n_tasks(), n_tasks, "value table size mismatch");
        DelayScheduler {
            queue: (0..n_tasks).collect(),
            values,
            max_skips,
        }
    }
}

impl DynamicScheduler for DelayScheduler {
    fn next_task(&mut self, worker: usize) -> Option<usize> {
        if self.queue.is_empty() {
            return None;
        }
        let horizon = self.queue.len().min(self.max_skips + 1);
        let local_pos = (0..horizon).find(|&i| self.values.value(worker, self.queue[i]) > 0);
        let pos = local_pos.unwrap_or(0);
        self.queue.remove(pos)
    }

    fn remaining(&self) -> usize {
        self.queue.len()
    }
}

/// How an idle worker picks a task from another worker's list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StealPolicy {
    /// The paper's rule: from the longest list, the task with the largest
    /// co-located data on the stealing worker's node.
    #[default]
    MostColocated,
    /// Ablation variant: from the longest list, simply the head task
    /// (locality-oblivious stealing).
    Head,
}

/// # Example
///
/// ```
/// use opass_matching::{Assignment, DynamicScheduler, GuidedScheduler, MatchingValues};
///
/// // Worker 0 owns tasks {0,1}; worker 1 owns nothing and is strongly
/// // co-located with task 1 — when idle it steals that one.
/// let assignment = Assignment::from_owners(vec![0, 0], 2);
/// let mut values = MatchingValues::new(2, 2);
/// values.add(1, 1, 64);
/// let mut sched = GuidedScheduler::new(&assignment, values);
/// assert_eq!(sched.next_task(1), Some(1)); // stolen by co-location
/// assert_eq!(sched.next_task(0), Some(0));
/// assert_eq!(sched.next_task(0), None);
/// ```
///
/// The Opass guided scheduler: per-worker lists with locality-aware
/// stealing (paper Section IV-D steps 1–3).
#[derive(Debug, Clone)]
pub struct GuidedScheduler {
    /// `lists[w]` = remaining tasks of worker `w` (front = next).
    lists: Vec<VecDeque<usize>>,
    /// Matching values used to rank steal candidates.
    values: MatchingValues,
    steal_policy: StealPolicy,
    remaining: usize,
    /// Steal decisions not yet drained (see [`DynamicScheduler::drain_steals`]).
    steal_log: Vec<StealRecord>,
}

impl GuidedScheduler {
    /// Builds the per-worker lists from a matching-based [`Assignment`]
    /// (step 1 of the paper's protocol).
    ///
    /// # Panics
    ///
    /// Panics if the assignment and value table disagree on dimensions.
    pub fn new(assignment: &Assignment, values: MatchingValues) -> Self {
        Self::with_steal_policy(assignment, values, StealPolicy::MostColocated)
    }

    /// Like [`Self::new`] but with an explicit steal policy (for the
    /// ablation study).
    pub fn with_steal_policy(
        assignment: &Assignment,
        values: MatchingValues,
        steal_policy: StealPolicy,
    ) -> Self {
        assert_eq!(
            assignment.n_procs(),
            values.n_procs(),
            "proc count mismatch"
        );
        assert_eq!(
            assignment.n_tasks(),
            values.n_tasks(),
            "task count mismatch"
        );
        let lists: Vec<VecDeque<usize>> = (0..assignment.n_procs())
            .map(|p| assignment.tasks_of(p).iter().copied().collect())
            .collect();
        let remaining = lists.iter().map(VecDeque::len).sum();
        GuidedScheduler {
            lists,
            values,
            steal_policy,
            remaining,
            steal_log: Vec::new(),
        }
    }

    /// Length of worker `w`'s remaining list.
    pub fn list_len(&self, w: usize) -> usize {
        self.lists[w].len()
    }

    fn steal(&mut self, worker: usize) -> Option<usize> {
        // Step 3: pick from the longest remaining list. Ties between lists:
        // lowest index (deterministic).
        let longest = (0..self.lists.len())
            .filter(|&w| !self.lists[w].is_empty())
            .max_by_key(|&w| (self.lists[w].len(), usize::MAX - w))?;
        let best_pos = match self.steal_policy {
            StealPolicy::MostColocated => {
                // The task with the largest co-located size for `worker`;
                // ties go to the earliest position in the list.
                self.lists[longest]
                    .iter()
                    .enumerate()
                    .max_by_key(|&(pos, &t)| (self.values.value(worker, t), usize::MAX - pos))
                    .map(|(pos, _)| pos)
                    .expect("longest list is non-empty")
            }
            StealPolicy::Head => 0,
        };
        let stolen = self.lists[longest].remove(best_pos);
        if let Some(task) = stolen {
            self.steal_log.push(StealRecord {
                thief: worker,
                victim: longest,
                task,
            });
        }
        stolen
    }
}

impl DynamicScheduler for GuidedScheduler {
    fn next_task(&mut self, worker: usize) -> Option<usize> {
        assert!(worker < self.lists.len(), "worker {worker} out of range");
        let task = match self.lists[worker].pop_front() {
            Some(t) => Some(t),
            None => self.steal(worker),
        };
        if task.is_some() {
            self.remaining -= 1;
        }
        task
    }

    fn remaining(&self) -> usize {
        self.remaining
    }

    fn drain_steals(&mut self) -> Vec<StealRecord> {
        std::mem::take(&mut self.steal_log)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn values_with(
        n_procs: usize,
        n_tasks: usize,
        entries: &[(usize, usize, u64)],
    ) -> MatchingValues {
        let mut v = MatchingValues::new(n_procs, n_tasks);
        for &(p, t, b) in entries {
            v.add(p, t, b);
        }
        v
    }

    #[test]
    fn fifo_dispenses_in_order_and_counts() {
        let mut s = FifoScheduler::new(3);
        assert_eq!(s.remaining(), 3);
        assert_eq!(s.next_task(1), Some(0));
        assert_eq!(s.next_task(0), Some(1));
        assert_eq!(s.next_task(2), Some(2));
        assert_eq!(s.next_task(0), None);
        assert_eq!(s.remaining(), 0);
    }

    #[test]
    fn guided_drains_own_list_first() {
        let assignment = Assignment::from_owners(vec![0, 0, 1, 1], 2);
        let values = MatchingValues::new(2, 4);
        let mut s = GuidedScheduler::new(&assignment, values);
        assert_eq!(s.next_task(0), Some(0));
        assert_eq!(s.next_task(0), Some(1));
        assert_eq!(s.next_task(1), Some(2));
        assert_eq!(s.remaining(), 1);
    }

    #[test]
    fn guided_steals_from_longest_list() {
        // Worker 0 has nothing; workers 1 (3 tasks) and 2 (1 task).
        let assignment = Assignment::from_owners(vec![1, 1, 1, 2], 3);
        let values = MatchingValues::new(3, 4);
        let mut s = GuidedScheduler::new(&assignment, values);
        let stolen = s.next_task(0).unwrap();
        assert!(
            [0, 1, 2].contains(&stolen),
            "must steal from worker 1's list, got {stolen}"
        );
        assert_eq!(s.list_len(1), 2);
        assert_eq!(s.list_len(2), 1);
    }

    #[test]
    fn guided_steals_best_colocated_task() {
        // Worker 0 idle; worker 1 holds tasks 0..3. Worker 0 is strongly
        // co-located with task 2.
        let assignment = Assignment::from_owners(vec![1, 1, 1], 2);
        let values = values_with(2, 3, &[(0, 2, 100), (0, 0, 10)]);
        let mut s = GuidedScheduler::new(&assignment, values);
        assert_eq!(s.next_task(0), Some(2));
    }

    #[test]
    fn guided_exhausts_completely() {
        let assignment = Assignment::from_owners(vec![0, 1, 0, 1, 0], 2);
        let values = MatchingValues::new(2, 5);
        let mut s = GuidedScheduler::new(&assignment, values);
        let mut seen = [false; 5];
        // Worker 1 consumes aggressively, worker 0 slowly.
        for turn in 0..5 {
            let w = if turn % 3 == 0 { 0 } else { 1 };
            let t = s.next_task(w).unwrap();
            assert!(!seen[t], "task {t} dispensed twice");
            seen[t] = true;
        }
        assert_eq!(s.next_task(0), None);
        assert_eq!(s.next_task(1), None);
        assert!(seen.iter().all(|&x| x));
        assert_eq!(s.remaining(), 0);
    }

    #[test]
    fn delay_scheduler_skips_to_local_task() {
        // Worker 0 is local to task 2 only; with 3 skips it gets task 2
        // first, then falls back to FIFO order.
        let values = values_with(1, 4, &[(0, 2, 64)]);
        let mut s = DelayScheduler::new(4, values, 3);
        assert_eq!(s.next_task(0), Some(2));
        assert_eq!(s.next_task(0), Some(0));
        assert_eq!(s.next_task(0), Some(1));
        assert_eq!(s.next_task(0), Some(3));
        assert_eq!(s.next_task(0), None);
    }

    #[test]
    fn delay_scheduler_with_zero_skips_is_fifo() {
        let values = values_with(1, 3, &[(0, 2, 64)]);
        let mut s = DelayScheduler::new(3, values, 0);
        assert_eq!(s.next_task(0), Some(0));
        assert_eq!(s.next_task(0), Some(1));
        assert_eq!(s.next_task(0), Some(2));
    }

    #[test]
    fn delay_scheduler_bounded_lookahead_concedes() {
        // Local task sits beyond the skip horizon: worker takes the head.
        let values = values_with(1, 5, &[(0, 4, 64)]);
        let mut s = DelayScheduler::new(5, values, 2);
        assert_eq!(s.next_task(0), Some(0), "task 4 is out of the horizon");
    }

    #[test]
    fn delay_scheduler_counts_remaining() {
        let values = MatchingValues::new(2, 4);
        let mut s = DelayScheduler::new(4, values, 1);
        assert_eq!(s.remaining(), 4);
        s.next_task(0);
        assert_eq!(s.remaining(), 3);
    }

    #[test]
    fn head_steal_policy_ignores_locality() {
        let assignment = Assignment::from_owners(vec![1, 1, 1], 2);
        let values = values_with(2, 3, &[(0, 2, 100)]);
        let mut s = GuidedScheduler::with_steal_policy(&assignment, values, StealPolicy::Head);
        // Head policy takes the front of worker 1's list even though task 2
        // is the better-colocated choice.
        assert_eq!(s.next_task(0), Some(0));
    }

    #[test]
    fn steals_are_logged_and_drained() {
        let assignment = Assignment::from_owners(vec![1, 1, 1], 2);
        let values = values_with(2, 3, &[(0, 2, 100)]);
        let mut s = GuidedScheduler::new(&assignment, values);
        // Worker 1 draining its own list is not a steal.
        assert_eq!(s.next_task(1), Some(0));
        assert!(s.drain_steals().is_empty());
        // Worker 0 has no list: its task comes from worker 1's.
        assert_eq!(s.next_task(0), Some(2));
        let steals = s.drain_steals();
        assert_eq!(
            steals,
            vec![StealRecord {
                thief: 0,
                victim: 1,
                task: 2
            }]
        );
        // Draining is destructive.
        assert!(s.drain_steals().is_empty());
        // FIFO never steals.
        let mut fifo = FifoScheduler::new(2);
        fifo.next_task(0);
        assert!(fifo.drain_steals().is_empty());
    }

    #[test]
    #[should_panic(expected = "proc count mismatch")]
    fn rejects_dimension_mismatch() {
        let assignment = Assignment::from_owners(vec![0], 1);
        let values = MatchingValues::new(2, 1);
        let _ = GuidedScheduler::new(&assignment, values);
    }
}
