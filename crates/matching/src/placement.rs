//! Replica-placement proposals: invert the matcher to move data toward
//! demand.
//!
//! The single-data matcher maximizes matched-local bytes against a
//! *fixed* replica layout; whatever stays unmatched is the layout's
//! fault, not the matching's — every process co-located with an
//! unmatched file is provably already at quota (otherwise the matching
//! would not be maximum). The only way to recover those bytes is to
//! *change the layout*: give an unmatched file a replica on a node whose
//! processes still have spare quota.
//!
//! [`propose_moves`] computes such a proposal from the residual state of
//! an [`IncrementalMatcher`]: it walks unmatched files in descending
//! size order and, for each, picks the least-loaded process with spare
//! quota as the migration target, simulating the move on a scratch clone
//! of the matcher to account for how earlier moves consume quota. The
//! marginal gain of each move is exact — with spare quota at the target
//! the repaired matching must absorb the file, so every accepted move is
//! worth its full size in newly-local bytes.
//!
//! Determinism: proposals are a pure function of the matcher state and
//! the policy. Candidate files are ordered by `(size desc, file index)`,
//! targets by `(load, proc index)`; no RNG, no map iteration order.

use crate::incremental::IncrementalMatcher;

/// Bounds on one round of placement proposals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlacementPolicy {
    /// Maximum total bytes the round may migrate (a migrated replica
    /// costs its chunk size in transfer bytes).
    pub round_byte_budget: u64,
    /// Maximum number of replica moves per round.
    pub max_moves_per_round: usize,
    /// Moves gaining fewer newly-local bytes than this are not proposed.
    pub min_gain_bytes: u64,
}

impl Default for PlacementPolicy {
    fn default() -> Self {
        PlacementPolicy {
            round_byte_budget: u64::MAX,
            max_moves_per_round: 64,
            min_gain_bytes: 1,
        }
    }
}

/// One proposed replica move: give `file` a replica co-located with
/// process `to_proc`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicaMove {
    /// File index in the matcher's graph (= snapshot entry index).
    pub file: usize,
    /// Process that will own the file once the replica lands.
    pub to_proc: usize,
    /// The file's size — the migration's transfer cost in bytes.
    pub size: u64,
    /// Newly matched-local bytes realized by this move (simulated on the
    /// repaired matching, so it accounts for all earlier moves).
    pub gain_bytes: u64,
}

/// Proposes a bounded set of replica moves maximizing newly-local bytes.
///
/// Greedy by descending file size (ties broken by file index): each
/// unmatched file is offered to the least-loaded process with spare
/// quota (ties broken by process index) that is not already co-located
/// with it, and the move is accepted if its simulated marginal gain
/// clears `policy.min_gain_bytes` and fits the remaining byte budget.
/// `sizes[f]` must give the byte size of file `f` — unmatched files can
/// be edge-less, so the graph alone cannot supply sizes.
///
/// Returns moves in acceptance order. An empty result means the layout
/// is converged under the policy: nothing movable gains anything.
///
/// # Panics
///
/// Panics unless `sizes` has one entry per graph file.
pub fn propose_moves(
    matcher: &IncrementalMatcher,
    sizes: &[u64],
    policy: &PlacementPolicy,
) -> Vec<ReplicaMove> {
    assert_eq!(
        sizes.len(),
        matcher.graph().n_files(),
        "one size per graph file"
    );
    let mut sim = matcher.clone();
    let n_procs = sim.graph().n_procs();
    // Unmatched files, biggest first; index breaks ties so the proposal
    // order never depends on container order.
    let mut candidates: Vec<(u64, usize)> = (0..sim.graph().n_files())
        .filter(|&f| sim.owner_of(f).is_none())
        .map(|f| (sizes[f], f))
        .collect();
    candidates.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));

    let mut moves = Vec::new();
    let mut spent = 0u64;
    for (size, file) in candidates {
        if moves.len() >= policy.max_moves_per_round {
            break;
        }
        // A smaller file later in the order may still fit the budget, so
        // skip rather than break on a budget miss.
        if size > policy.round_byte_budget.saturating_sub(spent) {
            continue;
        }
        let target = (0..n_procs)
            .filter(|&p| sim.load()[p] < sim.quota()[p] && sim.graph().weight(p, file).is_none())
            .min_by_key(|&p| (sim.load()[p], p));
        let Some(to_proc) = target else {
            continue;
        };
        let before = sim.matched_bytes();
        sim.stage_add_edge(to_proc, file, size);
        sim.repair_batch();
        let gain_bytes = sim.matched_bytes().saturating_sub(before);
        if gain_bytes < policy.min_gain_bytes {
            // Undo the speculative edge so later simulations stay honest.
            sim.stage_remove_edge(to_proc, file);
            sim.repair_batch();
            continue;
        }
        spent += size;
        moves.push(ReplicaMove {
            file,
            to_proc,
            size,
            gain_bytes,
        });
    }
    moves
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::BipartiteGraph;
    use crate::single_data::Objective;

    /// 4 procs (quota 2 each), 8 files, all co-located with procs 0 and
    /// 1 only — the classic hot spot.
    fn hot_spot() -> IncrementalMatcher {
        let mut g = BipartiteGraph::new(4, 8);
        for f in 0..8 {
            g.add_edge(f % 2, f, 64);
        }
        IncrementalMatcher::new(g, Objective::MatchedBytes)
    }

    #[test]
    fn proposes_moves_for_unmatched_files_toward_spare_procs() {
        let m = hot_spot();
        assert_eq!(m.matched_count(), 4, "procs 0/1 absorb 2 files each");
        let sizes = vec![64u64; 8];
        let moves = propose_moves(&m, &sizes, &PlacementPolicy::default());
        assert_eq!(moves.len(), 4, "four files need re-homing");
        for mv in &moves {
            assert!(mv.to_proc >= 2, "targets must have spare quota");
            assert_eq!(mv.gain_bytes, 64, "spare quota makes gains exact");
        }
        // Deterministic: identical inputs, identical proposal.
        assert_eq!(
            moves,
            propose_moves(&m, &sizes, &PlacementPolicy::default())
        );
    }

    #[test]
    fn respects_byte_budget_and_move_cap() {
        let m = hot_spot();
        let sizes = vec![64u64; 8];
        let budget = PlacementPolicy {
            round_byte_budget: 130,
            ..Default::default()
        };
        let moves = propose_moves(&m, &sizes, &budget);
        assert_eq!(moves.len(), 2, "only two 64-byte moves fit 130 bytes");
        let cap = PlacementPolicy {
            max_moves_per_round: 1,
            ..Default::default()
        };
        assert_eq!(propose_moves(&m, &sizes, &cap).len(), 1);
    }

    #[test]
    fn bigger_files_move_first() {
        let sizes = vec![5u64, 10, 40, 100];
        let mut g = BipartiteGraph::new(2, 4);
        // All files on proc 0's node; quota 2 and the bytes objective
        // keep the 100- and 40-byte files local, so the 10- and 5-byte
        // files stay unmatched.
        for (f, &size) in sizes.iter().enumerate() {
            g.add_edge(0, f, size);
        }
        let m = IncrementalMatcher::new(g, Objective::MatchedBytes);
        let policy = PlacementPolicy {
            max_moves_per_round: 1,
            ..Default::default()
        };
        let moves = propose_moves(&m, &sizes, &policy);
        assert_eq!(moves.len(), 1);
        assert_eq!(moves[0].size, 10, "largest unmatched file goes first");
    }

    #[test]
    fn converged_layout_proposes_nothing() {
        let mut g = BipartiteGraph::new(4, 4);
        for f in 0..4 {
            g.add_edge(f, f, 64);
        }
        let m = IncrementalMatcher::new(g, Objective::MatchedBytes);
        let moves = propose_moves(&m, &[64u64; 4], &PlacementPolicy::default());
        assert!(moves.is_empty(), "everything already local");
    }
}
