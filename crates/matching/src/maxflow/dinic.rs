//! Dinic's max-flow algorithm: BFS level graphs + DFS blocking flows.
//!
//! `O(V²·E)` in general and `O(E·√V)` on the unit-capacity bipartite
//! networks the single-data matcher builds — the production choice for
//! large clusters. Results are cross-checked against Edmonds–Karp by
//! property tests in the crate root.

use super::network::FlowNetwork;
use std::collections::VecDeque;

/// Computes the maximum flow from `s` to `t`, mutating `net` so per-edge
/// flows can be read back with [`FlowNetwork::flow_on`].
pub fn max_flow(net: &mut FlowNetwork, s: usize, t: usize) -> u64 {
    assert!(
        s < net.vertex_count() && t < net.vertex_count(),
        "s/t out of range"
    );
    assert_ne!(s, t, "source and sink must differ");
    let n = net.vertex_count();
    let mut total = 0u64;
    let mut level = vec![u32::MAX; n];
    let mut iter = vec![0usize; n];

    loop {
        // Build the level graph with BFS over residual edges.
        level.iter_mut().for_each(|l| *l = u32::MAX);
        level[s] = 0;
        let mut queue = VecDeque::new();
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            for &eid in &net.adj[u] {
                let edge = &net.edges[eid];
                if edge.cap > 0 && level[edge.to] == u32::MAX {
                    level[edge.to] = level[u] + 1;
                    queue.push_back(edge.to);
                }
            }
        }
        if level[t] == u32::MAX {
            break;
        }
        // Find a blocking flow with iterative DFS.
        iter.iter_mut().for_each(|i| *i = 0);
        loop {
            let pushed = dfs_push(net, s, t, u64::MAX, &level, &mut iter);
            if pushed == 0 {
                break;
            }
            total += pushed;
        }
    }
    debug_assert!(net.conserves_flow(s, t));
    total
}

/// Pushes up to `limit` units from `u` toward `t` along level-increasing
/// residual edges. Recursive with depth bounded by the level count.
fn dfs_push(
    net: &mut FlowNetwork,
    u: usize,
    t: usize,
    limit: u64,
    level: &[u32],
    iter: &mut [usize],
) -> u64 {
    if u == t {
        return limit;
    }
    while iter[u] < net.adj[u].len() {
        let eid = net.adj[u][iter[u]];
        let (to, cap) = {
            let e = &net.edges[eid];
            (e.to, e.cap)
        };
        if cap > 0 && level[to] == level[u].wrapping_add(1) {
            let pushed = dfs_push(net, to, t, limit.min(cap), level, iter);
            if pushed > 0 {
                net.edges[eid].cap -= pushed;
                net.edges[eid ^ 1].cap += pushed;
                return pushed;
            }
        }
        iter[u] += 1;
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_edge() {
        let mut net = FlowNetwork::new(2);
        net.add_edge(0, 1, 9);
        assert_eq!(max_flow(&mut net, 0, 1), 9);
    }

    #[test]
    fn clrs_textbook_network() {
        let mut net = FlowNetwork::new(6);
        net.add_edge(0, 1, 16);
        net.add_edge(0, 2, 13);
        net.add_edge(1, 2, 10);
        net.add_edge(2, 1, 4);
        net.add_edge(1, 3, 12);
        net.add_edge(3, 2, 9);
        net.add_edge(2, 4, 14);
        net.add_edge(4, 3, 7);
        net.add_edge(3, 5, 20);
        net.add_edge(4, 5, 4);
        assert_eq!(max_flow(&mut net, 0, 5), 23);
    }

    #[test]
    fn unit_capacity_bipartite() {
        // 3 procs x 3 files, perfect matching exists.
        // s=0, procs 1-3, files 4-6, t=7.
        let mut net = FlowNetwork::new(8);
        for p in 1..=3 {
            net.add_edge(0, p, 1);
        }
        for f in 4..=6 {
            net.add_edge(f, 7, 1);
        }
        net.add_edge(1, 4, 1);
        net.add_edge(1, 5, 1);
        net.add_edge(2, 5, 1);
        net.add_edge(3, 6, 1);
        assert_eq!(max_flow(&mut net, 0, 7), 3);
    }

    #[test]
    fn agrees_with_edmonds_karp_on_dense_network() {
        // Deterministic pseudo-random dense network; both algorithms must
        // find the same flow value.
        let n = 12;
        let mut edges = Vec::new();
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for u in 0..n {
            for v in 0..n {
                if u != v && next() % 3 == 0 {
                    edges.push((u, v, next() % 50 + 1));
                }
            }
        }
        let build = |edges: &[(usize, usize, u64)]| {
            let mut net = FlowNetwork::new(n);
            for &(u, v, c) in edges {
                net.add_edge(u, v, c);
            }
            net
        };
        let mut a = build(&edges);
        let mut b = build(&edges);
        let fa = max_flow(&mut a, 0, n - 1);
        let fb = super::super::edmonds_karp::max_flow(&mut b, 0, n - 1);
        assert_eq!(fa, fb);
    }

    #[test]
    fn zero_when_no_path() {
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 5);
        net.add_edge(2, 3, 5);
        assert_eq!(max_flow(&mut net, 0, 3), 0);
    }
}
