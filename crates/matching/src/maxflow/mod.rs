//! Max-flow machinery for the single-data matcher.
//!
//! Two interchangeable implementations over one [`FlowNetwork`]
//! representation:
//!
//! * [`edmonds_karp`] — the Ford–Fulkerson variant the paper describes;
//! * [`dinic`] — asymptotically faster on the unit-capacity bipartite
//!   networks Opass builds, used by default.
//!
//! The `assignment` benches compare the two; property tests assert they
//! always agree on the flow value.

pub mod dinic;
pub mod edmonds_karp;
pub mod min_cost;
pub mod network;

pub use min_cost::{CostEdgeId, MinCostFlowNetwork};
pub use network::{EdgeId, FlowNetwork};

/// Which max-flow implementation to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FlowAlgo {
    /// Dinic's algorithm (default).
    #[default]
    Dinic,
    /// Edmonds–Karp (BFS Ford–Fulkerson), as described in the paper.
    EdmondsKarp,
}

impl FlowAlgo {
    /// Runs the selected algorithm. See [`dinic::max_flow`].
    pub fn run(self, net: &mut FlowNetwork, s: usize, t: usize) -> u64 {
        match self {
            FlowAlgo::Dinic => dinic::max_flow(net, s, t),
            FlowAlgo::EdmondsKarp => edmonds_karp::max_flow(net, s, t),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_algorithms_run_via_enum() {
        for algo in [FlowAlgo::Dinic, FlowAlgo::EdmondsKarp] {
            let mut net = FlowNetwork::new(3);
            net.add_edge(0, 1, 2);
            net.add_edge(1, 2, 3);
            assert_eq!(algo.run(&mut net, 0, 2), 2);
        }
    }

    #[test]
    fn default_is_dinic() {
        assert_eq!(FlowAlgo::default(), FlowAlgo::Dinic);
    }
}
