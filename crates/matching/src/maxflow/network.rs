//! Flow-network representation shared by the max-flow algorithms.
//!
//! Edges are stored in forward/reverse pairs (indices `2k` and `2k+1`), the
//! classic residual-graph layout: pushing flow on one edge adds residual
//! capacity to its partner. Capacities are `u64` (bytes or task units).

/// Handle to an edge added with [`FlowNetwork::add_edge`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EdgeId(pub(crate) usize);

#[derive(Debug, Clone)]
pub(crate) struct Edge {
    pub to: usize,
    /// Remaining (residual) capacity.
    pub cap: u64,
}

/// A directed flow network over `n` vertices.
#[derive(Debug, Clone)]
pub struct FlowNetwork {
    pub(crate) edges: Vec<Edge>,
    pub(crate) adj: Vec<Vec<usize>>,
    original_caps: Vec<u64>,
}

impl FlowNetwork {
    /// Creates a network with `n` vertices and no edges.
    pub fn new(n: usize) -> Self {
        FlowNetwork {
            edges: Vec::new(),
            adj: vec![Vec::new(); n],
            original_caps: Vec::new(),
        }
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of forward edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len() / 2
    }

    /// Adds a directed edge `from -> to` with the given capacity and returns
    /// its handle.
    ///
    /// # Panics
    ///
    /// Panics if a vertex is out of range or `from == to`.
    pub fn add_edge(&mut self, from: usize, to: usize, cap: u64) -> EdgeId {
        let n = self.adj.len();
        assert!(
            from < n && to < n,
            "vertex out of range ({from}->{to}, n={n})"
        );
        assert_ne!(from, to, "self-loops are not allowed");
        let id = self.edges.len();
        self.edges.push(Edge { to, cap });
        self.edges.push(Edge { to: from, cap: 0 });
        self.adj[from].push(id);
        self.adj[to].push(id + 1);
        self.original_caps.push(cap);
        EdgeId(id)
    }

    /// Flow currently routed through an edge (original capacity minus
    /// residual capacity).
    pub fn flow_on(&self, edge: EdgeId) -> u64 {
        let original = self.original_caps[edge.0 / 2];
        original - self.edges[edge.0].cap
    }

    /// Original capacity of an edge.
    pub fn capacity_of(&self, edge: EdgeId) -> u64 {
        self.original_caps[edge.0 / 2]
    }

    /// Resets all flow to zero, keeping the topology.
    pub fn reset_flow(&mut self) {
        for (k, &cap) in self.original_caps.iter().enumerate() {
            self.edges[2 * k].cap = cap;
            self.edges[2 * k + 1].cap = 0;
        }
    }

    /// Checks flow conservation at every vertex except `s` and `t`:
    /// inflow equals outflow. Used by tests and debug assertions.
    pub fn conserves_flow(&self, s: usize, t: usize) -> bool {
        let mut balance = vec![0i128; self.adj.len()];
        for k in 0..self.original_caps.len() {
            let flow = self.flow_on(EdgeId(2 * k)) as i128;
            let to = self.edges[2 * k].to;
            let from = self.edges[2 * k + 1].to;
            balance[from] -= flow;
            balance[to] += flow;
        }
        balance
            .iter()
            .enumerate()
            .all(|(v, &b)| v == s || v == t || b == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_edge_creates_residual_pair() {
        let mut net = FlowNetwork::new(3);
        let e = net.add_edge(0, 1, 10);
        assert_eq!(net.edge_count(), 1);
        assert_eq!(net.flow_on(e), 0);
        assert_eq!(net.capacity_of(e), 10);
    }

    #[test]
    fn reset_restores_capacities() {
        let mut net = FlowNetwork::new(2);
        let e = net.add_edge(0, 1, 5);
        // Manually push 3 units through the residual representation.
        net.edges[0].cap -= 3;
        net.edges[1].cap += 3;
        assert_eq!(net.flow_on(e), 3);
        net.reset_flow();
        assert_eq!(net.flow_on(e), 0);
    }

    #[test]
    fn conservation_of_empty_network() {
        let net = FlowNetwork::new(4);
        assert!(net.conserves_flow(0, 3));
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn rejects_self_loop() {
        let mut net = FlowNetwork::new(2);
        net.add_edge(1, 1, 1);
    }

    #[test]
    #[should_panic(expected = "vertex out of range")]
    fn rejects_out_of_range() {
        let mut net = FlowNetwork::new(2);
        net.add_edge(0, 2, 1);
    }
}
