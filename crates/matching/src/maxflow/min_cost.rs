//! Minimum-cost maximum-flow via successive shortest augmenting paths.
//!
//! The paper's flow network (Figure 5) annotates edges with *byte*
//! capacities; the unit-capacity matcher in [`crate::single_data`]
//! deliberately drops sizes because the evaluation uses equal chunks. When
//! chunk sizes differ, a maximum matching is no longer unique in value:
//! among all maximum matchings we prefer the one that keeps the most
//! *bytes* local. Encoding the preference as a negative cost per matched
//! byte and running min-cost max-flow finds exactly that matching.
//!
//! The implementation is textbook SPFA-based successive shortest paths
//! (Bellman–Ford queue variant, required because preference costs are
//! negative), `O(F · V · E)` — ample for planner-sized networks.

use std::collections::VecDeque;

/// Handle to an edge added with [`MinCostFlowNetwork::add_edge`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CostEdgeId(usize);

#[derive(Debug, Clone)]
struct CostEdge {
    to: usize,
    cap: u64,
    cost: i64,
}

/// A directed flow network with per-edge costs.
#[derive(Debug, Clone)]
pub struct MinCostFlowNetwork {
    edges: Vec<CostEdge>,
    adj: Vec<Vec<usize>>,
    original_caps: Vec<u64>,
}

impl MinCostFlowNetwork {
    /// Creates a network with `n` vertices and no edges.
    pub fn new(n: usize) -> Self {
        MinCostFlowNetwork {
            edges: Vec::new(),
            adj: vec![Vec::new(); n],
            original_caps: Vec::new(),
        }
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.adj.len()
    }

    /// Adds a directed edge with capacity and per-unit cost.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range vertices or self-loops.
    pub fn add_edge(&mut self, from: usize, to: usize, cap: u64, cost: i64) -> CostEdgeId {
        let n = self.adj.len();
        assert!(from < n && to < n, "vertex out of range ({from}->{to})");
        assert_ne!(from, to, "self-loops are not allowed");
        let id = self.edges.len();
        self.edges.push(CostEdge { to, cap, cost });
        self.edges.push(CostEdge {
            to: from,
            cap: 0,
            cost: -cost,
        });
        self.adj[from].push(id);
        self.adj[to].push(id + 1);
        self.original_caps.push(cap);
        CostEdgeId(id)
    }

    /// Flow routed through an edge.
    pub fn flow_on(&self, edge: CostEdgeId) -> u64 {
        self.original_caps[edge.0 / 2] - self.edges[edge.0].cap
    }

    /// Computes the minimum-cost maximum flow from `s` to `t`.
    ///
    /// Returns `(flow, cost)`. Costs may be negative (preferences); the
    /// flow value always equals the plain max flow.
    ///
    /// # Panics
    ///
    /// Panics if `s == t` or either is out of range.
    pub fn min_cost_max_flow(&mut self, s: usize, t: usize) -> (u64, i64) {
        let n = self.vertex_count();
        assert!(s < n && t < n, "s/t out of range");
        assert_ne!(s, t, "source and sink must differ");
        let mut total_flow = 0u64;
        let mut total_cost = 0i64;

        loop {
            // SPFA: shortest (by cost) residual path from s.
            let mut dist = vec![i64::MAX; n];
            let mut in_queue = vec![false; n];
            let mut prev_edge = vec![usize::MAX; n];
            dist[s] = 0;
            let mut queue = VecDeque::new();
            queue.push_back(s);
            in_queue[s] = true;
            while let Some(u) = queue.pop_front() {
                in_queue[u] = false;
                let du = dist[u];
                for &eid in &self.adj[u] {
                    let e = &self.edges[eid];
                    if e.cap == 0 {
                        continue;
                    }
                    let nd = du + e.cost;
                    if nd < dist[e.to] {
                        dist[e.to] = nd;
                        prev_edge[e.to] = eid;
                        if !in_queue[e.to] {
                            queue.push_back(e.to);
                            in_queue[e.to] = true;
                        }
                    }
                }
            }
            if dist[t] == i64::MAX {
                break; // no augmenting path remains
            }

            // Bottleneck along the path.
            let mut bottleneck = u64::MAX;
            let mut v = t;
            while v != s {
                let eid = prev_edge[v];
                bottleneck = bottleneck.min(self.edges[eid].cap);
                v = self.edges[eid ^ 1].to;
            }
            // Augment.
            let mut v = t;
            while v != s {
                let eid = prev_edge[v];
                self.edges[eid].cap -= bottleneck;
                self.edges[eid ^ 1].cap += bottleneck;
                v = self.edges[eid ^ 1].to;
            }
            total_flow += bottleneck;
            total_cost += dist[t] * bottleneck as i64;
        }
        (total_flow, total_cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::maxflow::{dinic, FlowNetwork};

    #[test]
    fn single_edge() {
        let mut net = MinCostFlowNetwork::new(2);
        let e = net.add_edge(0, 1, 5, 3);
        let (flow, cost) = net.min_cost_max_flow(0, 1);
        assert_eq!(flow, 5);
        assert_eq!(cost, 15);
        assert_eq!(net.flow_on(e), 5);
    }

    #[test]
    fn prefers_cheap_path_at_equal_flow() {
        // Two parallel 1-unit paths; the cheaper one is used first, but
        // max flow forces both.
        let mut net = MinCostFlowNetwork::new(4);
        let cheap = net.add_edge(0, 1, 1, 1);
        net.add_edge(1, 3, 1, 0);
        let pricey = net.add_edge(0, 2, 1, 10);
        net.add_edge(2, 3, 1, 0);
        let (flow, cost) = net.min_cost_max_flow(0, 3);
        assert_eq!(flow, 2);
        assert_eq!(cost, 11);
        assert_eq!(net.flow_on(cheap), 1);
        assert_eq!(net.flow_on(pricey), 1);
    }

    #[test]
    fn negative_costs_express_preferences() {
        // One unit of flow, two options: cost -5 vs cost -2. The matching
        // maximizing "bytes" (negated) takes the -5 branch.
        let mut net = MinCostFlowNetwork::new(4);
        let big = net.add_edge(0, 1, 1, -5);
        net.add_edge(1, 3, 1, 0);
        let small = net.add_edge(0, 2, 1, -2);
        net.add_edge(2, 3, 1, 0);
        // Restrict to one unit via a bottleneck source edge pattern:
        // rebuild with a pre-source.
        let mut net2 = MinCostFlowNetwork::new(5);
        let pre = net2.add_edge(4, 0, 1, 0);
        let big2 = net2.add_edge(0, 1, 1, -5);
        net2.add_edge(1, 3, 1, 0);
        let small2 = net2.add_edge(0, 2, 1, -2);
        net2.add_edge(2, 3, 1, 0);
        let (flow, cost) = net2.min_cost_max_flow(4, 3);
        assert_eq!(flow, 1);
        assert_eq!(cost, -5);
        assert_eq!(net2.flow_on(big2), 1);
        assert_eq!(net2.flow_on(small2), 0);
        assert_eq!(net2.flow_on(pre), 1);
        // The unrestricted variant pushes both units.
        let (flow, cost) = net.min_cost_max_flow(0, 3);
        assert_eq!(flow, 2);
        assert_eq!(cost, -7);
        assert_eq!(net.flow_on(big), 1);
        assert_eq!(net.flow_on(small), 1);
    }

    #[test]
    fn flow_value_matches_plain_max_flow() {
        // Deterministic pseudo-random network: the min-cost variant must
        // reach the same flow value as Dinic.
        let n = 10;
        let mut state = 0xC0FFEEu64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut edges = Vec::new();
        for u in 0..n {
            for v in 0..n {
                if u != v && next() % 3 == 0 {
                    // Non-negative costs: arbitrary negative costs could
                    // form negative cycles, which successive shortest
                    // paths does not support (the planner's bipartite
                    // networks are acyclic, so they never hit this).
                    edges.push((u, v, next() % 20 + 1, (next() % 11) as i64));
                }
            }
        }
        let mut mc = MinCostFlowNetwork::new(n);
        let mut plain = FlowNetwork::new(n);
        for &(u, v, c, w) in &edges {
            mc.add_edge(u, v, c, w);
            plain.add_edge(u, v, c);
        }
        let (flow, _) = mc.min_cost_max_flow(0, n - 1);
        let reference = dinic::max_flow(&mut plain, 0, n - 1);
        assert_eq!(flow, reference);
    }

    #[test]
    fn disconnected_gives_zero() {
        let mut net = MinCostFlowNetwork::new(3);
        net.add_edge(0, 1, 4, 2);
        let (flow, cost) = net.min_cost_max_flow(0, 2);
        assert_eq!((flow, cost), (0, 0));
    }
}
