//! Edmonds–Karp max-flow: Ford–Fulkerson with BFS-chosen augmenting paths.
//!
//! This is the algorithm the paper cites for its single-data matcher (it
//! refers to Ford–Fulkerson; BFS path selection makes the complexity
//! `O(V·E²)` independent of capacities while preserving the cancellation
//! behaviour the paper relies on — an augmenting path may reroute a
//! previously assigned file to a different process via a residual edge).

use super::network::FlowNetwork;
use std::collections::VecDeque;

/// Computes the maximum flow from `s` to `t`, mutating `net` so per-edge
/// flows can be read back with [`FlowNetwork::flow_on`].
pub fn max_flow(net: &mut FlowNetwork, s: usize, t: usize) -> u64 {
    assert!(
        s < net.vertex_count() && t < net.vertex_count(),
        "s/t out of range"
    );
    assert_ne!(s, t, "source and sink must differ");
    let n = net.vertex_count();
    let mut total = 0u64;
    // prev[v] = edge index used to reach v in the BFS tree.
    let mut prev = vec![usize::MAX; n];

    loop {
        prev.iter_mut().for_each(|p| *p = usize::MAX);
        let mut queue = VecDeque::new();
        queue.push_back(s);
        let mut reached = false;
        'bfs: while let Some(u) = queue.pop_front() {
            for &eid in &net.adj[u] {
                let edge = &net.edges[eid];
                if edge.cap == 0 || edge.to == s || prev[edge.to] != usize::MAX {
                    continue;
                }
                prev[edge.to] = eid;
                if edge.to == t {
                    reached = true;
                    break 'bfs;
                }
                queue.push_back(edge.to);
            }
        }
        if !reached {
            break;
        }

        // Find the bottleneck along the path.
        let mut bottleneck = u64::MAX;
        let mut v = t;
        while v != s {
            let eid = prev[v];
            bottleneck = bottleneck.min(net.edges[eid].cap);
            v = net.edges[eid ^ 1].to;
        }
        debug_assert!(bottleneck > 0 && bottleneck != u64::MAX);

        // Augment.
        let mut v = t;
        while v != s {
            let eid = prev[v];
            net.edges[eid].cap -= bottleneck;
            net.edges[eid ^ 1].cap += bottleneck;
            v = net.edges[eid ^ 1].to;
        }
        total += bottleneck;
    }
    debug_assert!(net.conserves_flow(s, t));
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_edge() {
        let mut net = FlowNetwork::new(2);
        let e = net.add_edge(0, 1, 7);
        assert_eq!(max_flow(&mut net, 0, 1), 7);
        assert_eq!(net.flow_on(e), 7);
    }

    #[test]
    fn series_takes_min() {
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 10);
        net.add_edge(1, 2, 4);
        assert_eq!(max_flow(&mut net, 0, 2), 4);
    }

    #[test]
    fn parallel_paths_add() {
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 3);
        net.add_edge(1, 3, 3);
        net.add_edge(0, 2, 5);
        net.add_edge(2, 3, 5);
        assert_eq!(max_flow(&mut net, 0, 3), 8);
    }

    #[test]
    fn clrs_textbook_network() {
        // The classic CLRS example with max flow 23.
        let mut net = FlowNetwork::new(6);
        net.add_edge(0, 1, 16);
        net.add_edge(0, 2, 13);
        net.add_edge(1, 2, 10);
        net.add_edge(2, 1, 4);
        net.add_edge(1, 3, 12);
        net.add_edge(3, 2, 9);
        net.add_edge(2, 4, 14);
        net.add_edge(4, 3, 7);
        net.add_edge(3, 5, 20);
        net.add_edge(4, 5, 4);
        assert_eq!(max_flow(&mut net, 0, 5), 23);
        assert!(net.conserves_flow(0, 5));
    }

    #[test]
    fn requires_cancellation() {
        // Bipartite matching where the greedy first choice must be undone:
        // s->a->x->t and s->b->x->t with b having only x, a having x and y.
        // s=0, a=1, b=2, x=3, y=4, t=5.
        let mut net = FlowNetwork::new(6);
        net.add_edge(0, 1, 1);
        net.add_edge(0, 2, 1);
        net.add_edge(1, 3, 1);
        net.add_edge(1, 4, 1);
        net.add_edge(2, 3, 1);
        net.add_edge(3, 5, 1);
        net.add_edge(4, 5, 1);
        assert_eq!(max_flow(&mut net, 0, 5), 2);
    }

    #[test]
    fn disconnected_sink_gives_zero() {
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 5);
        assert_eq!(max_flow(&mut net, 0, 2), 0);
    }

    #[test]
    fn rerun_after_reset_matches() {
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 2);
        net.add_edge(0, 2, 2);
        net.add_edge(1, 3, 2);
        net.add_edge(2, 3, 2);
        let first = max_flow(&mut net, 0, 3);
        net.reset_flow();
        let second = max_flow(&mut net, 0, 3);
        assert_eq!(first, second);
        assert_eq!(first, 4);
    }
}
