//! Optimization of Parallel Single-Data Access (paper Section IV-B).
//!
//! Each task reads exactly one chunk file and every process must receive an
//! equal share of tasks. The matcher encodes the problem as a flow network
//!
//! ```text
//!   s --(quota_p)--> process p --(1)--> file f --(1)--> t
//! ```
//!
//! with a process→file edge wherever the locality graph has one, and runs
//! max-flow. Augmenting paths implement the paper's *cancellation policy*:
//! a file tentatively matched to one process is rerouted when that increases
//! the total matching. Files the flow leaves unmatched (data distribution is
//! never perfectly even) are handed to processes with remaining quota by a
//! fill policy — the paper assigns them randomly; a least-loaded variant is
//! provided for the ablation study.
//!
//! Capacities are in *task units* rather than bytes: the paper's evaluation
//! uses equal-size chunks, and unit capacities guarantee the integral flow
//! assigns each file to exactly one process (a byte-capacity network could
//! split a file across two processes).

use crate::assignment::Assignment;
use crate::graph::BipartiteGraph;
use crate::maxflow::{EdgeId, FlowAlgo, FlowNetwork, MinCostFlowNetwork};
use rand::Rng;

/// How files left unmatched by max-flow are assigned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FillPolicy {
    /// Assign each leftover file to a uniformly random process with spare
    /// quota — the policy described in the paper.
    #[default]
    Random,
    /// Assign each leftover file to the least-loaded process with spare
    /// quota (ablation variant; strictly better balance under skew).
    LeastLoaded,
}

/// What the matcher optimizes among maximum matchings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Objective {
    /// Maximize the number of locally-matched files (the paper's unit
    /// formulation; all chunks are equal-size in its evaluation).
    #[default]
    MatchCount,
    /// Among maximum-cardinality matchings, maximize the locally-matched
    /// *bytes* (min-cost max-flow with cost = −size per matched file) —
    /// the right objective when chunk sizes differ.
    MatchedBytes,
}

/// Configuration for the single-data matcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SingleDataMatcher {
    /// Max-flow implementation to use (for [`Objective::MatchCount`]).
    pub algo: FlowAlgo,
    /// Fill policy for unmatched files.
    pub fill: FillPolicy,
    /// Optimization objective.
    pub objective: Objective,
}

/// Result of a single-data matching.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SingleDataOutcome {
    /// The complete, balanced assignment (every file owned).
    pub assignment: Assignment,
    /// Files matched locally by max-flow.
    pub matched_files: usize,
    /// Files assigned by the fill policy (read remotely at runtime).
    pub filled_files: usize,
}

impl SingleDataOutcome {
    /// Fraction of files matched to a co-located process.
    pub fn matched_fraction(&self) -> f64 {
        let total = self.matched_files + self.filled_files;
        if total == 0 {
            return 1.0;
        }
        self.matched_files as f64 / total as f64
    }
}

/// Per-process task quotas: `n_files` split as evenly as possible, the
/// first `n_files % n_procs` processes receiving one extra.
pub fn quotas(n_files: usize, n_procs: usize) -> Vec<usize> {
    assert!(n_procs > 0, "need at least one process");
    let base = n_files / n_procs;
    let extra = n_files % n_procs;
    (0..n_procs)
        .map(|p| base + usize::from(p < extra))
        .collect()
}

/// Capability-weighted quotas for heterogeneous clusters: `n_files` split
/// proportionally to `weights` (e.g. relative disk bandwidth) by the
/// largest-remainder method, so quotas sum to exactly `n_files`.
///
/// # Panics
///
/// Panics if `weights` is empty, contains a non-finite or negative value,
/// or sums to zero.
pub fn weighted_quotas(n_files: usize, weights: &[f64]) -> Vec<usize> {
    assert!(!weights.is_empty(), "need at least one process");
    let total: f64 = weights.iter().sum();
    assert!(
        weights.iter().all(|w| w.is_finite() && *w >= 0.0) && total > 0.0,
        "weights must be non-negative with a positive sum"
    );
    let shares: Vec<f64> = weights.iter().map(|w| n_files as f64 * w / total).collect();
    let mut quota: Vec<usize> = shares.iter().map(|s| s.floor() as usize).collect();
    let assigned: usize = quota.iter().sum();
    // Hand the remainder to the largest fractional parts (ties: lowest
    // index, deterministic).
    let mut order: Vec<usize> = (0..weights.len()).collect();
    order.sort_by(|&a, &b| {
        let fa = shares[a] - shares[a].floor();
        let fb = shares[b] - shares[b].floor();
        fb.partial_cmp(&fa)
            .expect("finite fractions")
            .then(a.cmp(&b))
    });
    for &p in order.iter().take(n_files - assigned) {
        quota[p] += 1;
    }
    debug_assert_eq!(quota.iter().sum::<usize>(), n_files);
    quota
}

/// Result of the two-tier (node-then-rack) matcher — this repository's
/// rack-locality extension.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TwoTierOutcome {
    /// The complete, balanced assignment.
    pub assignment: Assignment,
    /// Files matched node-locally.
    pub node_matched: usize,
    /// Files matched rack-locally (after node matching).
    pub rack_matched: usize,
    /// Files assigned by the fill policy (cross-rack at runtime).
    pub filled_files: usize,
}

impl SingleDataMatcher {
    /// Computes a balanced assignment maximizing local reads with the
    /// default even quotas.
    ///
    /// The RNG is only consulted by [`FillPolicy::Random`]; with
    /// [`FillPolicy::LeastLoaded`] the result is RNG-independent.
    pub fn assign<R: Rng>(&self, graph: &BipartiteGraph, rng: &mut R) -> SingleDataOutcome {
        let quota = quotas(graph.n_files(), graph.n_procs().max(1));
        self.assign_with_quotas(graph, &quota, rng)
    }

    /// Like [`Self::assign`] but with explicit per-process quotas — the
    /// heterogeneous-cluster extension (quotas proportional to node
    /// capability; see [`weighted_quotas`]).
    ///
    /// # Panics
    ///
    /// Panics unless `quota` has one entry per process and sums to the
    /// file count.
    pub fn assign_with_quotas<R: Rng>(
        &self,
        graph: &BipartiteGraph,
        quota: &[usize],
        rng: &mut R,
    ) -> SingleDataOutcome {
        let m = graph.n_procs();
        let n = graph.n_files();
        assert!(m > 0, "need at least one process");
        assert_eq!(quota.len(), m, "one quota per process");
        assert_eq!(
            quota.iter().sum::<usize>(),
            n,
            "quotas must sum to the file count"
        );

        let mut owner: Vec<Option<usize>> = vec![None; n];
        let mut load = vec![0usize; m];
        let matched_files = self.flow_match(graph, quota, &mut owner, &mut load);
        let filled_files = self.fill(quota, &mut owner, &mut load, rng);

        let owner: Vec<usize> = owner.into_iter().map(|o| o.expect("all filled")).collect();
        SingleDataOutcome {
            assignment: Assignment::from_owners(owner, m),
            matched_files,
            filled_files,
        }
    }

    /// Two-tier matching: first maximize *node-local* assignments on
    /// `node_graph`, then — for files the node tier could not place — run a
    /// second max-flow against `rack_graph` (edges wherever a replica
    /// shares the process's rack) within the remaining quota, and fill the
    /// rest. Both graphs must agree on dimensions.
    pub fn assign_two_tier<R: Rng>(
        &self,
        node_graph: &BipartiteGraph,
        rack_graph: &BipartiteGraph,
        rng: &mut R,
    ) -> TwoTierOutcome {
        let m = node_graph.n_procs();
        let n = node_graph.n_files();
        assert_eq!(rack_graph.n_procs(), m, "graph process counts differ");
        assert_eq!(rack_graph.n_files(), n, "graph file counts differ");
        assert!(m > 0, "need at least one process");
        let quota = quotas(n, m);

        let mut owner: Vec<Option<usize>> = vec![None; n];
        let mut load = vec![0usize; m];
        let node_matched = self.flow_match(node_graph, &quota, &mut owner, &mut load);

        // Second tier: only unmatched files, only spare quota, and only
        // rack edges for files the node tier skipped.
        let mut rack_restricted = BipartiteGraph::new(m, n);
        for p in 0..m {
            if load[p] >= quota[p] {
                continue;
            }
            for (f, bytes) in rack_graph.files_of(p) {
                if owner[f].is_none() {
                    rack_restricted.add_edge(p, f, bytes);
                }
            }
        }
        let residual_quota: Vec<usize> = (0..m).map(|p| quota[p] - load[p]).collect();
        let rack_matched =
            self.flow_match_with_residual(&rack_restricted, &residual_quota, &mut owner, &mut load);

        let filled_files = self.fill(&quota, &mut owner, &mut load, rng);
        let owner: Vec<usize> = owner.into_iter().map(|o| o.expect("all filled")).collect();
        TwoTierOutcome {
            assignment: Assignment::from_owners(owner, m),
            node_matched,
            rack_matched,
            filled_files,
        }
    }

    /// Runs only the matching stage under the default even quotas — no
    /// fill — returning the owner per file and the matched count. This is
    /// exactly the matching [`Self::assign`] starts from, exposed so a
    /// long-lived planner can adopt it into an incremental matcher (see
    /// [`crate::IncrementalMatcher::from_matching`]) and stay
    /// bit-identical to the from-scratch solve.
    pub fn flow_owners(&self, graph: &BipartiteGraph) -> (Vec<Option<usize>>, usize) {
        let m = graph.n_procs();
        assert!(m > 0, "need at least one process");
        let quota = quotas(graph.n_files(), m);
        let mut owner = vec![None; graph.n_files()];
        let mut load = vec![0usize; m];
        let matched = self.flow_match(graph, &quota, &mut owner, &mut load);
        (owner, matched)
    }

    /// Runs max-flow over `graph` under `quota`, recording winners into
    /// `owner`/`load`. Files already owned must not appear in the graph.
    fn flow_match(
        &self,
        graph: &BipartiteGraph,
        quota: &[usize],
        owner: &mut [Option<usize>],
        load: &mut [usize],
    ) -> usize {
        self.flow_match_with_residual(graph, quota, owner, load)
    }

    fn flow_match_with_residual(
        &self,
        graph: &BipartiteGraph,
        residual_quota: &[usize],
        owner: &mut [Option<usize>],
        load: &mut [usize],
    ) -> usize {
        if self.objective == Objective::MatchedBytes {
            return self.flow_match_bytes(graph, residual_quota, owner, load);
        }
        let m = graph.n_procs();
        let n = graph.n_files();
        // Vertex layout: s, processes, files, t.
        let s = 0usize;
        let proc_v = |p: usize| 1 + p;
        let file_v = |f: usize| 1 + m + f;
        let t = 1 + m + n;
        let mut net = FlowNetwork::new(t + 1);

        for (p, &q) in residual_quota.iter().enumerate() {
            if q > 0 {
                net.add_edge(s, proc_v(p), q as u64);
            }
        }
        let mut match_edges: Vec<(usize, usize, EdgeId)> = Vec::with_capacity(graph.edge_count());
        for p in 0..m {
            for (f, _bytes) in graph.files_of(p) {
                debug_assert!(owner[f].is_none(), "matched file {f} still in graph");
                let e = net.add_edge(proc_v(p), file_v(f), 1);
                match_edges.push((p, f, e));
            }
        }
        for (f, o) in owner.iter().enumerate() {
            if o.is_none() {
                net.add_edge(file_v(f), t, 1);
            }
        }

        let matched = self.algo.run(&mut net, s, t) as usize;
        for &(p, f, e) in &match_edges {
            if net.flow_on(e) == 1 {
                debug_assert!(owner[f].is_none(), "file {f} matched twice");
                owner[f] = Some(p);
                load[p] += 1;
            }
        }
        matched
    }

    /// Byte-weighted matching: min-cost max-flow with cost −size on the
    /// locality edges, so the maximum-cardinality matching that keeps the
    /// most bytes local is selected.
    fn flow_match_bytes(
        &self,
        graph: &BipartiteGraph,
        residual_quota: &[usize],
        owner: &mut [Option<usize>],
        load: &mut [usize],
    ) -> usize {
        let m = graph.n_procs();
        let n = graph.n_files();
        let s = 0usize;
        let proc_v = |p: usize| 1 + p;
        let file_v = |f: usize| 1 + m + f;
        let t = 1 + m + n;
        let mut net = MinCostFlowNetwork::new(t + 1);
        for (p, &q) in residual_quota.iter().enumerate() {
            if q > 0 {
                net.add_edge(s, proc_v(p), q as u64, 0);
            }
        }
        let mut match_edges = Vec::with_capacity(graph.edge_count());
        for p in 0..m {
            for (f, bytes) in graph.files_of(p) {
                debug_assert!(owner[f].is_none(), "matched file {f} still in graph");
                let cost = -i64::try_from(bytes).expect("file size fits i64");
                let e = net.add_edge(proc_v(p), file_v(f), 1, cost);
                match_edges.push((p, f, e));
            }
        }
        for (f, o) in owner.iter().enumerate() {
            if o.is_none() {
                net.add_edge(file_v(f), t, 1, 0);
            }
        }
        let (matched, _cost) = net.min_cost_max_flow(s, t);
        for &(p, f, e) in &match_edges {
            if net.flow_on(e) == 1 {
                debug_assert!(owner[f].is_none(), "file {f} matched twice");
                owner[f] = Some(p);
                load[p] += 1;
            }
        }
        matched as usize
    }

    /// Fills unowned files into spare quota per the fill policy. Returns
    /// how many files were filled.
    fn fill<R: Rng>(
        &self,
        quota: &[usize],
        owner: &mut [Option<usize>],
        load: &mut [usize],
        rng: &mut R,
    ) -> usize {
        let m = quota.len();
        let mut filled = 0usize;
        // Indexed loop: the candidate scan reads `load` while `owner[f]`
        // is written, so iter_mut would split the borrows awkwardly.
        #[allow(clippy::needless_range_loop)]
        for f in 0..owner.len() {
            if owner[f].is_some() {
                continue;
            }
            let candidates: Vec<usize> = (0..m).filter(|&p| load[p] < quota[p]).collect();
            debug_assert!(
                !candidates.is_empty(),
                "quotas sum to n, so spare capacity must exist"
            );
            let chosen = match self.fill {
                FillPolicy::Random => candidates[rng.gen_range(0..candidates.len())],
                FillPolicy::LeastLoaded => *candidates
                    .iter()
                    .min_by_key(|&&p| (load[p], p))
                    .expect("non-empty candidates"),
            };
            owner[f] = Some(chosen);
            load[chosen] += 1;
            filled += 1;
        }
        filled
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn quota_distribution() {
        assert_eq!(quotas(10, 5), vec![2, 2, 2, 2, 2]);
        assert_eq!(quotas(11, 5), vec![3, 2, 2, 2, 2]);
        assert_eq!(quotas(3, 5), vec![1, 1, 1, 0, 0]);
        assert_eq!(quotas(0, 3), vec![0, 0, 0]);
    }

    #[test]
    fn perfect_locality_when_data_is_even() {
        // 4 procs, 8 files, each proc co-located with exactly its 2 files.
        let mut g = BipartiteGraph::new(4, 8);
        for p in 0..4 {
            g.add_edge(p, 2 * p, 64);
            g.add_edge(p, 2 * p + 1, 64);
        }
        let out = SingleDataMatcher::default().assign(&g, &mut rng());
        assert_eq!(out.matched_files, 8);
        assert_eq!(out.filled_files, 0);
        assert!(out.assignment.is_balanced());
        for p in 0..4 {
            let mut tasks = out.assignment.tasks_of(p).to_vec();
            tasks.sort_unstable();
            assert_eq!(tasks, vec![2 * p, 2 * p + 1]);
        }
    }

    #[test]
    fn cancellation_reroutes_greedy_choice() {
        // File 0 is co-located with procs {0,1}; file 1 only with proc 0.
        // Quotas are 1 each: the optimal matching gives file 1 to proc 0 and
        // file 0 to proc 1, which requires cancelling a greedy (0 -> file 0)
        // choice via a residual path.
        let mut g = BipartiteGraph::new(2, 2);
        g.add_edge(0, 0, 64);
        g.add_edge(1, 0, 64);
        g.add_edge(0, 1, 64);
        for algo in [FlowAlgo::Dinic, FlowAlgo::EdmondsKarp] {
            let matcher = SingleDataMatcher {
                algo,
                ..Default::default()
            };
            let out = matcher.assign(&g, &mut rng());
            assert_eq!(out.matched_files, 2, "algo {algo:?}");
            assert_eq!(out.assignment.owner_of(1), 0);
            assert_eq!(out.assignment.owner_of(0), 1);
        }
    }

    #[test]
    fn isolated_files_are_filled_and_balance_holds() {
        // 2 procs, 4 files, but only file 0 has any locality.
        let mut g = BipartiteGraph::new(2, 4);
        g.add_edge(0, 0, 64);
        let out = SingleDataMatcher::default().assign(&g, &mut rng());
        assert_eq!(out.matched_files, 1);
        assert_eq!(out.filled_files, 3);
        assert!(out.assignment.is_balanced());
        assert_eq!(out.assignment.tasks_of(0).len(), 2);
        assert_eq!(out.assignment.tasks_of(1).len(), 2);
    }

    #[test]
    fn least_loaded_fill_is_deterministic() {
        let g = BipartiteGraph::new(3, 9); // no locality at all
        let matcher = SingleDataMatcher {
            fill: FillPolicy::LeastLoaded,
            ..Default::default()
        };
        let a = matcher.assign(&g, &mut rng());
        let b = matcher.assign(&g, &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b, "least-loaded fill must ignore the RNG");
        assert!(a.assignment.is_balanced());
    }

    #[test]
    fn quota_respected_under_skewed_locality() {
        // All 6 files live on proc 0's node; quota forces 3 of them away.
        let mut g = BipartiteGraph::new(2, 6);
        for f in 0..6 {
            g.add_edge(0, f, 64);
        }
        let out = SingleDataMatcher::default().assign(&g, &mut rng());
        assert_eq!(out.matched_files, 3, "proc 0 quota is 3");
        assert_eq!(out.filled_files, 3);
        assert!(out.assignment.is_balanced());
    }

    #[test]
    fn matched_fraction_metric() {
        let mut g = BipartiteGraph::new(2, 4);
        g.add_edge(0, 0, 64);
        g.add_edge(1, 1, 64);
        let out = SingleDataMatcher::default().assign(&g, &mut rng());
        assert!((out.matched_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn weighted_quotas_are_proportional_and_exact() {
        let q = weighted_quotas(100, &[2.0, 1.0, 1.0]);
        assert_eq!(q, vec![50, 25, 25]);
        let q = weighted_quotas(10, &[1.0, 1.0, 1.0]);
        assert_eq!(q.iter().sum::<usize>(), 10);
        assert!(q.iter().all(|&x| (3..=4).contains(&x)), "{q:?}");
        // Zero-weight nodes get nothing.
        let q = weighted_quotas(8, &[1.0, 0.0]);
        assert_eq!(q, vec![8, 0]);
    }

    #[test]
    #[should_panic(expected = "positive sum")]
    fn weighted_quotas_reject_all_zero() {
        let _ = weighted_quotas(4, &[0.0, 0.0]);
    }

    #[test]
    fn explicit_quotas_respected() {
        let mut g = BipartiteGraph::new(2, 6);
        for f in 0..6 {
            g.add_edge(0, f, 64);
            g.add_edge(1, f, 64);
        }
        let out = SingleDataMatcher::default().assign_with_quotas(&g, &[4, 2], &mut rng());
        assert_eq!(out.assignment.tasks_of(0).len(), 4);
        assert_eq!(out.assignment.tasks_of(1).len(), 2);
        assert_eq!(out.matched_files, 6);
    }

    #[test]
    fn two_tier_prefers_node_then_rack() {
        // 4 procs in 2 racks: {0,1} and {2,3}. Files 0..4.
        // Node graph: file 0 on proc 0 only. Rack graph additionally lets
        // rack peers reach files: file 1 reachable by procs 0,1 (rack 0);
        // files 2,3 by procs 2,3 (rack 1).
        let mut node_g = BipartiteGraph::new(4, 4);
        node_g.add_edge(0, 0, 64);
        let mut rack_g = BipartiteGraph::new(4, 4);
        rack_g.add_edge(0, 0, 64);
        rack_g.add_edge(1, 0, 64);
        rack_g.add_edge(0, 1, 64);
        rack_g.add_edge(1, 1, 64);
        rack_g.add_edge(2, 2, 64);
        rack_g.add_edge(3, 2, 64);
        rack_g.add_edge(2, 3, 64);
        rack_g.add_edge(3, 3, 64);
        let out = SingleDataMatcher::default().assign_two_tier(&node_g, &rack_g, &mut rng());
        assert_eq!(out.node_matched, 1);
        assert_eq!(out.assignment.owner_of(0), 0);
        // Files 1..4 all rack-matchable within quota 1 each.
        assert_eq!(out.rack_matched, 3);
        assert_eq!(out.filled_files, 0);
        assert!(out.assignment.is_balanced());
        assert_eq!(out.assignment.owner_of(1), 1, "file 1 must stay in rack 0");
    }

    #[test]
    fn two_tier_fill_covers_unreachable_files() {
        let node_g = BipartiteGraph::new(2, 4);
        let rack_g = BipartiteGraph::new(2, 4);
        let out = SingleDataMatcher::default().assign_two_tier(&node_g, &rack_g, &mut rng());
        assert_eq!(out.node_matched + out.rack_matched, 0);
        assert_eq!(out.filled_files, 4);
        assert!(out.assignment.is_balanced());
    }

    #[test]
    fn two_tier_never_worse_than_node_only_in_rack_hits() {
        // Dense-ish deterministic instance.
        let mut node_g = BipartiteGraph::new(4, 16);
        let mut rack_g = BipartiteGraph::new(4, 16);
        let mut state = 777u64;
        for f in 0..16 {
            for p in 0..4 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                if state % 4 == 0 {
                    node_g.add_edge(p, f, 64);
                }
                if state % 2 == 0 {
                    rack_g.add_edge(p, f, 64);
                }
            }
        }
        let node_only = SingleDataMatcher::default().assign(&node_g, &mut rng());
        let two_tier = SingleDataMatcher::default().assign_two_tier(&node_g, &rack_g, &mut rng());
        assert_eq!(two_tier.node_matched, node_only.matched_files);
        assert!(two_tier.filled_files <= node_only.filled_files);
    }

    #[test]
    fn bytes_objective_matches_same_count_but_more_bytes() {
        // Proc 0 is co-located with a 100-byte file and a 10-byte file but
        // has quota 1; an unconstrained second proc takes the rest. The
        // unit objective may pick either; the bytes objective must keep
        // the 100-byte file local.
        let mut g = BipartiteGraph::new(2, 2);
        g.add_edge(0, 0, 100);
        g.add_edge(0, 1, 10);
        let unit = SingleDataMatcher::default().assign(&g, &mut rng());
        let bytes = SingleDataMatcher {
            objective: Objective::MatchedBytes,
            ..Default::default()
        }
        .assign(&g, &mut rng());
        assert_eq!(unit.matched_files, 1);
        assert_eq!(bytes.matched_files, 1, "cardinality must not regress");
        assert_eq!(
            bytes.assignment.owner_of(0),
            0,
            "bytes objective keeps the 100-byte file local"
        );
    }

    #[test]
    fn bytes_objective_equals_unit_on_uniform_sizes() {
        let mut g = BipartiteGraph::new(3, 9);
        let mut state = 5u64;
        for f in 0..9 {
            for p in 0..3 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                if state % 2 == 0 {
                    g.add_edge(p, f, 64);
                }
            }
        }
        let unit = SingleDataMatcher::default().assign(&g, &mut rng());
        let bytes = SingleDataMatcher {
            objective: Objective::MatchedBytes,
            fill: FillPolicy::LeastLoaded,
            ..Default::default()
        }
        .assign(&g, &mut rng());
        assert_eq!(unit.matched_files, bytes.matched_files);
    }

    #[test]
    fn more_procs_than_files() {
        let mut g = BipartiteGraph::new(5, 2);
        g.add_edge(3, 0, 64);
        g.add_edge(4, 1, 64);
        let out = SingleDataMatcher::default().assign(&g, &mut rng());
        // Quotas are [1,1,0,0,0]: procs 3 and 4 have no quota, so their
        // locality cannot be used; both files are filled into procs 0/1.
        assert_eq!(out.assignment.n_tasks(), 2);
        assert!(out.assignment.is_balanced());
    }
}
