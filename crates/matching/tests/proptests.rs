//! Randomized property tests for the matching algorithms.
//!
//! Invariants checked on randomized instances (seeded `StdRng` loops, so
//! every run exercises the same cases deterministically):
//! * Dinic and Edmonds–Karp always agree on the max-flow value;
//! * flow conservation and capacity constraints hold after every run;
//! * the single-data matcher always produces a complete, balanced
//!   assignment whose matched files all lie on locality edges, and the
//!   matching it finds is maximum (equals the pure max-flow value);
//! * Algorithm 1 never drops or duplicates tasks, respects quotas, and its
//!   matched bytes are at least those of a naive greedy;
//! * the guided dynamic scheduler dispenses every task exactly once under
//!   arbitrary idle orders.

use opass_matching::maxflow::{dinic, edmonds_karp, FlowAlgo, FlowNetwork};
use opass_matching::{
    assign_multi_data, quotas, BipartiteGraph, DynamicScheduler, FifoScheduler, FillPolicy,
    GuidedScheduler, IncrementalMatcher, MatchingValues, Objective, SingleDataMatcher,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random directed network as (n, edge list) with no self loops.
fn random_network(rng: &mut StdRng) -> (usize, Vec<(usize, usize, u64)>) {
    let n = rng.gen_range(3usize..12);
    let n_edges = rng.gen_range(0usize..60);
    let mut edges = Vec::with_capacity(n_edges);
    while edges.len() < n_edges {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u != v {
            edges.push((u, v, rng.gen_range(1u64..100)));
        }
    }
    (n, edges)
}

/// A random bipartite locality graph as (m, n, edges).
fn random_bipartite(rng: &mut StdRng) -> (usize, usize, Vec<(usize, usize)>) {
    let m = rng.gen_range(1usize..8);
    let n = rng.gen_range(1usize..40);
    let edges = (0..rng.gen_range(0usize..120))
        .map(|_| (rng.gen_range(0..m), rng.gen_range(0..n)))
        .collect();
    (m, n, edges)
}

fn build_graph(m: usize, n: usize, edges: &[(usize, usize)]) -> BipartiteGraph {
    let mut g = BipartiteGraph::new(m, n);
    for &(p, f) in edges {
        g.add_edge(p, f, 64);
    }
    g
}

#[test]
fn dinic_agrees_with_edmonds_karp() {
    let mut rng = StdRng::seed_from_u64(0xB1);
    for _ in 0..64 {
        let (n, edges) = random_network(&mut rng);
        let build = || {
            let mut net = FlowNetwork::new(n);
            for &(u, v, c) in &edges {
                net.add_edge(u, v, c);
            }
            net
        };
        let mut a = build();
        let mut b = build();
        let fa = dinic::max_flow(&mut a, 0, n - 1);
        let fb = edmonds_karp::max_flow(&mut b, 0, n - 1);
        assert_eq!(fa, fb);
        assert!(a.conserves_flow(0, n - 1));
        assert!(b.conserves_flow(0, n - 1));
    }
}

#[test]
fn flow_never_exceeds_capacity() {
    let mut rng = StdRng::seed_from_u64(0xB2);
    for _ in 0..64 {
        let (n, edges) = random_network(&mut rng);
        let mut net = FlowNetwork::new(n);
        let mut ids = Vec::new();
        for &(u, v, c) in &edges {
            ids.push((net.add_edge(u, v, c), c));
        }
        dinic::max_flow(&mut net, 0, n - 1);
        for (id, cap) in ids {
            assert!(net.flow_on(id) <= cap);
        }
    }
}

#[test]
fn single_data_assignment_is_complete_balanced_and_maximum() {
    let mut rng = StdRng::seed_from_u64(0xB3);
    for _ in 0..64 {
        let (m, n, edges) = random_bipartite(&mut rng);
        let seed = rng.gen_range(0u64..1000);
        let g = build_graph(m, n, &edges);
        let mut assign_rng = StdRng::seed_from_u64(seed);
        let out = SingleDataMatcher::default().assign(&g, &mut assign_rng);

        // Complete: every task owned; balanced: quota respected exactly.
        assert_eq!(out.assignment.n_tasks(), n);
        let quota = quotas(n, m);
        for (p, &q) in quota.iter().enumerate() {
            assert_eq!(out.assignment.tasks_of(p).len(), q);
        }

        // Matched files lie on locality edges.
        let matched = (0..n)
            .filter(|&t| g.weight(out.assignment.owner_of(t), t).is_some())
            .count();
        assert!(
            matched >= out.matched_files,
            "reported {} matched, found {matched} local",
            out.matched_files
        );

        // Maximality: matched_files equals an independently computed
        // max-flow over the same quota network (via Edmonds-Karp).
        let s = 0usize;
        let t = 1 + m + n;
        let mut net = FlowNetwork::new(t + 1);
        for (p, &q) in quota.iter().enumerate() {
            if q > 0 {
                net.add_edge(s, 1 + p, q as u64);
            }
        }
        for p in 0..m {
            for (f, _) in g.files_of(p) {
                net.add_edge(1 + p, 1 + m + f, 1);
            }
        }
        for f in 0..n {
            net.add_edge(1 + m + f, t, 1);
        }
        let reference = edmonds_karp::max_flow(&mut net, s, t) as usize;
        assert_eq!(out.matched_files, reference);
    }
}

#[test]
fn all_three_matchers_agree_on_cardinality() {
    // Dinic, Edmonds–Karp, and the incremental matcher (a Kuhn-style
    // augmenting-path solver) are three independent routes to a maximum
    // matching under the same quota network; their cardinalities must be
    // identical on every instance — including after churn absorbed
    // through the incremental repair paths.
    let mut rng = StdRng::seed_from_u64(0xB8);
    for case in 0..48 {
        let (m, n, edges) = random_bipartite(&mut rng);
        let g = build_graph(m, n, &edges);
        let via = |algo: FlowAlgo| {
            SingleDataMatcher {
                algo,
                ..Default::default()
            }
            .assign(&g, &mut StdRng::seed_from_u64(7))
            .matched_files
        };
        let dinic_files = via(FlowAlgo::Dinic);
        let ek_files = via(FlowAlgo::EdmondsKarp);
        let mut inc = IncrementalMatcher::new(g.clone(), Objective::MatchCount);
        assert_eq!(dinic_files, ek_files, "case {case}: Dinic vs Edmonds–Karp");
        assert_eq!(
            dinic_files,
            inc.matched_count(),
            "case {case}: flow vs incremental"
        );

        // Churn the instance through the repair paths, then re-check the
        // three-way agreement on the mutated graph.
        for i in 0..8 {
            let p = rng.gen_range(0..m);
            let f = rng.gen_range(0..n);
            match (inc.graph().weight(p, f).is_some(), i % 2 == 0) {
                (true, true) => inc.remove_edge(p, f),
                (true, false) => inc.stage_remove_edge(p, f),
                (false, true) => inc.add_edge(p, f, 64),
                (false, false) => inc.stage_add_edge(p, f, 64),
            }
            if i % 2 != 0 {
                inc.repair_batch();
            }
        }
        let churned = inc.graph().clone();
        let via_churned = |algo: FlowAlgo| {
            SingleDataMatcher {
                algo,
                ..Default::default()
            }
            .assign(&churned, &mut StdRng::seed_from_u64(7))
            .matched_files
        };
        let dinic_files = via_churned(FlowAlgo::Dinic);
        assert_eq!(
            dinic_files,
            via_churned(FlowAlgo::EdmondsKarp),
            "case {case}: post-churn Dinic vs Edmonds–Karp"
        );
        assert_eq!(
            dinic_files,
            inc.matched_count(),
            "case {case}: post-churn flow vs incremental"
        );
    }
}

#[test]
fn fill_policies_only_differ_in_fill_choice() {
    let mut rng = StdRng::seed_from_u64(0xB4);
    for _ in 0..64 {
        let (m, n, edges) = random_bipartite(&mut rng);
        let seed = rng.gen_range(0u64..1000);
        let g = build_graph(m, n, &edges);
        let random = SingleDataMatcher {
            fill: FillPolicy::Random,
            ..Default::default()
        }
        .assign(&g, &mut StdRng::seed_from_u64(seed));
        let least = SingleDataMatcher {
            fill: FillPolicy::LeastLoaded,
            ..Default::default()
        }
        .assign(&g, &mut StdRng::seed_from_u64(seed));
        assert_eq!(random.matched_files, least.matched_files);
        assert_eq!(random.filled_files, least.filled_files);
    }
}

fn random_values(rng: &mut StdRng, m_max: usize, n_max: usize, e_max: usize) -> MatchingValues {
    let m = rng.gen_range(1usize..m_max);
    let n = rng.gen_range(1usize..n_max);
    let mut v = MatchingValues::new(m, n);
    for _ in 0..rng.gen_range(0usize..e_max) {
        let p = rng.gen_range(0usize..m_max);
        let t = rng.gen_range(0usize..n_max);
        let b = rng.gen_range(1u64..200);
        if p < m && t < n {
            v.add(p, t, b);
        }
    }
    v
}

#[test]
fn multi_data_respects_quotas_and_conserves_tasks() {
    let mut rng = StdRng::seed_from_u64(0xB5);
    for _ in 0..64 {
        let v = random_values(&mut rng, 8, 40, 150);
        let (m, n) = (v.n_procs(), v.n_tasks());
        let out = assign_multi_data(&v);
        let quota = quotas(n, m);
        let mut seen = vec![false; n];
        for (p, &q) in quota.iter().enumerate() {
            assert_eq!(out.assignment.tasks_of(p).len(), q, "p={p}");
            for &t in out.assignment.tasks_of(p) {
                assert!(!seen[t], "task {t} duplicated");
                seen[t] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }
}

#[test]
fn multi_data_has_no_blocking_pair() {
    let mut rng = StdRng::seed_from_u64(0xB6);
    for _ in 0..64 {
        let v = random_values(&mut rng, 6, 30, 100);
        let (m, n) = (v.n_procs(), v.n_tasks());
        let out = assign_multi_data(&v);
        // Deferred-acceptance stability under quotas: there is no (p, t)
        // where p values t strictly above its own least-valued task while
        // t's owner values t strictly below p (such a pair would justify a
        // trade the algorithm claims to have exhausted).
        for p in 0..m {
            let tasks = out.assignment.tasks_of(p);
            if tasks.is_empty() {
                continue;
            }
            let my_min = tasks.iter().map(|&t| v.value(p, t)).min().unwrap();
            for t in 0..n {
                let owner = out.assignment.owner_of(t);
                if owner == p {
                    continue;
                }
                let blocking = v.value(p, t) > my_min && v.value(owner, t) < v.value(p, t);
                assert!(
                    !blocking,
                    "blocking pair p={} t={}: v(p,t)={} my_min={} v(owner,t)={}",
                    p,
                    t,
                    v.value(p, t),
                    my_min,
                    v.value(owner, t)
                );
            }
        }
    }
}

#[test]
fn guided_scheduler_dispenses_each_task_once() {
    let mut rng = StdRng::seed_from_u64(0xB7);
    for _ in 0..64 {
        let m = rng.gen_range(1usize..6);
        let n = rng.gen_range(1usize..30);
        let idle_order: Vec<usize> = (0..rng.gen_range(0usize..80))
            .map(|_| rng.gen_range(0usize..6))
            .collect();
        let owners: Vec<usize> = (0..n).map(|t| t % m).collect();
        let assignment = opass_matching::Assignment::from_owners(owners, m);
        let values = MatchingValues::new(m, n);
        let mut sched = GuidedScheduler::new(&assignment, values);
        let mut seen = vec![false; n];
        let mut dispensed = 0usize;
        // Arbitrary idle pattern, then drain deterministically.
        for &w in idle_order.iter().filter(|&&w| w < m) {
            if let Some(t) = sched.next_task(w) {
                assert!(!seen[t]);
                seen[t] = true;
                dispensed += 1;
            }
        }
        while let Some(t) = sched.next_task(0) {
            assert!(!seen[t]);
            seen[t] = true;
            dispensed += 1;
        }
        assert_eq!(dispensed, n);
        assert_eq!(sched.remaining(), 0);
    }
}

#[test]
fn fifo_scheduler_dispenses_everything() {
    for n in [0usize, 1, 2, 7, 33, 59] {
        let mut sched = FifoScheduler::new(n);
        let mut count = 0;
        while sched.next_task(count % 3).is_some() {
            count += 1;
        }
        assert_eq!(count, n);
    }
}
