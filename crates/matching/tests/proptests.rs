//! Property-based tests for the matching algorithms.
//!
//! Invariants checked on randomized instances:
//! * Dinic and Edmonds–Karp always agree on the max-flow value;
//! * flow conservation and capacity constraints hold after every run;
//! * the single-data matcher always produces a complete, balanced
//!   assignment whose matched files all lie on locality edges, and the
//!   matching it finds is maximum (equals the pure max-flow value);
//! * Algorithm 1 never drops or duplicates tasks, respects quotas, and its
//!   matched bytes are at least those of a naive greedy;
//! * the guided dynamic scheduler dispenses every task exactly once under
//!   arbitrary idle orders.

use opass_matching::maxflow::{dinic, edmonds_karp, FlowNetwork};
use opass_matching::{
    assign_multi_data, quotas, BipartiteGraph, DynamicScheduler, FifoScheduler, FillPolicy,
    GuidedScheduler, MatchingValues, SingleDataMatcher,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy: a random directed network as (n, edge list).
fn arb_network() -> impl Strategy<Value = (usize, Vec<(usize, usize, u64)>)> {
    (3usize..12).prop_flat_map(|n| {
        let edges = proptest::collection::vec(
            (0..n, 0..n, 1u64..100).prop_filter("no self loops", |(u, v, _)| u != v),
            0..60,
        );
        (Just(n), edges)
    })
}

/// Strategy: a random bipartite locality graph as (m, n, edges).
fn arb_bipartite() -> impl Strategy<Value = (usize, usize, Vec<(usize, usize)>)> {
    (1usize..8, 1usize..40).prop_flat_map(|(m, n)| {
        let edges = proptest::collection::vec((0..m, 0..n), 0..120);
        (Just(m), Just(n), edges)
    })
}

fn build_graph(m: usize, n: usize, edges: &[(usize, usize)]) -> BipartiteGraph {
    let mut g = BipartiteGraph::new(m, n);
    for &(p, f) in edges {
        g.add_edge(p, f, 64);
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dinic_agrees_with_edmonds_karp((n, edges) in arb_network()) {
        let build = || {
            let mut net = FlowNetwork::new(n);
            for &(u, v, c) in &edges {
                net.add_edge(u, v, c);
            }
            net
        };
        let mut a = build();
        let mut b = build();
        let fa = dinic::max_flow(&mut a, 0, n - 1);
        let fb = edmonds_karp::max_flow(&mut b, 0, n - 1);
        prop_assert_eq!(fa, fb);
        prop_assert!(a.conserves_flow(0, n - 1));
        prop_assert!(b.conserves_flow(0, n - 1));
    }

    #[test]
    fn flow_never_exceeds_capacity((n, edges) in arb_network()) {
        let mut net = FlowNetwork::new(n);
        let mut ids = Vec::new();
        for &(u, v, c) in &edges {
            ids.push((net.add_edge(u, v, c), c));
        }
        dinic::max_flow(&mut net, 0, n - 1);
        for (id, cap) in ids {
            prop_assert!(net.flow_on(id) <= cap);
        }
    }

    #[test]
    fn single_data_assignment_is_complete_balanced_and_maximum(
        (m, n, edges) in arb_bipartite(),
        seed in 0u64..1000,
    ) {
        let g = build_graph(m, n, &edges);
        let mut rng = StdRng::seed_from_u64(seed);
        let out = SingleDataMatcher::default().assign(&g, &mut rng);

        // Complete: every task owned; balanced: quota respected exactly.
        prop_assert_eq!(out.assignment.n_tasks(), n);
        let quota = quotas(n, m);
        for (p, &q) in quota.iter().enumerate() {
            prop_assert_eq!(out.assignment.tasks_of(p).len(), q);
        }

        // Matched files lie on locality edges.
        let matched = (0..n)
            .filter(|&t| g.weight(out.assignment.owner_of(t), t).is_some())
            .count();
        prop_assert!(matched >= out.matched_files,
            "reported {} matched, found {matched} local", out.matched_files);

        // Maximality: matched_files equals an independently computed
        // max-flow over the same quota network (via Edmonds-Karp).
        let s = 0usize;
        let t = 1 + m + n;
        let mut net = FlowNetwork::new(t + 1);
        for (p, &q) in quota.iter().enumerate() {
            if q > 0 { net.add_edge(s, 1 + p, q as u64); }
        }
        for p in 0..m {
            for &(f, _) in g.files_of(p) {
                net.add_edge(1 + p, 1 + m + f, 1);
            }
        }
        for f in 0..n {
            net.add_edge(1 + m + f, t, 1);
        }
        let reference = edmonds_karp::max_flow(&mut net, s, t) as usize;
        prop_assert_eq!(out.matched_files, reference);
    }

    #[test]
    fn fill_policies_only_differ_in_fill_choice(
        (m, n, edges) in arb_bipartite(),
        seed in 0u64..1000,
    ) {
        let g = build_graph(m, n, &edges);
        let random = SingleDataMatcher { fill: FillPolicy::Random, ..Default::default() }
            .assign(&g, &mut StdRng::seed_from_u64(seed));
        let least = SingleDataMatcher { fill: FillPolicy::LeastLoaded, ..Default::default() }
            .assign(&g, &mut StdRng::seed_from_u64(seed));
        prop_assert_eq!(random.matched_files, least.matched_files);
        prop_assert_eq!(random.filled_files, least.filled_files);
    }

    #[test]
    fn multi_data_respects_quotas_and_conserves_tasks(
        m in 1usize..8,
        n in 1usize..40,
        entries in proptest::collection::vec((0usize..8, 0usize..40, 1u64..200), 0..150),
    ) {
        let mut v = MatchingValues::new(m, n);
        for (p, t, b) in entries {
            if p < m && t < n {
                v.add(p, t, b);
            }
        }
        let out = assign_multi_data(&v);
        let quota = quotas(n, m);
        let mut seen = vec![false; n];
        for (p, &q) in quota.iter().enumerate() {
            prop_assert_eq!(out.assignment.tasks_of(p).len(), q, "p={}", p);
            for &t in out.assignment.tasks_of(p) {
                prop_assert!(!seen[t], "task {} duplicated", t);
                seen[t] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn multi_data_has_no_blocking_pair(
        m in 1usize..6,
        n in 1usize..30,
        entries in proptest::collection::vec((0usize..6, 0usize..30, 1u64..200), 0..100),
    ) {
        let mut v = MatchingValues::new(m, n);
        for (p, t, b) in entries {
            if p < m && t < n {
                v.add(p, t, b);
            }
        }
        let out = assign_multi_data(&v);
        // Deferred-acceptance stability under quotas: there is no (p, t)
        // where p values t strictly above its own least-valued task while
        // t's owner values t strictly below p (such a pair would justify a
        // trade the algorithm claims to have exhausted).
        for p in 0..m {
            let tasks = out.assignment.tasks_of(p);
            if tasks.is_empty() {
                continue;
            }
            let my_min = tasks.iter().map(|&t| v.value(p, t)).min().unwrap();
            for t in 0..n {
                let owner = out.assignment.owner_of(t);
                if owner == p {
                    continue;
                }
                let blocking = v.value(p, t) > my_min && v.value(owner, t) < v.value(p, t);
                prop_assert!(
                    !blocking,
                    "blocking pair p={} t={}: v(p,t)={} my_min={} v(owner,t)={}",
                    p, t, v.value(p, t), my_min, v.value(owner, t)
                );
            }
        }
    }

    #[test]
    fn guided_scheduler_dispenses_each_task_once(
        m in 1usize..6,
        n in 1usize..30,
        idle_order in proptest::collection::vec(0usize..6, 0..80),
    ) {
        let owners: Vec<usize> = (0..n).map(|t| t % m).collect();
        let assignment = opass_matching::Assignment::from_owners(owners, m);
        let values = MatchingValues::new(m, n);
        let mut sched = GuidedScheduler::new(&assignment, values);
        let mut seen = vec![false; n];
        let mut dispensed = 0usize;
        // Arbitrary idle pattern, then drain deterministically.
        for &w in idle_order.iter().filter(|&&w| w < m) {
            if let Some(t) = sched.next_task(w) {
                prop_assert!(!seen[t]);
                seen[t] = true;
                dispensed += 1;
            }
        }
        while let Some(t) = sched.next_task(0) {
            prop_assert!(!seen[t]);
            seen[t] = true;
            dispensed += 1;
        }
        prop_assert_eq!(dispensed, n);
        prop_assert_eq!(sched.remaining(), 0);
    }

    #[test]
    fn fifo_scheduler_dispenses_everything(n in 0usize..60) {
        let mut sched = FifoScheduler::new(n);
        let mut count = 0;
        while sched.next_task(count % 3).is_some() {
            count += 1;
        }
        prop_assert_eq!(count, n);
    }
}
