//! Remote-access pattern analysis (paper Section III-A, Figure 3).
//!
//! With `n` chunks randomly placed `r`-way on an `m`-node cluster and tasks
//! randomly assigned to the parallel processes, the number of chunks read
//! *locally* across the whole application is `X ~ Bin(n, r/m)`: each chunk
//! has `r` of `m` nodes holding a copy, so the probability that the reading
//! process happens to sit on one of them is `r/m`. That is the formula the
//! paper states, exposed here as [`LocalityModel::distribution`].
//!
//! **Published-number discrepancy.** The percentages the paper prints for
//! Figure 3 — `P(X > 5)` = 81.09%, 21.43%, 1.64% for m = 64, 128, 256 — do
//! *not* follow from `Bin(512, 3/m)` (whose means are 24, 12, 6, making
//! `P(X > 5)` ≈ 1 at m = 64). They match `Bin(512, 1/m)` exactly, i.e. the
//! authors appear to have evaluated their formula with `r = 1` (equivalently
//! the per-node served-chunk marginal of Section III-B). Both variants are
//! provided: [`LocalityModel::distribution`] (formula as written) and
//! [`LocalityModel::published_distribution`] (reproduces the printed
//! numbers). EXPERIMENTS.md records the comparison. Either way the paper's
//! conclusion stands: locality decays quickly as the cluster grows.

use crate::binomial::Binomial;

/// Cluster/workload parameters shared by the Section III models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterParams {
    /// Number of chunks in the dataset (`n`).
    pub n_chunks: u64,
    /// Replication factor (`r`, HDFS default 3).
    pub replication: u32,
    /// Number of cluster nodes (`m`).
    pub cluster_size: u32,
}

impl ClusterParams {
    /// Creates the parameter set, validating `r <= m` and non-degeneracy.
    pub fn new(n_chunks: u64, replication: u32, cluster_size: u32) -> Self {
        assert!(n_chunks > 0, "dataset must contain at least one chunk");
        assert!(replication >= 1, "replication factor must be at least 1");
        assert!(
            replication <= cluster_size,
            "replication {replication} cannot exceed cluster size {cluster_size}"
        );
        ClusterParams {
            n_chunks,
            replication,
            cluster_size,
        }
    }

    /// The paper's running configuration: 512 chunks (32 GB at 64 MB),
    /// 3-way replication, on a cluster of `m` nodes.
    pub fn paper_with_cluster(cluster_size: u32) -> Self {
        ClusterParams::new(512, 3, cluster_size)
    }

    /// Probability that a random chunk has a replica on a given node
    /// (`r / m`).
    pub fn p_local(&self) -> f64 {
        f64::from(self.replication) / f64::from(self.cluster_size)
    }
}

/// Distribution of the number of chunks a process can read locally.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LocalityModel {
    params: ClusterParams,
}

impl LocalityModel {
    /// Builds the model for the given parameters.
    pub fn new(params: ClusterParams) -> Self {
        LocalityModel { params }
    }

    /// The parameters behind the model.
    pub fn params(&self) -> ClusterParams {
        self.params
    }

    /// The `Bin(n, r/m)` distribution of application-wide local reads — the
    /// formula as written in Section III-A.
    pub fn distribution(&self) -> Binomial {
        Binomial::new(self.params.n_chunks, self.params.p_local())
    }

    /// The `Bin(n, 1/m)` distribution that reproduces the paper's *printed*
    /// Figure 3 numbers (see the module docs for the discrepancy).
    pub fn published_distribution(&self) -> Binomial {
        Binomial::new(
            self.params.n_chunks,
            1.0 / f64::from(self.params.cluster_size),
        )
    }

    /// `P(X > k)` under the published calibration (`Bin(n, 1/m)`).
    pub fn published_p_more_than(&self, k: u64) -> f64 {
        self.published_distribution().sf(k)
    }

    /// Approximate distribution of local reads for a *single* process under
    /// random task assignment: a chunk is assigned to this process with
    /// probability `1/m` and is then local with probability `r/m`, giving
    /// `Bin(n, r/m²)`. Cross-validated by the Monte-Carlo module.
    pub fn per_process_distribution(&self) -> Binomial {
        let m = f64::from(self.params.cluster_size);
        Binomial::new(
            self.params.n_chunks,
            f64::from(self.params.replication) / (m * m),
        )
    }

    /// `P(X <= k)`: probability of reading at most `k` chunks locally.
    pub fn cdf(&self, k: u64) -> f64 {
        self.distribution().cdf(k)
    }

    /// `P(X > k)`: probability of reading more than `k` chunks locally.
    pub fn p_more_than(&self, k: u64) -> f64 {
        self.distribution().sf(k)
    }

    /// Expected number of locally read chunks.
    pub fn expected_local(&self) -> f64 {
        self.distribution().mean()
    }

    /// Expected fraction of the dataset read *remotely* by a process that is
    /// assigned `n/m` chunks — the headline "almost all data is remote on a
    /// large cluster" quantity.
    pub fn expected_remote_fraction(&self) -> f64 {
        1.0 - self.params.p_local()
    }

    /// CDF points `(k, P(X <= k))` for `k` in `0..=k_max` — the Figure 3
    /// series for one cluster size.
    pub fn cdf_series(&self, k_max: u64) -> Vec<(u64, f64)> {
        // Incremental accumulation avoids the O(k^2) of repeated cdf calls.
        let dist = self.distribution();
        let mut acc = 0.0;
        (0..=k_max)
            .map(|k| {
                acc += dist.pmf(k);
                (k, acc.min(1.0))
            })
            .collect()
    }
}

/// The full Figure 3 family: one CDF series per cluster size.
pub fn figure3_families(
    n_chunks: u64,
    replication: u32,
    cluster_sizes: &[u32],
    k_max: u64,
) -> Vec<(u32, Vec<(u64, f64)>)> {
    cluster_sizes
        .iter()
        .map(|&m| {
            let model = LocalityModel::new(ClusterParams::new(n_chunks, replication, m));
            (m, model.cdf_series(k_max))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p_local_is_r_over_m() {
        let p = ClusterParams::new(512, 3, 128);
        assert!((p.p_local() - 3.0 / 128.0).abs() < 1e-15);
    }

    #[test]
    fn paper_headline_numbers_published_calibration() {
        // Section III-A prints P(X > 5) = 81.09%, 21.43%, 1.64% for
        // m = 64, 128, 256; these follow from the published calibration.
        let expect = [(64, 0.8109), (128, 0.2143), (256, 0.0164)];
        for (m, want) in expect {
            let model = LocalityModel::new(ClusterParams::paper_with_cluster(m));
            let got = model.published_p_more_than(5);
            assert!((got - want).abs() < 2e-3, "m={m}: got {got:.4} want {want}");
        }
        // m = 512: the paper prints 0.46%; the calibration gives ~0.06%.
        let model = LocalityModel::new(ClusterParams::paper_with_cluster(512));
        assert!(model.published_p_more_than(5) < 0.005);
    }

    #[test]
    fn formula_as_written_gives_higher_locality() {
        // Bin(n, r/m) has r times the mean of the published Bin(n, 1/m).
        for m in [64u32, 128, 256, 512] {
            let model = LocalityModel::new(ClusterParams::paper_with_cluster(m));
            let written = model.distribution().mean();
            let published = model.published_distribution().mean();
            assert!((written - 3.0 * published).abs() < 1e-9, "m={m}");
        }
    }

    #[test]
    fn paper_m128_at_least_nine_is_about_two_percent() {
        // "with a cluster size m = 128, the probability of reading more
        // than 9 chunks locally is about 2%" — holds for P(X >= 9) under
        // the published calibration (mean 4).
        let model = LocalityModel::new(ClusterParams::paper_with_cluster(128));
        let p = model.published_p_more_than(8);
        assert!(p > 0.01 && p < 0.03, "got {p}");
    }

    #[test]
    fn locality_decays_with_cluster_size() {
        for published in [false, true] {
            let p5: Vec<f64> = [64, 128, 256, 512]
                .iter()
                .map(|&m| {
                    let model = LocalityModel::new(ClusterParams::paper_with_cluster(m));
                    if published {
                        model.published_p_more_than(5)
                    } else {
                        model.p_more_than(5)
                    }
                })
                .collect();
            for w in p5.windows(2) {
                assert!(w[1] < w[0], "P(X>5) must decrease with m: {p5:?}");
            }
        }
    }

    #[test]
    fn cdf_series_matches_pointwise_cdf() {
        let model = LocalityModel::new(ClusterParams::new(512, 3, 128));
        let series = model.cdf_series(20);
        assert_eq!(series.len(), 21);
        for &(k, v) in &series {
            assert!((v - model.cdf(k)).abs() < 1e-12, "k={k}");
        }
    }

    #[test]
    fn figure3_has_one_family_per_cluster_size() {
        let fams = figure3_families(512, 3, &[64, 128, 256, 512], 20);
        assert_eq!(fams.len(), 4);
        for (_, series) in &fams {
            assert_eq!(series.len(), 21);
            for w in series.windows(2) {
                assert!(w[0].1 <= w[1].1, "CDF must be monotone");
            }
        }
    }

    #[test]
    fn expected_local_reads_scale() {
        // 512 chunks, r/m = 3/64: a process expects 24 local chunks.
        let model = LocalityModel::new(ClusterParams::paper_with_cluster(64));
        assert!((model.expected_local() - 24.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "cannot exceed cluster size")]
    fn rejects_replication_above_cluster() {
        let _ = ClusterParams::new(512, 5, 4);
    }
}
