//! Imbalanced-access pattern analysis (paper Section III-B).
//!
//! When a chunk is read remotely, the serving node is chosen uniformly among
//! the `r` replica holders. For a node `n_j`:
//!
//! * `Y` — the number of chunks stored on `n_j` — is `Bin(n, r/m)` because
//!   placement is random;
//! * conditioned on `Y = a`, the number of chunks `Z` *served* by `n_j` is
//!   `Bin(a, 1/r)` because each of its `a` chunks picks `n_j` with
//!   probability `1/r`;
//! * by the law of total probability,
//!   `P(Z <= k) = Σ_a P(Z <= k | Y = a) · P(Y = a)`.
//!
//! The paper instantiates this with `r = 3, n = 512, m = 128` and concludes
//! some nodes serve more than 8× the chunks of others. (Note: the marginal
//! of `Z` is exactly `Bin(n, 1/m)` — the mixture telescopes — which this
//! module exploits as a cross-check in tests.)

use crate::binomial::Binomial;
use crate::locality::ClusterParams;

/// # Example
///
/// ```
/// use opass_analysis::{ClusterParams, ImbalanceModel};
///
/// // The paper's configuration: 512 chunks, r = 3, m = 128 nodes.
/// let model = ImbalanceModel::new(ClusterParams::new(512, 3, 128));
/// assert_eq!(model.expected_served(), 4.0);            // mean load
/// assert!(model.expected_nodes_serving_at_most(1) > 10.0); // idle-ish nodes
/// assert!(model.expected_max_served() > 8.0);          // the hot spot
/// ```
///
/// Distribution of the number of chunks served by one storage node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImbalanceModel {
    params: ClusterParams,
}

impl ImbalanceModel {
    /// Builds the model for the given parameters.
    pub fn new(params: ClusterParams) -> Self {
        ImbalanceModel { params }
    }

    /// The parameters behind the model.
    pub fn params(&self) -> ClusterParams {
        self.params
    }

    /// `P(Y = a)`: probability that a node stores exactly `a` chunks.
    pub fn p_stores_exactly(&self, a: u64) -> f64 {
        Binomial::new(self.params.n_chunks, self.params.p_local()).pmf(a)
    }

    /// `P(Z <= k)`: probability that a node serves at most `k` chunks,
    /// computed with the paper's law-of-total-probability sum.
    pub fn served_cdf(&self, k: u64) -> f64 {
        let n = self.params.n_chunks;
        let storage = Binomial::new(n, self.params.p_local());
        let inv_r = 1.0 / f64::from(self.params.replication);
        let mut acc = 0.0;
        for a in 0..=n {
            let p_y = storage.pmf(a);
            if p_y < 1e-18 && a as f64 > storage.mean() {
                break; // the upper tail no longer contributes
            }
            acc += Binomial::new(a, inv_r).cdf(k) * p_y;
        }
        acc.min(1.0)
    }

    /// `P(Z > k)`.
    pub fn served_sf(&self, k: u64) -> f64 {
        (1.0 - self.served_cdf(k)).clamp(0.0, 1.0)
    }

    /// Expected number of chunks served by a node (`n / m` by symmetry).
    pub fn expected_served(&self) -> f64 {
        self.params.n_chunks as f64 / f64::from(self.params.cluster_size)
    }

    /// Expected number of *nodes* serving at most `k` chunks:
    /// `m · P(Z <= k)`.
    pub fn expected_nodes_serving_at_most(&self, k: u64) -> f64 {
        f64::from(self.params.cluster_size) * self.served_cdf(k)
    }

    /// Expected number of nodes serving more than `k` chunks:
    /// `m · P(Z > k)`.
    pub fn expected_nodes_serving_more_than(&self, k: u64) -> f64 {
        f64::from(self.params.cluster_size) * self.served_sf(k)
    }

    /// The expectation behind the paper's printed Section III-B numbers.
    ///
    /// The paper writes "512 × P(Z ≤ 1) = 11" and "512 × (1 − P(Z ≤ 8)) =
    /// 6", but with `n = 512, r = 3, m = 128` those products do not come out
    /// to 11 and 6; `m × P(Z ≤ 1) ≈ 11.7` and `m × P(Z > 7) ≈ 6.5` do. The
    /// prefactor is evidently the node count `m` (with the second threshold
    /// meaning "at least 8"), which is also the only scaling under which
    /// "expected number of **nodes**" is meaningful. This method returns the
    /// `m`-scaled expectation; EXPERIMENTS.md records the comparison.
    pub fn paper_expected_light_nodes(&self) -> f64 {
        self.expected_nodes_serving_at_most(1)
    }

    /// Expected count of heavily loaded nodes (serving ≥ 8 chunks) behind
    /// the paper's "6 nodes serve more than 8× the others" claim. See
    /// [`Self::paper_expected_light_nodes`] for the scaling discussion.
    pub fn paper_expected_heavy_nodes(&self) -> f64 {
        self.expected_nodes_serving_more_than(7)
    }

    /// Served-chunk CDF points `(k, P(Z <= k))` for `k` in `0..=k_max`.
    pub fn served_cdf_series(&self, k_max: u64) -> Vec<(u64, f64)> {
        (0..=k_max).map(|k| (k, self.served_cdf(k))).collect()
    }

    /// Expected number of chunks served by the *most loaded* node,
    /// `E[max_j Z_j]`, treating nodes as independent (exact in the
    /// Poissonized limit, an excellent approximation at the paper's
    /// scales). This is the quantity that sets the parallel makespan: the
    /// barrier waits for the hottest disk.
    ///
    /// Computed as `Σ_k P(max > k) = Σ_k (1 − P(Z ≤ k)^m)`.
    pub fn expected_max_served(&self) -> f64 {
        let m = f64::from(self.params.cluster_size);
        let n = self.params.n_chunks;
        let mut acc = 0.0;
        for k in 0..n {
            let p_all_below = self.served_cdf(k).powf(m);
            let tail = 1.0 - p_all_below;
            acc += tail;
            if tail < 1e-12 {
                break;
            }
        }
        acc
    }

    /// The headline imbalance factor: expected hottest node divided by the
    /// mean (`E[max Z] / (n/m)`); 1 means perfectly even.
    pub fn expected_imbalance_factor(&self) -> f64 {
        self.expected_max_served() / self.expected_served()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_model() -> ImbalanceModel {
        ImbalanceModel::new(ClusterParams::new(512, 3, 128))
    }

    #[test]
    fn mixture_marginal_is_binomial_n_one_over_m() {
        // P(Z <= k) computed by the total-probability sum must equal the
        // closed-form marginal Bin(n, 1/m): each chunk independently lands
        // on node j (prob r/m) AND picks j to serve it (prob 1/r).
        let model = paper_model();
        let marginal = Binomial::new(512, 1.0 / 128.0);
        for k in [0u64, 1, 2, 4, 8, 16] {
            let via_sum = model.served_cdf(k);
            let closed = marginal.cdf(k);
            assert!(
                (via_sum - closed).abs() < 1e-9,
                "k={k}: sum={via_sum} closed={closed}"
            );
        }
    }

    #[test]
    fn expected_served_is_n_over_m() {
        assert!((paper_model().expected_served() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn paper_section_iii_b_numbers() {
        // Paper: ~11 nodes serve at most 1 chunk while ~6 nodes serve 8+
        // chunks (printed with an erroneous 512 prefactor; see the method
        // docs). m-scaled: 128 * P(Z<=1) ~ 11.7, 128 * P(Z>7) ~ 6.5.
        let model = paper_model();
        let light = model.paper_expected_light_nodes();
        let heavy = model.paper_expected_heavy_nodes();
        assert!((light - 11.0).abs() < 1.5, "light={light}");
        assert!((heavy - 6.0).abs() < 1.5, "heavy={heavy}");
    }

    #[test]
    fn some_nodes_serve_8x_others() {
        // The qualitative claim: with m=128 there is simultaneously a
        // non-trivial expected count of nodes serving <=1 chunk and of
        // nodes serving >8 chunks.
        let model = paper_model();
        assert!(model.expected_nodes_serving_at_most(1) >= 1.0);
        assert!(model.expected_nodes_serving_more_than(8) >= 1.0);
    }

    #[test]
    fn served_cdf_is_monotone() {
        let model = paper_model();
        let series = model.served_cdf_series(20);
        for w in series.windows(2) {
            assert!(w[0].1 <= w[1].1 + 1e-12);
        }
        assert!(series.last().unwrap().1 > 0.999_999);
    }

    #[test]
    fn storage_distribution_sums_to_one() {
        let model = paper_model();
        let total: f64 = (0..=512).map(|a| model.p_stores_exactly(a)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn expected_max_served_matches_paper_scale() {
        // m=128, n=512: mean 4 chunks/node; the hottest of 128 nodes is
        // expected to serve ~10-12 chunks (Poisson(4) max over 128 draws).
        let model = paper_model();
        let max = model.expected_max_served();
        assert!((9.0..14.0).contains(&max), "E[max]={max}");
        let factor = model.expected_imbalance_factor();
        assert!(factor > 2.0, "hottest node serves >2x the mean: {factor}");
    }

    #[test]
    fn expected_max_grows_with_cluster_size_at_fixed_mean() {
        // Keeping n/m fixed at 4, more nodes -> higher expected maximum
        // (more draws from the same distribution).
        let small = ImbalanceModel::new(ClusterParams::new(4 * 32, 3, 32));
        let large = ImbalanceModel::new(ClusterParams::new(4 * 256, 3, 256));
        assert!(
            large.expected_max_served() > small.expected_max_served(),
            "large {} vs small {}",
            large.expected_max_served(),
            small.expected_max_served()
        );
    }

    #[test]
    fn larger_clusters_are_more_imbalanced_relative_to_mean() {
        // As m grows with n fixed, the mean served per node shrinks while
        // the coefficient of variation grows: P(Z > 4 * mean) increases.
        let tail = |m: u32| {
            let model = ImbalanceModel::new(ClusterParams::new(512, 3, m));
            let k = (4.0 * model.expected_served()).ceil() as u64;
            model.served_sf(k)
        };
        assert!(tail(256) > tail(64));
    }
}
