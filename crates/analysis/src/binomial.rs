//! Binomial distribution with numerically stable log-space evaluation.
//!
//! Section III of the paper reduces both the *remote access* and the
//! *imbalanced access* analyses to binomial tail probabilities with large
//! `n` (hundreds of chunks) and small `p` (`r/m`). Direct products of
//! factorials overflow long before that, so probabilities are computed in
//! log space via `ln n!`.

/// Natural log of `n!`, exact summation for small `n`, Stirling series
/// beyond (absolute error below 1e-10 for all `n`).
pub fn ln_factorial(n: u64) -> f64 {
    const EXACT_LIMIT: u64 = 256;
    if n < 2 {
        return 0.0;
    }
    if n <= EXACT_LIMIT {
        let mut acc = 0.0;
        for i in 2..=n {
            acc += (i as f64).ln();
        }
        return acc;
    }
    // Stirling's series: ln n! = n ln n - n + ln(2*pi*n)/2
    //                    + 1/(12n) - 1/(360 n^3) + 1/(1260 n^5)
    let nf = n as f64;
    let ln2pi = (2.0 * std::f64::consts::PI).ln();
    nf * nf.ln() - nf + 0.5 * (ln2pi + nf.ln()) + 1.0 / (12.0 * nf) - 1.0 / (360.0 * nf.powi(3))
        + 1.0 / (1260.0 * nf.powi(5))
}

/// Natural log of the binomial coefficient `C(n, k)`.
///
/// Returns `-inf` when `k > n` (the coefficient is zero).
pub fn ln_choose(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

/// A binomial distribution `Bin(n, p)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Binomial {
    n: u64,
    p: f64,
}

impl Binomial {
    /// Creates `Bin(n, p)`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= p <= 1`.
    pub fn new(n: u64, p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p) && p.is_finite(),
            "binomial probability must be in [0,1], got {p}"
        );
        Binomial { n, p }
    }

    /// Number of trials.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Success probability.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Expected value `n * p`.
    pub fn mean(&self) -> f64 {
        self.n as f64 * self.p
    }

    /// Variance `n * p * (1 - p)`.
    pub fn variance(&self) -> f64 {
        self.n as f64 * self.p * (1.0 - self.p)
    }

    /// Probability mass `P(X = k)`.
    pub fn pmf(&self, k: u64) -> f64 {
        if k > self.n {
            return 0.0;
        }
        // Degenerate endpoints avoid ln(0).
        if self.p == 0.0 {
            return if k == 0 { 1.0 } else { 0.0 };
        }
        if self.p == 1.0 {
            return if k == self.n { 1.0 } else { 0.0 };
        }
        let kf = k as f64;
        let nf = self.n as f64;
        // ln(1 - p) via ln_1p(-p) for accuracy near p = 0.
        let ln_pmf = ln_choose(self.n, k) + kf * self.p.ln() + (nf - kf) * (-self.p).ln_1p();
        ln_pmf.exp()
    }

    /// Cumulative distribution `P(X <= k)`.
    pub fn cdf(&self, k: u64) -> f64 {
        if k >= self.n {
            return 1.0;
        }
        let mut acc = 0.0;
        for i in 0..=k {
            acc += self.pmf(i);
        }
        acc.min(1.0)
    }

    /// Survival function `P(X > k)`.
    pub fn sf(&self, k: u64) -> f64 {
        // Sum the smaller tail for accuracy.
        if (k as f64) < self.mean() {
            (1.0 - self.cdf(k)).clamp(0.0, 1.0)
        } else {
            let mut acc = 0.0;
            let mut i = k + 1;
            while i <= self.n {
                acc += self.pmf(i);
                i += 1;
            }
            acc.clamp(0.0, 1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_factorial_matches_exact_values() {
        assert_eq!(ln_factorial(0), 0.0);
        assert_eq!(ln_factorial(1), 0.0);
        assert!((ln_factorial(5) - 120.0_f64.ln()).abs() < 1e-12);
        assert!((ln_factorial(10) - 3628800.0_f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn stirling_is_continuous_at_the_switch() {
        // Compare the Stirling branch against exact summation around the
        // crossover point.
        let exact = |n: u64| (2..=n).map(|i| (i as f64).ln()).sum::<f64>();
        for n in [257u64, 300, 512, 1000, 5000] {
            let err = (ln_factorial(n) - exact(n)).abs();
            assert!(err < 1e-9, "n={n} err={err}");
        }
    }

    #[test]
    fn ln_choose_small_cases() {
        assert!((ln_choose(5, 2) - 10.0_f64.ln()).abs() < 1e-12);
        assert!((ln_choose(10, 0)).abs() < 1e-12);
        assert!(ln_choose(3, 5).is_infinite());
    }

    #[test]
    fn pmf_sums_to_one() {
        let b = Binomial::new(512, 3.0 / 128.0);
        let total: f64 = (0..=512).map(|k| b.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9, "total={total}");
    }

    #[test]
    fn degenerate_distributions() {
        let zero = Binomial::new(10, 0.0);
        assert_eq!(zero.pmf(0), 1.0);
        assert_eq!(zero.pmf(1), 0.0);
        assert_eq!(zero.cdf(0), 1.0);
        let one = Binomial::new(10, 1.0);
        assert_eq!(one.pmf(10), 1.0);
        assert_eq!(one.sf(9), 1.0);
    }

    #[test]
    fn cdf_plus_sf_is_one() {
        let b = Binomial::new(100, 0.3);
        for k in [0u64, 1, 10, 30, 50, 99] {
            let s = b.cdf(k) + b.sf(k);
            assert!((s - 1.0).abs() < 1e-9, "k={k} s={s}");
        }
    }

    #[test]
    fn mean_and_variance() {
        let b = Binomial::new(512, 3.0 / 64.0);
        assert!((b.mean() - 24.0).abs() < 1e-12);
        assert!((b.variance() - 24.0 * (1.0 - 3.0 / 64.0)).abs() < 1e-9);
    }

    #[test]
    fn paper_section_iii_a_probabilities() {
        // P(X > 5) for n=512 chunks, m in {64,128,256}. The paper prints
        // 81.09%, 21.43%, 1.64% — these match Bin(512, 1/m) (see the
        // `locality` module docs for the discrepancy with the formula as
        // written, which uses r/m).
        let cases = [(64u32, 0.8109), (128, 0.2143), (256, 0.0164)];
        for (m, expected) in cases {
            let b = Binomial::new(512, 1.0 / m as f64);
            let p = b.sf(5);
            assert!(
                (p - expected).abs() < 0.002,
                "m={m}: got {p:.4}, paper says {expected}"
            );
        }
        // m=512: the paper prints 0.46%; Bin(512, 1/512) actually gives
        // ~0.06%. Both are "essentially zero"; we assert ours is tiny.
        let p512 = Binomial::new(512, 1.0 / 512.0).sf(5);
        assert!(p512 < 0.005, "got {p512}");
    }

    #[test]
    fn pmf_matches_direct_computation_small_n() {
        // Cross-check the log-space path against exact arithmetic.
        let b = Binomial::new(12, 0.4);
        let choose = |n: u64, k: u64| -> f64 {
            let mut c = 1.0;
            for i in 0..k {
                c = c * (n - i) as f64 / (i + 1) as f64;
            }
            c
        };
        for k in 0..=12u64 {
            let exact = choose(12, k) * 0.4f64.powi(k as i32) * 0.6f64.powi((12 - k) as i32);
            assert!((b.pmf(k) - exact).abs() < 1e-12, "k={k}");
        }
    }

    #[test]
    #[should_panic(expected = "probability must be in [0,1]")]
    fn rejects_bad_probability() {
        let _ = Binomial::new(10, 1.5);
    }
}
