//! # opass-analysis — probabilistic analysis of parallel data access
//!
//! Reproduces Section III of the Opass paper in closed form:
//!
//! * [`locality`] — how many chunks a parallel process can expect to read
//!   *locally* (`X ~ Bin(n, r/m)`; Figure 3 and the `P(X > 5)` headline
//!   numbers);
//! * [`imbalance`] — how many chunks a storage node must *serve*
//!   (law-of-total-probability mixture over the node's stored chunks;
//!   the "some nodes serve 8× more than others" conclusion);
//! * [`binomial`] — the shared log-space binomial machinery;
//! * [`montecarlo`] — protocol-accurate simulation cross-validating the
//!   closed forms.
//!
//! ```
//! use opass_analysis::{ClusterParams, LocalityModel};
//!
//! // 512 chunks, 3-way replication, 128 nodes (paper Section III-A):
//! let model = LocalityModel::new(ClusterParams::new(512, 3, 128));
//! let p = model.published_p_more_than(5);
//! assert!((p - 0.2143).abs() < 0.002); // paper: 21.43%
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod binomial;
pub mod imbalance;
pub mod locality;
pub mod montecarlo;

pub use binomial::{ln_choose, ln_factorial, Binomial};
pub use imbalance::ImbalanceModel;
pub use locality::{figure3_families, ClusterParams, LocalityModel};
pub use montecarlo::{
    run as run_montecarlo, run_parallel as run_montecarlo_parallel, wilson_interval,
    MonteCarloConfig, MonteCarloResult,
};
