//! Monte-Carlo validation of the Section III closed forms.
//!
//! The analytic models in [`crate::locality`] and [`crate::imbalance`] rest
//! on independence assumptions (sampling replica nodes *with* replacement,
//! treating every read as remote). This module simulates the actual protocol
//! — `r` *distinct* replica nodes per chunk, random task assignment, HDFS
//! prefer-local-else-random-replica reads — and produces empirical
//! distributions to compare against the theory. The agreement (verified in
//! tests) justifies using the closed forms in the figure harness.

use crate::locality::ClusterParams;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Configuration for a Monte-Carlo run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MonteCarloConfig {
    /// Cluster and dataset parameters.
    pub params: ClusterParams,
    /// Number of independent trials (placements + assignments).
    pub trials: u32,
    /// RNG seed; identical configs reproduce identical histograms.
    pub seed: u64,
}

/// Empirical distributions gathered from the trials.
#[derive(Debug, Clone, PartialEq)]
pub struct MonteCarloResult {
    /// `local_reads[k]` = number of (trial, process) observations in which a
    /// process read exactly `k` of its assigned chunks locally
    /// (theory: ≈ `Bin(n, r/m²)`).
    pub local_reads: Vec<u64>,
    /// `total_local[k]` = number of trials in which exactly `k` chunks were
    /// read locally across the whole application (theory: `Bin(n, r/m)`,
    /// the Section III-A formula as written).
    pub total_local: Vec<u64>,
    /// `served[k]` = number of (trial, node) observations in which a node
    /// served exactly `k` chunk requests.
    pub served: Vec<u64>,
    /// Total observations per histogram (trials × processes, trials × nodes).
    pub observations_local: u64,
    /// Total (trial, node) observations.
    pub observations_served: u64,
    /// Fraction of all reads that were served locally.
    pub local_fraction: f64,
}

impl MonteCarloResult {
    /// Empirical `P(X <= k)` for the local-read distribution.
    pub fn local_cdf(&self, k: usize) -> f64 {
        cdf_of(&self.local_reads, self.observations_local, k)
    }

    /// Empirical `P(Z <= k)` for the served-chunks distribution.
    pub fn served_cdf(&self, k: usize) -> f64 {
        cdf_of(&self.served, self.observations_served, k)
    }

    /// 95% Wilson confidence interval around the empirical served-chunk
    /// CDF at `k`.
    pub fn served_cdf_ci(&self, k: usize) -> (f64, f64) {
        let hits: u64 = self.served.iter().take(k + 1).sum();
        wilson_interval(hits, self.observations_served)
    }

    /// Empirical `P(total local reads <= k)` across trials.
    pub fn total_local_cdf(&self, k: usize) -> f64 {
        let trials: u64 = self.total_local.iter().sum();
        cdf_of(&self.total_local, trials, k)
    }

    /// Mean of the per-trial total local reads.
    pub fn mean_total_local(&self) -> f64 {
        let trials: u64 = self.total_local.iter().sum();
        if trials == 0 {
            return 0.0;
        }
        let weighted: u64 = self
            .total_local
            .iter()
            .enumerate()
            .map(|(k, &c)| k as u64 * c)
            .sum();
        weighted as f64 / trials as f64
    }
}

/// Wilson score interval for a binomial proportion at ~95% confidence —
/// the right interval for Monte-Carlo hit rates (never escapes `[0, 1]`,
/// behaves at the extremes where the normal approximation fails).
pub fn wilson_interval(successes: u64, trials: u64) -> (f64, f64) {
    if trials == 0 {
        return (0.0, 1.0);
    }
    let z = 1.96f64;
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let half = (z / denom) * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
    ((center - half).max(0.0), (center + half).min(1.0))
}

fn cdf_of(hist: &[u64], total: u64, k: usize) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let upto: u64 = hist.iter().take(k + 1).sum();
    upto as f64 / total as f64
}

/// Runs the simulation described in Section III: random `r`-way placement on
/// distinct nodes, one process per node, chunks assigned to processes
/// uniformly at random, reads served locally when possible and otherwise by
/// a uniformly random replica holder.
pub fn run(config: &MonteCarloConfig) -> MonteCarloResult {
    let ClusterParams {
        n_chunks,
        replication,
        cluster_size,
    } = config.params;
    let n = n_chunks as usize;
    let r = replication as usize;
    let m = cluster_size as usize;
    let mut rng = StdRng::seed_from_u64(config.seed);

    let mut local_hist = vec![0u64; n + 1];
    let mut total_local_hist = vec![0u64; n + 1];
    let mut served_hist = vec![0u64; n + 1];
    let mut local_reads_total = 0u64;
    let mut reads_total = 0u64;

    let mut node_pool: Vec<usize> = (0..m).collect();
    for _ in 0..config.trials {
        // r-way placement on distinct nodes (HDFS random placement).
        let mut holders: Vec<Vec<usize>> = Vec::with_capacity(n);
        for _ in 0..n {
            node_pool.shuffle(&mut rng);
            let mut hs = node_pool[..r].to_vec();
            hs.sort_unstable();
            holders.push(hs);
        }

        // Random task assignment: chunk -> process (process rank == node).
        let mut local_count = vec![0u64; m];
        let mut served_count = vec![0u64; m];
        for hs in &holders {
            let proc_node = rng.gen_range(0..m);
            reads_total += 1;
            if hs.contains(&proc_node) {
                local_count[proc_node] += 1;
                served_count[proc_node] += 1;
                local_reads_total += 1;
            } else {
                let source = hs[rng.gen_range(0..hs.len())];
                served_count[source] += 1;
            }
        }
        let trial_local: u64 = local_count.iter().sum();
        total_local_hist[trial_local as usize] += 1;
        for &c in &local_count {
            local_hist[c as usize] += 1;
        }
        for &c in &served_count {
            served_hist[c as usize] += 1;
        }
    }

    let observations = config.trials as u64 * m as u64;
    MonteCarloResult {
        local_reads: local_hist,
        total_local: total_local_hist,
        served: served_hist,
        observations_local: observations,
        observations_served: observations,
        local_fraction: if reads_total == 0 {
            0.0
        } else {
            local_reads_total as f64 / reads_total as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::imbalance::ImbalanceModel;
    use crate::locality::LocalityModel;

    fn config(m: u32, trials: u32) -> MonteCarloConfig {
        MonteCarloConfig {
            params: ClusterParams::new(512, 3, m),
            trials,
            seed: 0x0A55 ^ 7,
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run(&config(64, 5));
        let b = run(&config(64, 5));
        assert_eq!(a, b);
    }

    #[test]
    fn local_fraction_is_about_r_over_m() {
        let res = run(&config(128, 40));
        let expected = 3.0 / 128.0;
        assert!(
            (res.local_fraction - expected).abs() < 0.01,
            "got {} want ~{expected}",
            res.local_fraction
        );
    }

    #[test]
    fn total_local_reads_match_formula_as_written() {
        // Mean total local reads should be n * r/m = 512 * 3/128 = 12.
        let res = run(&config(128, 60));
        let mean = res.mean_total_local();
        assert!((mean - 12.0).abs() < 1.0, "mean={mean}");
    }

    #[test]
    fn histograms_conserve_observations() {
        let cfg = config(64, 10);
        let res = run(&cfg);
        let total_local: u64 = res.local_reads.iter().sum();
        let total_served: u64 = res.served.iter().sum();
        assert_eq!(total_local, res.observations_local);
        assert_eq!(total_served, res.observations_served);
        // Served chunks across nodes must equal chunks per trial.
        let served_chunks: u64 = res
            .served
            .iter()
            .enumerate()
            .map(|(k, &c)| k as u64 * c)
            .sum();
        assert_eq!(served_chunks, 512 * 10);
    }

    #[test]
    fn empirical_per_process_local_cdf_tracks_theory() {
        // Per-process local reads follow ~Bin(n, r/m^2); the theory samples
        // replica nodes with replacement while the simulation places on
        // distinct nodes, so allow a small tolerance.
        let cfg = config(128, 60);
        let res = run(&cfg);
        let dist = LocalityModel::new(cfg.params).per_process_distribution();
        for k in [0usize, 1, 2, 3] {
            let emp = res.local_cdf(k);
            let theory = dist.cdf(k as u64);
            assert!(
                (emp - theory).abs() < 0.04,
                "k={k}: empirical={emp:.4} theory={theory:.4}"
            );
        }
    }

    #[test]
    fn empirical_total_local_cdf_tracks_formula_as_written() {
        let cfg = config(128, 80);
        let res = run(&cfg);
        let dist = LocalityModel::new(cfg.params).distribution();
        for k in [6usize, 10, 12, 16] {
            let emp = res.total_local_cdf(k);
            let theory = dist.cdf(k as u64);
            assert!(
                (emp - theory).abs() < 0.12,
                "k={k}: empirical={emp:.4} theory={theory:.4}"
            );
        }
    }

    #[test]
    fn empirical_served_cdf_tracks_theory() {
        let cfg = config(128, 60);
        let res = run(&cfg);
        let model = ImbalanceModel::new(cfg.params);
        for k in [0usize, 1, 4, 8, 12] {
            let emp = res.served_cdf(k);
            let theory = model.served_cdf(k as u64);
            assert!(
                (emp - theory).abs() < 0.04,
                "k={k}: empirical={emp:.4} theory={theory:.4}"
            );
        }
    }

    #[test]
    fn wilson_interval_properties() {
        // Contains the point estimate, stays in [0,1], and narrows with n.
        let (lo, hi) = wilson_interval(30, 100);
        assert!(lo < 0.3 && 0.3 < hi);
        assert!((0.0..=1.0).contains(&lo) && (0.0..=1.0).contains(&hi));
        let (lo2, hi2) = wilson_interval(300, 1000);
        assert!(hi2 - lo2 < hi - lo, "more trials must narrow the interval");
        // Extremes behave.
        let (lo0, _) = wilson_interval(0, 50);
        assert_eq!(lo0, 0.0);
        let (_, hi1) = wilson_interval(50, 50);
        assert_eq!(hi1, 1.0);
        assert_eq!(wilson_interval(0, 0), (0.0, 1.0));
    }

    #[test]
    fn ci_brackets_the_theory() {
        let cfg = config(128, 60);
        let res = run(&cfg);
        let theory = crate::imbalance::ImbalanceModel::new(cfg.params).served_cdf(4);
        let (lo, hi) = res.served_cdf_ci(4);
        assert!(
            lo <= theory && theory <= hi,
            "theory {theory} outside CI [{lo}, {hi}]"
        );
    }

    #[test]
    fn imbalance_appears_in_simulation() {
        // Within a single trial at m=128, some nodes serve many chunks and
        // some serve none — the paper's Figure 1 in miniature.
        let res = run(&config(128, 30));
        assert!(res.served[0] > 0, "some nodes should serve nothing");
        let heavy: u64 = res.served.iter().skip(9).sum();
        assert!(heavy > 0, "some nodes should serve >8 chunks");
    }
}
