//! Monte-Carlo validation of the Section III closed forms.
//!
//! The analytic models in [`crate::locality`] and [`crate::imbalance`] rest
//! on independence assumptions (sampling replica nodes *with* replacement,
//! treating every read as remote). This module simulates the actual protocol
//! — `r` *distinct* replica nodes per chunk, random task assignment, HDFS
//! prefer-local-else-random-replica reads — and produces empirical
//! distributions to compare against the theory. The agreement (verified in
//! tests) justifies using the closed forms in the figure harness.

use crate::locality::ClusterParams;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Configuration for a Monte-Carlo run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MonteCarloConfig {
    /// Cluster and dataset parameters.
    pub params: ClusterParams,
    /// Number of independent trials (placements + assignments).
    pub trials: u32,
    /// RNG seed; identical configs reproduce identical histograms.
    pub seed: u64,
}

/// Empirical distributions gathered from the trials.
#[derive(Debug, Clone, PartialEq)]
pub struct MonteCarloResult {
    /// `local_reads[k]` = number of (trial, process) observations in which a
    /// process read exactly `k` of its assigned chunks locally
    /// (theory: ≈ `Bin(n, r/m²)`).
    pub local_reads: Vec<u64>,
    /// `total_local[k]` = number of trials in which exactly `k` chunks were
    /// read locally across the whole application (theory: `Bin(n, r/m)`,
    /// the Section III-A formula as written).
    pub total_local: Vec<u64>,
    /// `served[k]` = number of (trial, node) observations in which a node
    /// served exactly `k` chunk requests.
    pub served: Vec<u64>,
    /// Total observations per histogram (trials × processes, trials × nodes).
    pub observations_local: u64,
    /// Total (trial, node) observations.
    pub observations_served: u64,
    /// Fraction of all reads that were served locally.
    pub local_fraction: f64,
}

impl MonteCarloResult {
    /// Empirical `P(X <= k)` for the local-read distribution.
    pub fn local_cdf(&self, k: usize) -> f64 {
        cdf_of(&self.local_reads, self.observations_local, k)
    }

    /// Empirical `P(Z <= k)` for the served-chunks distribution.
    pub fn served_cdf(&self, k: usize) -> f64 {
        cdf_of(&self.served, self.observations_served, k)
    }

    /// 95% Wilson confidence interval around the empirical served-chunk
    /// CDF at `k`.
    pub fn served_cdf_ci(&self, k: usize) -> (f64, f64) {
        let hits: u64 = self.served.iter().take(k + 1).sum();
        wilson_interval(hits, self.observations_served)
    }

    /// Empirical `P(total local reads <= k)` across trials.
    pub fn total_local_cdf(&self, k: usize) -> f64 {
        let trials: u64 = self.total_local.iter().sum();
        cdf_of(&self.total_local, trials, k)
    }

    /// Mean of the per-trial total local reads.
    pub fn mean_total_local(&self) -> f64 {
        let trials: u64 = self.total_local.iter().sum();
        if trials == 0 {
            return 0.0;
        }
        let weighted: u64 = self
            .total_local
            .iter()
            .enumerate()
            .map(|(k, &c)| k as u64 * c)
            .sum();
        weighted as f64 / trials as f64
    }
}

/// Wilson score interval for a binomial proportion at ~95% confidence —
/// the right interval for Monte-Carlo hit rates (never escapes `[0, 1]`,
/// behaves at the extremes where the normal approximation fails).
pub fn wilson_interval(successes: u64, trials: u64) -> (f64, f64) {
    if trials == 0 {
        return (0.0, 1.0);
    }
    let z = 1.96f64;
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let half = (z / denom) * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
    ((center - half).max(0.0), (center + half).min(1.0))
}

fn cdf_of(hist: &[u64], total: u64, k: usize) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let upto: u64 = hist.iter().take(k + 1).sum();
    upto as f64 / total as f64
}

/// SplitMix64 finalizer — the standard way to derive well-mixed per-stream
/// seeds from a base seed and a stream index.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Seed for trial `t`: trials are independent RNG streams, so a run's
/// histograms do not depend on which thread executes which trial.
fn trial_seed(seed: u64, trial: u32) -> u64 {
    splitmix64(seed ^ splitmix64(0x5EED_0000_0000_0000 ^ trial as u64))
}

/// Additive per-thread accumulator; merging is plain integer addition, so
/// any partition of trials across threads sums to the same totals.
struct Accum {
    local_hist: Vec<u64>,
    total_local_hist: Vec<u64>,
    served_hist: Vec<u64>,
    local_reads_total: u64,
    reads_total: u64,
}

impl Accum {
    fn new(n: usize) -> Self {
        Accum {
            local_hist: vec![0; n + 1],
            total_local_hist: vec![0; n + 1],
            served_hist: vec![0; n + 1],
            local_reads_total: 0,
            reads_total: 0,
        }
    }

    fn merge(&mut self, other: &Accum) {
        for (a, b) in self.local_hist.iter_mut().zip(&other.local_hist) {
            *a += b;
        }
        for (a, b) in self
            .total_local_hist
            .iter_mut()
            .zip(&other.total_local_hist)
        {
            *a += b;
        }
        for (a, b) in self.served_hist.iter_mut().zip(&other.served_hist) {
            *a += b;
        }
        self.local_reads_total += other.local_reads_total;
        self.reads_total += other.reads_total;
    }
}

/// Per-trial scratch buffers, reused across the trials a thread runs.
struct Scratch {
    node_pool: Vec<usize>,
    local_count: Vec<u64>,
    served_count: Vec<u64>,
}

impl Scratch {
    fn new(m: usize) -> Self {
        Scratch {
            node_pool: (0..m).collect(),
            local_count: vec![0; m],
            served_count: vec![0; m],
        }
    }
}

/// One trial: random `r`-way placement on distinct nodes, random task
/// assignment, prefer-local-else-random-replica reads.
fn run_trial(params: &ClusterParams, rng: &mut StdRng, scratch: &mut Scratch, acc: &mut Accum) {
    let n = params.n_chunks as usize;
    let r = params.replication as usize;
    let m = params.cluster_size as usize;
    // Reset the pool to the identity permutation: a trial's output must
    // depend only on its own RNG stream, not on which trials (if any) the
    // same scratch buffer served before.
    for (i, slot) in scratch.node_pool.iter_mut().enumerate() {
        *slot = i;
    }
    scratch.local_count.iter_mut().for_each(|c| *c = 0);
    scratch.served_count.iter_mut().for_each(|c| *c = 0);

    let mut hs = Vec::with_capacity(r);
    for _ in 0..n {
        // r-way placement on distinct nodes (HDFS random placement).
        scratch.node_pool.shuffle(rng);
        hs.clear();
        hs.extend_from_slice(&scratch.node_pool[..r]);
        hs.sort_unstable();

        // Random task assignment: chunk -> process (process rank == node).
        let proc_node = rng.gen_range(0..m);
        acc.reads_total += 1;
        if hs.contains(&proc_node) {
            scratch.local_count[proc_node] += 1;
            scratch.served_count[proc_node] += 1;
            acc.local_reads_total += 1;
        } else {
            let source = hs[rng.gen_range(0..hs.len())];
            scratch.served_count[source] += 1;
        }
    }
    let trial_local: u64 = scratch.local_count.iter().sum();
    acc.total_local_hist[trial_local as usize] += 1;
    for &c in &scratch.local_count {
        acc.local_hist[c as usize] += 1;
    }
    for &c in &scratch.served_count {
        acc.served_hist[c as usize] += 1;
    }
}

fn finish(config: &MonteCarloConfig, acc: Accum) -> MonteCarloResult {
    let observations = config.trials as u64 * config.params.cluster_size as u64;
    MonteCarloResult {
        local_reads: acc.local_hist,
        total_local: acc.total_local_hist,
        served: acc.served_hist,
        observations_local: observations,
        observations_served: observations,
        local_fraction: if acc.reads_total == 0 {
            0.0
        } else {
            acc.local_reads_total as f64 / acc.reads_total as f64
        },
    }
}

/// Runs the simulation described in Section III: random `r`-way placement on
/// distinct nodes, one process per node, chunks assigned to processes
/// uniformly at random, reads served locally when possible and otherwise by
/// a uniformly random replica holder.
///
/// Trials use independent per-trial RNG streams (seed split via SplitMix64),
/// so this sequential runner and [`run_parallel`] produce byte-identical
/// results for the same config.
pub fn run(config: &MonteCarloConfig) -> MonteCarloResult {
    let n = config.params.n_chunks as usize;
    let m = config.params.cluster_size as usize;
    let mut acc = Accum::new(n);
    let mut scratch = Scratch::new(m);
    for t in 0..config.trials {
        let mut rng = StdRng::seed_from_u64(trial_seed(config.seed, t));
        run_trial(&config.params, &mut rng, &mut scratch, &mut acc);
    }
    finish(config, acc)
}

/// Parallel variant of [`run`]: trials are partitioned into contiguous
/// blocks across `threads` scoped worker threads (capped to the trial
/// count; `None` = available parallelism) and the per-thread histograms are
/// summed in block order. Because trials are independent RNG streams and
/// the accumulators merge by addition, the result is identical to [`run`].
pub fn run_parallel(config: &MonteCarloConfig, threads: Option<usize>) -> MonteCarloResult {
    let n = config.params.n_chunks as usize;
    let m = config.params.cluster_size as usize;
    let trials = config.trials as usize;
    let nt = threads
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        })
        .clamp(1, trials.max(1));
    if nt <= 1 {
        return run(config);
    }

    let mut partials: Vec<Accum> = Vec::with_capacity(nt);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(nt);
        for w in 0..nt {
            // Contiguous block [lo, hi) for worker w; blocks differ by at
            // most one trial.
            let lo = trials * w / nt;
            let hi = trials * (w + 1) / nt;
            handles.push(scope.spawn(move || {
                let mut acc = Accum::new(n);
                let mut scratch = Scratch::new(m);
                for t in lo..hi {
                    let mut rng = StdRng::seed_from_u64(trial_seed(config.seed, t as u32));
                    run_trial(&config.params, &mut rng, &mut scratch, &mut acc);
                }
                acc
            }));
        }
        for h in handles {
            partials.push(h.join().expect("monte-carlo worker panicked"));
        }
    });
    let mut acc = Accum::new(n);
    for p in &partials {
        acc.merge(p);
    }
    finish(config, acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::imbalance::ImbalanceModel;
    use crate::locality::LocalityModel;

    fn config(m: u32, trials: u32) -> MonteCarloConfig {
        MonteCarloConfig {
            params: ClusterParams::new(512, 3, m),
            trials,
            seed: 0x0A55 ^ 7,
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run(&config(64, 5));
        let b = run(&config(64, 5));
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_matches_sequential_exactly() {
        // Trials are independent RNG streams, so the thread partition must
        // not affect the histograms at all.
        let cfg = config(64, 23);
        let seq = run(&cfg);
        for threads in [1, 2, 3, 8, 64] {
            let par = run_parallel(&cfg, Some(threads));
            assert_eq!(seq, par, "threads={threads}");
        }
        // Auto-sized thread pool agrees too.
        assert_eq!(seq, run_parallel(&cfg, None));
    }

    #[test]
    fn parallel_handles_degenerate_sizes() {
        // Zero trials and more threads than trials must not panic.
        let empty = run_parallel(&config(16, 0), Some(4));
        assert_eq!(empty.observations_local, 0);
        assert_eq!(empty.local_fraction, 0.0);
        let one = run_parallel(&config(16, 1), Some(8));
        assert_eq!(one, run(&config(16, 1)));
    }

    #[test]
    fn local_fraction_is_about_r_over_m() {
        let res = run(&config(128, 40));
        let expected = 3.0 / 128.0;
        assert!(
            (res.local_fraction - expected).abs() < 0.01,
            "got {} want ~{expected}",
            res.local_fraction
        );
    }

    #[test]
    fn total_local_reads_match_formula_as_written() {
        // Mean total local reads should be n * r/m = 512 * 3/128 = 12.
        let res = run(&config(128, 60));
        let mean = res.mean_total_local();
        assert!((mean - 12.0).abs() < 1.0, "mean={mean}");
    }

    #[test]
    fn histograms_conserve_observations() {
        let cfg = config(64, 10);
        let res = run(&cfg);
        let total_local: u64 = res.local_reads.iter().sum();
        let total_served: u64 = res.served.iter().sum();
        assert_eq!(total_local, res.observations_local);
        assert_eq!(total_served, res.observations_served);
        // Served chunks across nodes must equal chunks per trial.
        let served_chunks: u64 = res
            .served
            .iter()
            .enumerate()
            .map(|(k, &c)| k as u64 * c)
            .sum();
        assert_eq!(served_chunks, 512 * 10);
    }

    #[test]
    fn empirical_per_process_local_cdf_tracks_theory() {
        // Per-process local reads follow ~Bin(n, r/m^2); the theory samples
        // replica nodes with replacement while the simulation places on
        // distinct nodes, so allow a small tolerance.
        let cfg = config(128, 60);
        let res = run(&cfg);
        let dist = LocalityModel::new(cfg.params).per_process_distribution();
        for k in [0usize, 1, 2, 3] {
            let emp = res.local_cdf(k);
            let theory = dist.cdf(k as u64);
            assert!(
                (emp - theory).abs() < 0.04,
                "k={k}: empirical={emp:.4} theory={theory:.4}"
            );
        }
    }

    #[test]
    fn empirical_total_local_cdf_tracks_formula_as_written() {
        let cfg = config(128, 80);
        let res = run(&cfg);
        let dist = LocalityModel::new(cfg.params).distribution();
        for k in [6usize, 10, 12, 16] {
            let emp = res.total_local_cdf(k);
            let theory = dist.cdf(k as u64);
            assert!(
                (emp - theory).abs() < 0.12,
                "k={k}: empirical={emp:.4} theory={theory:.4}"
            );
        }
    }

    #[test]
    fn empirical_served_cdf_tracks_theory() {
        let cfg = config(128, 60);
        let res = run(&cfg);
        let model = ImbalanceModel::new(cfg.params);
        for k in [0usize, 1, 4, 8, 12] {
            let emp = res.served_cdf(k);
            let theory = model.served_cdf(k as u64);
            assert!(
                (emp - theory).abs() < 0.04,
                "k={k}: empirical={emp:.4} theory={theory:.4}"
            );
        }
    }

    #[test]
    fn wilson_interval_properties() {
        // Contains the point estimate, stays in [0,1], and narrows with n.
        let (lo, hi) = wilson_interval(30, 100);
        assert!(lo < 0.3 && 0.3 < hi);
        assert!((0.0..=1.0).contains(&lo) && (0.0..=1.0).contains(&hi));
        let (lo2, hi2) = wilson_interval(300, 1000);
        assert!(hi2 - lo2 < hi - lo, "more trials must narrow the interval");
        // Extremes behave.
        let (lo0, _) = wilson_interval(0, 50);
        assert_eq!(lo0, 0.0);
        let (_, hi1) = wilson_interval(50, 50);
        assert_eq!(hi1, 1.0);
        assert_eq!(wilson_interval(0, 0), (0.0, 1.0));
    }

    #[test]
    fn ci_brackets_the_theory() {
        let cfg = config(128, 60);
        let res = run(&cfg);
        let theory = crate::imbalance::ImbalanceModel::new(cfg.params).served_cdf(4);
        let (lo, hi) = res.served_cdf_ci(4);
        assert!(
            lo <= theory && theory <= hi,
            "theory {theory} outside CI [{lo}, {hi}]"
        );
    }

    #[test]
    fn imbalance_appears_in_simulation() {
        // Within a single trial at m=128, some nodes serve many chunks and
        // some serve none — the paper's Figure 1 in miniature.
        let res = run(&config(128, 30));
        assert!(res.served[0] > 0, "some nodes should serve nothing");
        let heavy: u64 = res.served.iter().skip(9).sum();
        assert!(heavy > 0, "some nodes should serve >8 chunks");
    }
}
