//! Randomized property tests for the probabilistic analysis.
//!
//! Invariants on randomized parameters (seeded `StdRng` loops, so every run
//! exercises the same cases deterministically):
//! * binomial pmf sums to 1, cdf is monotone, cdf + sf = 1;
//! * `ln_choose` satisfies Pascal's rule in log space;
//! * the locality CDF is monotone in `k` and decreasing in cluster size;
//! * the served-chunk mixture equals its closed-form marginal;
//! * the expected-max order statistic is bounded by mean and total.

use opass_analysis::{ln_choose, Binomial, ClusterParams, ImbalanceModel, LocalityModel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
fn pmf_sums_to_one() {
    let mut rng = StdRng::seed_from_u64(0xA1);
    for _ in 0..64 {
        let n = rng.gen_range(1u64..400);
        let p = rng.gen_range(0.0f64..1.0);
        let b = Binomial::new(n, p);
        let total: f64 = (0..=n).map(|k| b.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-8, "n={n} p={p} total={total}");
    }
}

#[test]
fn cdf_monotone_and_complements_sf() {
    let mut rng = StdRng::seed_from_u64(0xA2);
    for _ in 0..64 {
        let n = rng.gen_range(1u64..300);
        let p = rng.gen_range(0.0f64..1.0);
        let k = rng.gen_range(0u64..300).min(n);
        let b = Binomial::new(n, p);
        if k > 0 {
            assert!(b.cdf(k) + 1e-12 >= b.cdf(k - 1), "n={n} p={p} k={k}");
        }
        assert!((b.cdf(k) + b.sf(k) - 1.0).abs() < 1e-8, "n={n} p={p} k={k}");
    }
}

#[test]
fn pascals_rule_in_log_space() {
    let mut rng = StdRng::seed_from_u64(0xA3);
    let mut checked = 0;
    while checked < 64 {
        let n = rng.gen_range(2u64..500);
        let k = rng.gen_range(1u64..500);
        if k >= n {
            continue;
        }
        checked += 1;
        // C(n,k) = C(n-1,k-1) + C(n-1,k), compared via log-sum-exp.
        let lhs = ln_choose(n, k);
        let a = ln_choose(n - 1, k - 1);
        let b = ln_choose(n - 1, k);
        let m = a.max(b);
        let rhs = m + ((a - m).exp() + (b - m).exp()).ln();
        assert!((lhs - rhs).abs() < 1e-8, "n={n} k={k} lhs={lhs} rhs={rhs}");
    }
}

#[test]
fn locality_decreases_with_cluster_size() {
    let mut rng = StdRng::seed_from_u64(0xA4);
    let mut checked = 0;
    while checked < 64 {
        let n_chunks = rng.gen_range(16u64..600);
        let r = rng.gen_range(1u32..4);
        let m1 = rng.gen_range(8u32..64);
        let factor = rng.gen_range(2u32..6);
        let m2 = m1 * factor;
        if r > m1 {
            continue;
        }
        checked += 1;
        let small = LocalityModel::new(ClusterParams::new(n_chunks, r, m1));
        let large = LocalityModel::new(ClusterParams::new(n_chunks, r, m2));
        assert!(
            large.expected_local() < small.expected_local(),
            "n={n_chunks} r={r} m1={m1} m2={m2}"
        );
        // CDF at any k is at least as high on the large cluster (fewer
        // local reads stochastically).
        for k in [0u64, 1, 4, 16] {
            assert!(large.cdf(k) + 1e-12 >= small.cdf(k), "k={k}");
        }
    }
}

#[test]
fn served_mixture_equals_marginal() {
    let mut rng = StdRng::seed_from_u64(0xA5);
    let mut checked = 0;
    while checked < 64 {
        let n_chunks = rng.gen_range(16u64..400);
        let r = rng.gen_range(1u32..4);
        let m = rng.gen_range(8u32..128);
        let k = rng.gen_range(0u64..30);
        if r > m {
            continue;
        }
        checked += 1;
        let model = ImbalanceModel::new(ClusterParams::new(n_chunks, r, m));
        let marginal = Binomial::new(n_chunks, 1.0 / f64::from(m));
        assert!(
            (model.served_cdf(k) - marginal.cdf(k)).abs() < 1e-7,
            "k={}: mixture={} marginal={}",
            k,
            model.served_cdf(k),
            marginal.cdf(k)
        );
    }
}

#[test]
fn expected_max_is_between_mean_and_total() {
    let mut rng = StdRng::seed_from_u64(0xA6);
    for _ in 0..64 {
        let n_chunks = rng.gen_range(16u64..300);
        let m = rng.gen_range(4u32..64);
        let model = ImbalanceModel::new(ClusterParams::new(n_chunks, 3.min(m), m));
        let max = model.expected_max_served();
        assert!(max + 1e-9 >= model.expected_served(), "max {max} < mean");
        assert!(max <= n_chunks as f64 + 1e-9, "max {max} > total");
    }
}
