//! Property-based tests for the probabilistic analysis.
//!
//! Invariants on randomized parameters:
//! * binomial pmf sums to 1, cdf is monotone, cdf + sf = 1;
//! * `ln_choose` satisfies Pascal's rule in log space;
//! * the locality CDF is monotone in `k` and decreasing in cluster size;
//! * the served-chunk mixture equals its closed-form marginal;
//! * the expected-max order statistic is bounded by mean and total.

use opass_analysis::{ln_choose, Binomial, ClusterParams, ImbalanceModel, LocalityModel};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pmf_sums_to_one(n in 1u64..400, p in 0.0f64..1.0) {
        let b = Binomial::new(n, p);
        let total: f64 = (0..=n).map(|k| b.pmf(k)).sum();
        prop_assert!((total - 1.0).abs() < 1e-8, "total={}", total);
    }

    #[test]
    fn cdf_monotone_and_complements_sf(n in 1u64..300, p in 0.0f64..1.0, k in 0u64..300) {
        let b = Binomial::new(n, p);
        let k = k.min(n);
        if k > 0 {
            prop_assert!(b.cdf(k) + 1e-12 >= b.cdf(k - 1));
        }
        prop_assert!((b.cdf(k) + b.sf(k) - 1.0).abs() < 1e-8);
    }

    #[test]
    fn pascals_rule_in_log_space(n in 2u64..500, k in 1u64..500) {
        prop_assume!(k < n);
        // C(n,k) = C(n-1,k-1) + C(n-1,k): compare in linear space via exp
        // of the log forms (values stay finite for n<=500 only in log
        // space, so compare ratios).
        let lhs = ln_choose(n, k);
        let a = ln_choose(n - 1, k - 1);
        let b = ln_choose(n - 1, k);
        // log-sum-exp of the right side.
        let m = a.max(b);
        let rhs = m + ((a - m).exp() + (b - m).exp()).ln();
        prop_assert!((lhs - rhs).abs() < 1e-8, "lhs={} rhs={}", lhs, rhs);
    }

    #[test]
    fn locality_decreases_with_cluster_size(
        n_chunks in 16u64..600,
        r in 1u32..4,
        m1 in 8u32..64,
        factor in 2u32..6,
    ) {
        let m2 = m1 * factor;
        prop_assume!(r <= m1);
        let small = LocalityModel::new(ClusterParams::new(n_chunks, r, m1));
        let large = LocalityModel::new(ClusterParams::new(n_chunks, r, m2));
        prop_assert!(large.expected_local() < small.expected_local());
        // CDF at any k is at least as high on the large cluster (fewer
        // local reads stochastically).
        for k in [0u64, 1, 4, 16] {
            prop_assert!(large.cdf(k) + 1e-12 >= small.cdf(k), "k={}", k);
        }
    }

    #[test]
    fn served_mixture_equals_marginal(
        n_chunks in 16u64..400,
        r in 1u32..4,
        m in 8u32..128,
        k in 0u64..30,
    ) {
        prop_assume!(r <= m);
        let model = ImbalanceModel::new(ClusterParams::new(n_chunks, r, m));
        let marginal = Binomial::new(n_chunks, 1.0 / f64::from(m));
        prop_assert!(
            (model.served_cdf(k) - marginal.cdf(k)).abs() < 1e-7,
            "k={}: mixture={} marginal={}",
            k, model.served_cdf(k), marginal.cdf(k)
        );
    }

    #[test]
    fn expected_max_is_between_mean_and_total(
        n_chunks in 16u64..300,
        m in 4u32..64,
    ) {
        let model = ImbalanceModel::new(ClusterParams::new(n_chunks, 3.min(m), m));
        let max = model.expected_max_served();
        prop_assert!(max + 1e-9 >= model.expected_served(), "max {} < mean", max);
        prop_assert!(max <= n_chunks as f64 + 1e-9, "max {} > total", max);
    }
}
