//! Randomized property tests for the file-system substrate.
//!
//! Invariants on randomized configurations and operation sequences (seeded
//! `StdRng` loops, deterministic across runs):
//! * every placement policy returns distinct, sorted, alive nodes of the
//!   requested count;
//! * namenode invariants (replica counts, index consistency) survive
//!   arbitrary sequences of dataset creation, node addition, and
//!   decommission;
//! * replica selection always returns a holder;
//! * layout snapshots agree with the namenode at capture time.

use opass_dfs::{
    ChunkId, DatasetSpec, DfsConfig, LayoutSnapshot, Namenode, NodeId, Placement, RackMap,
    ReplicaChoice,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn node_ids(n: usize) -> Vec<NodeId> {
    (0..n as u32).map(NodeId).collect()
}

#[test]
fn placements_return_distinct_alive_nodes() {
    let mut rng = StdRng::seed_from_u64(0xD1);
    let mut checked = 0;
    while checked < 48 {
        let n_nodes = rng.gen_range(3usize..20);
        let replication = rng.gen_range(1usize..4);
        let seq = rng.gen_range(0usize..100);
        let seed = rng.gen_range(0u64..500);
        let policy_pick = rng.gen_range(0usize..4);
        if replication > n_nodes {
            continue;
        }
        checked += 1;
        let alive = node_ids(n_nodes);
        let racks = RackMap::uniform(n_nodes, 4.min(n_nodes));
        let policy = match policy_pick {
            0 => Placement::Random,
            1 => Placement::WriterLocal {
                writer: NodeId((seed % n_nodes as u64) as u32),
            },
            2 => Placement::RoundRobin,
            _ => Placement::RackAware { racks },
        };
        let mut place_rng = StdRng::seed_from_u64(seed);
        let locs = policy.place(seq, replication, &alive, &mut place_rng);
        assert_eq!(locs.len(), replication);
        for w in locs.windows(2) {
            assert!(w[0] < w[1], "locations must be sorted and distinct");
        }
        for n in &locs {
            assert!(alive.contains(n));
        }
    }
}

#[test]
fn namenode_invariants_survive_churn() {
    let mut meta_rng = StdRng::seed_from_u64(0xD2);
    for _ in 0..48 {
        let n_nodes = meta_rng.gen_range(4usize..12);
        let n_ops = meta_rng.gen_range(1usize..12);
        let mut nn = Namenode::new(n_nodes, DfsConfig::default());
        let mut rng = StdRng::seed_from_u64(7);
        let mut created = 0usize;
        for _ in 0..n_ops {
            let op = meta_rng.gen_range(0u8..3);
            let arg = meta_rng.gen_range(0u64..1000);
            match op {
                0 => {
                    // Create a small dataset.
                    let spec = DatasetSpec::uniform(
                        format!("d{created}"),
                        (arg % 8 + 1) as usize,
                        1 + arg % 64,
                    );
                    nn.create_dataset(&spec, &Placement::Random, &mut rng);
                    created += 1;
                }
                1 => {
                    nn.add_node();
                }
                _ => {
                    // Try to decommission an arbitrary node; failures
                    // (already down, too few alive) are fine — invariants
                    // must hold either way.
                    let victim = NodeId((arg % nn.node_count() as u64) as u32);
                    let _ = nn.decommission(victim, &mut rng);
                }
            }
            assert!(nn.check_invariants().is_ok(), "{:?}", nn.check_invariants());
        }
    }
}

#[test]
fn replica_choice_always_returns_a_holder() {
    let mut meta_rng = StdRng::seed_from_u64(0xD3);
    let mut checked = 0;
    while checked < 48 {
        let n_nodes = meta_rng.gen_range(3usize..16);
        let reader = meta_rng.gen_range(0usize..16);
        let seed = meta_rng.gen_range(0u64..300);
        let policy_pick = meta_rng.gen_range(0usize..3);
        if reader >= n_nodes {
            continue;
        }
        checked += 1;
        let mut nn = Namenode::new(n_nodes.max(3), DfsConfig::default());
        let mut rng = StdRng::seed_from_u64(seed);
        let ds = nn.create_dataset(
            &DatasetSpec::uniform("d", 6, 10),
            &Placement::Random,
            &mut rng,
        );
        let racks = RackMap::uniform(nn.node_count(), 4.min(nn.node_count()));
        let policy = match policy_pick {
            0 => ReplicaChoice::PreferLocalRandom,
            1 => ReplicaChoice::RandomReplica,
            _ => ReplicaChoice::PreferLocalThenRack(racks),
        };
        for &chunk in &nn.dataset(ds).unwrap().chunks {
            let locations = nn.locate(chunk).unwrap();
            let picked = policy.select(chunk, NodeId(reader as u32), locations, &mut rng);
            assert!(locations.contains(&picked));
        }
    }
}

#[test]
fn snapshot_matches_namenode() {
    let mut meta_rng = StdRng::seed_from_u64(0xD4);
    for _ in 0..48 {
        let n_chunks = meta_rng.gen_range(1usize..30);
        let seed = meta_rng.gen_range(0u64..300);
        let mut nn = Namenode::new(8, DfsConfig::default());
        let mut rng = StdRng::seed_from_u64(seed);
        let ds = nn.create_dataset(
            &DatasetSpec::uniform("d", n_chunks, 64),
            &Placement::Random,
            &mut rng,
        );
        let chunks = nn.dataset(ds).unwrap().chunks.clone();
        let snap = LayoutSnapshot::capture(&nn, &chunks);
        assert_eq!(snap.len(), n_chunks);
        for (i, entry) in snap.entries().iter().enumerate() {
            assert_eq!(entry.chunk, chunks[i]);
            assert_eq!(&entry.locations[..], nn.locate(chunks[i]).unwrap());
        }
        assert_eq!(snap.total_bytes(), n_chunks as u64 * 64);
    }
}

#[test]
fn chunk_payload_prefixes_are_consistent() {
    use opass_dfs::datanode::chunk_payload;
    let mut rng = StdRng::seed_from_u64(0xD5);
    for _ in 0..48 {
        let id = rng.gen_range(0u64..10_000);
        let short = rng.gen_range(1usize..128);
        let long = rng.gen_range(128usize..1024);
        let a = chunk_payload(ChunkId(id), short);
        let b = chunk_payload(ChunkId(id), long);
        assert_eq!(&b[..short], &a[..]);
    }
}
