//! Property-based tests for the file-system substrate.
//!
//! Invariants on randomized configurations and operation sequences:
//! * every placement policy returns distinct, sorted, alive nodes of the
//!   requested count;
//! * namenode invariants (replica counts, index consistency) survive
//!   arbitrary sequences of dataset creation, node addition, and
//!   decommission;
//! * replica selection always returns a holder;
//! * layout snapshots agree with the namenode at capture time.

use opass_dfs::{
    ChunkId, DatasetSpec, DfsConfig, LayoutSnapshot, Namenode, NodeId, Placement, RackMap,
    ReplicaChoice,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn node_ids(n: usize) -> Vec<NodeId> {
    (0..n as u32).map(NodeId).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn placements_return_distinct_alive_nodes(
        n_nodes in 3usize..20,
        replication in 1usize..4,
        seq in 0usize..100,
        seed in 0u64..500,
        policy_pick in 0usize..4,
    ) {
        prop_assume!(replication <= n_nodes);
        let alive = node_ids(n_nodes);
        let racks = RackMap::uniform(n_nodes, 4.min(n_nodes));
        let policy = match policy_pick {
            0 => Placement::Random,
            1 => Placement::WriterLocal { writer: NodeId((seed % n_nodes as u64) as u32) },
            2 => Placement::RoundRobin,
            _ => Placement::RackAware { racks },
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let locs = policy.place(seq, replication, &alive, &mut rng);
        prop_assert_eq!(locs.len(), replication);
        for w in locs.windows(2) {
            prop_assert!(w[0] < w[1], "locations must be sorted and distinct");
        }
        for n in &locs {
            prop_assert!(alive.contains(n));
        }
    }

    #[test]
    fn namenode_invariants_survive_churn(
        n_nodes in 4usize..12,
        ops in proptest::collection::vec((0u8..3, 0u64..1000), 1..12),
    ) {
        let mut nn = Namenode::new(n_nodes, DfsConfig::default());
        let mut rng = StdRng::seed_from_u64(7);
        let mut created = 0usize;
        for (op, arg) in ops {
            match op {
                0 => {
                    // Create a small dataset.
                    let spec = DatasetSpec::uniform(
                        format!("d{created}"),
                        (arg % 8 + 1) as usize,
                        1 + arg % 64,
                    );
                    nn.create_dataset(&spec, &Placement::Random, &mut rng);
                    created += 1;
                }
                1 => {
                    nn.add_node();
                }
                _ => {
                    // Try to decommission an arbitrary node; failures
                    // (already down, too few alive) are fine — invariants
                    // must hold either way.
                    let victim = NodeId((arg % nn.node_count() as u64) as u32);
                    let _ = nn.decommission(victim, &mut rng);
                }
            }
            prop_assert!(nn.check_invariants().is_ok(), "{:?}", nn.check_invariants());
        }
    }

    #[test]
    fn replica_choice_always_returns_a_holder(
        n_nodes in 3usize..16,
        reader in 0usize..16,
        seed in 0u64..300,
        policy_pick in 0usize..3,
    ) {
        prop_assume!(reader < n_nodes);
        let mut nn = Namenode::new(n_nodes.max(3), DfsConfig::default());
        let mut rng = StdRng::seed_from_u64(seed);
        let ds = nn.create_dataset(
            &DatasetSpec::uniform("d", 6, 10),
            &Placement::Random,
            &mut rng,
        );
        let racks = RackMap::uniform(nn.node_count(), 4.min(nn.node_count()));
        let policy = match policy_pick {
            0 => ReplicaChoice::PreferLocalRandom,
            1 => ReplicaChoice::RandomReplica,
            _ => ReplicaChoice::PreferLocalThenRack(racks),
        };
        for &chunk in &nn.dataset(ds).unwrap().chunks {
            let locations = nn.locate(chunk).unwrap();
            let picked = policy.select(chunk, NodeId(reader as u32), locations, &mut rng);
            prop_assert!(locations.contains(&picked));
        }
    }

    #[test]
    fn snapshot_matches_namenode(
        n_chunks in 1usize..30,
        seed in 0u64..300,
    ) {
        let mut nn = Namenode::new(8, DfsConfig::default());
        let mut rng = StdRng::seed_from_u64(seed);
        let ds = nn.create_dataset(
            &DatasetSpec::uniform("d", n_chunks, 64),
            &Placement::Random,
            &mut rng,
        );
        let chunks = nn.dataset(ds).unwrap().chunks.clone();
        let snap = LayoutSnapshot::capture(&nn, &chunks);
        prop_assert_eq!(snap.len(), n_chunks);
        for (i, entry) in snap.entries().iter().enumerate() {
            prop_assert_eq!(entry.chunk, chunks[i]);
            prop_assert_eq!(&entry.locations[..], nn.locate(chunks[i]).unwrap());
        }
        prop_assert_eq!(snap.total_bytes(), n_chunks as u64 * 64);
    }

    #[test]
    fn chunk_payload_prefixes_are_consistent(
        id in 0u64..10_000,
        short in 1usize..128,
        long in 128usize..1024,
    ) {
        use opass_dfs::datanode::chunk_payload;
        let a = chunk_payload(ChunkId(id), short);
        let b = chunk_payload(ChunkId(id), long);
        prop_assert_eq!(&b[..short], &a[..]);
    }
}
