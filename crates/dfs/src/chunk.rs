//! Chunk and dataset metadata.

use crate::ids::{ChunkId, DatasetId, NodeId};

/// The HDFS default chunk size used throughout the paper: 64 MB.
pub const DEFAULT_CHUNK_SIZE: u64 = 64 * 1024 * 1024;

/// Metadata of one chunk file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkMeta {
    /// Global chunk id.
    pub id: ChunkId,
    /// Owning dataset.
    pub dataset: DatasetId,
    /// Position within the dataset (0-based).
    pub index_in_dataset: usize,
    /// Size in bytes (≤ the configured chunk size).
    pub size: u64,
    /// Nodes holding a replica, sorted, no duplicates.
    pub locations: Vec<NodeId>,
}

impl ChunkMeta {
    /// True when `node` holds a replica of this chunk.
    pub fn is_on(&self, node: NodeId) -> bool {
        self.locations.binary_search(&node).is_ok()
    }
}

/// Specification of a dataset to create.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatasetSpec {
    /// Human-readable name ("macromolecular-0042").
    pub name: String,
    /// Size of every chunk, in order.
    pub chunk_sizes: Vec<u64>,
}

impl DatasetSpec {
    /// A dataset of `n_chunks` equal chunks.
    pub fn uniform(name: impl Into<String>, n_chunks: usize, chunk_size: u64) -> Self {
        assert!(chunk_size > 0, "chunk size must be positive");
        DatasetSpec {
            name: name.into(),
            chunk_sizes: vec![chunk_size; n_chunks],
        }
    }

    /// A dataset totalling `total_bytes`, split into `DEFAULT_CHUNK_SIZE`
    /// chunks with a smaller trailing chunk when not divisible.
    pub fn from_total(name: impl Into<String>, total_bytes: u64) -> Self {
        assert!(total_bytes > 0, "dataset must be non-empty");
        let full = total_bytes / DEFAULT_CHUNK_SIZE;
        let rem = total_bytes % DEFAULT_CHUNK_SIZE;
        let mut chunk_sizes = vec![DEFAULT_CHUNK_SIZE; full as usize];
        if rem > 0 {
            chunk_sizes.push(rem);
        }
        DatasetSpec {
            name: name.into(),
            chunk_sizes,
        }
    }

    /// Total bytes across all chunks.
    pub fn total_bytes(&self) -> u64 {
        self.chunk_sizes.iter().sum()
    }

    /// Number of chunks.
    pub fn n_chunks(&self) -> usize {
        self.chunk_sizes.len()
    }
}

/// Metadata of a created dataset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatasetMeta {
    /// Dataset id.
    pub id: DatasetId,
    /// Name from the spec.
    pub name: String,
    /// The dataset's chunks, in order.
    pub chunks: Vec<ChunkId>,
    /// Total bytes.
    pub total_bytes: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_spec() {
        let s = DatasetSpec::uniform("d", 10, 64);
        assert_eq!(s.n_chunks(), 10);
        assert_eq!(s.total_bytes(), 640);
    }

    #[test]
    fn from_total_splits_with_remainder() {
        let s = DatasetSpec::from_total("d", DEFAULT_CHUNK_SIZE * 2 + 5);
        assert_eq!(s.n_chunks(), 3);
        assert_eq!(s.chunk_sizes[2], 5);
        assert_eq!(s.total_bytes(), DEFAULT_CHUNK_SIZE * 2 + 5);
    }

    #[test]
    fn from_total_exact_multiple() {
        let s = DatasetSpec::from_total("d", DEFAULT_CHUNK_SIZE * 4);
        assert_eq!(s.n_chunks(), 4);
        assert!(s.chunk_sizes.iter().all(|&c| c == DEFAULT_CHUNK_SIZE));
    }

    #[test]
    fn chunk_is_on() {
        let c = ChunkMeta {
            id: ChunkId(0),
            dataset: DatasetId(0),
            index_in_dataset: 0,
            size: 64,
            locations: vec![NodeId(1), NodeId(5), NodeId(9)],
        };
        assert!(c.is_on(NodeId(5)));
        assert!(!c.is_on(NodeId(2)));
    }
}
