//! Error types for file-system operations.

use crate::ids::{ChunkId, DatasetId, NodeId};
use std::fmt;

/// Errors returned by [`crate::Namenode`] and the reader layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DfsError {
    /// The chunk id is not registered.
    UnknownChunk(ChunkId),
    /// The dataset id is not registered.
    UnknownDataset(DatasetId),
    /// The node id is not registered.
    UnknownNode(NodeId),
    /// The node is decommissioned.
    NodeDown(NodeId),
    /// An operation would leave fewer alive nodes than replicas required.
    InsufficientNodes {
        /// Replicas required.
        needed: usize,
        /// Alive nodes that would remain.
        available: usize,
    },
}

impl fmt::Display for DfsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DfsError::UnknownChunk(c) => write!(f, "unknown chunk {c}"),
            DfsError::UnknownDataset(d) => write!(f, "unknown dataset {d}"),
            DfsError::UnknownNode(n) => write!(f, "unknown node {n}"),
            DfsError::NodeDown(n) => write!(f, "{n} is decommissioned"),
            DfsError::InsufficientNodes { needed, available } => write!(
                f,
                "operation needs {needed} alive nodes but only {available} would remain"
            ),
        }
    }
}

impl std::error::Error for DfsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            DfsError::UnknownChunk(ChunkId(3)).to_string(),
            "unknown chunk chunk-3"
        );
        assert_eq!(
            DfsError::NodeDown(NodeId(1)).to_string(),
            "node-1 is decommissioned"
        );
        let e = DfsError::InsufficientNodes {
            needed: 3,
            available: 2,
        };
        assert!(e.to_string().contains("needs 3"));
    }

    #[test]
    fn implements_error_trait() {
        fn takes_error(_: &dyn std::error::Error) {}
        takes_error(&DfsError::UnknownNode(NodeId(0)));
    }
}
