//! Error types for file-system operations.

use crate::ids::{ChunkId, DatasetId, NodeId};
use std::fmt;

/// Errors returned by [`crate::Namenode`] and the reader layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DfsError {
    /// The chunk id is not registered.
    UnknownChunk(ChunkId),
    /// The dataset id is not registered.
    UnknownDataset(DatasetId),
    /// The node id is not registered.
    UnknownNode(NodeId),
    /// The node is decommissioned.
    NodeDown(NodeId),
    /// An operation would leave fewer alive nodes than replicas required.
    InsufficientNodes {
        /// Replicas required.
        needed: usize,
        /// Alive nodes that would remain.
        available: usize,
    },
    /// A migration source does not hold a replica of the chunk.
    ReplicaMissing {
        /// The chunk being migrated.
        chunk: ChunkId,
        /// The node expected to hold a copy.
        node: NodeId,
    },
    /// A migration target already holds a replica of the chunk.
    ReplicaExists {
        /// The chunk being migrated.
        chunk: ChunkId,
        /// The node already holding a copy.
        node: NodeId,
    },
    /// A delta handed to [`crate::Namenode::apply_migrations`] is not
    /// migration-shaped (it would change replica counts, the file set,
    /// or node membership).
    NotMigrationShaped(
        /// Which shape constraint the delta violates.
        &'static str,
    ),
}

impl fmt::Display for DfsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DfsError::UnknownChunk(c) => write!(f, "unknown chunk {c}"),
            DfsError::UnknownDataset(d) => write!(f, "unknown dataset {d}"),
            DfsError::UnknownNode(n) => write!(f, "unknown node {n}"),
            DfsError::NodeDown(n) => write!(f, "{n} is decommissioned"),
            DfsError::InsufficientNodes { needed, available } => write!(
                f,
                "operation needs {needed} alive nodes but only {available} would remain"
            ),
            DfsError::ReplicaMissing { chunk, node } => {
                write!(f, "{node} holds no replica of {chunk}")
            }
            DfsError::ReplicaExists { chunk, node } => {
                write!(f, "{node} already holds a replica of {chunk}")
            }
            DfsError::NotMigrationShaped(why) => {
                write!(f, "delta is not migration-shaped: {why}")
            }
        }
    }
}

impl std::error::Error for DfsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            DfsError::UnknownChunk(ChunkId(3)).to_string(),
            "unknown chunk chunk-3"
        );
        assert_eq!(
            DfsError::NodeDown(NodeId(1)).to_string(),
            "node-1 is decommissioned"
        );
        let e = DfsError::InsufficientNodes {
            needed: 3,
            available: 2,
        };
        assert!(e.to_string().contains("needs 3"));
    }

    #[test]
    fn implements_error_trait() {
        fn takes_error(_: &dyn std::error::Error) {}
        takes_error(&DfsError::UnknownNode(NodeId(0)));
    }
}
