//! Datanode payload layer: deterministic synthetic chunk contents.
//!
//! The simulation never moves real bytes, but end-to-end examples and tests
//! want to verify that a read plan fetches the *right data*. Each chunk's
//! content is a deterministic byte pattern derived from its id, so any
//! reader can validate what it "received" from any replica without the
//! replicas coordinating.

use crate::ids::ChunkId;

/// Generates the first `len` bytes of a chunk's canonical content.
///
/// The stream is a 64-bit xorshift sequence seeded by the chunk id, packed
/// little-endian — cheap, deterministic, and with no repeating prefix
/// between different chunks.
pub fn chunk_payload(chunk: ChunkId, len: usize) -> Vec<u8> {
    let mut buf = Vec::with_capacity(len.next_multiple_of(8));
    let mut state = chunk.0 ^ 0x9E37_79B9_7F4A_7C15;
    // Avoid the all-zero fixed point for ChunkId whose xor happens to be 0.
    if state == 0 {
        state = 0x2545_F491_4F6C_DD1D;
    }
    while buf.len() < len {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        buf.extend_from_slice(&state.to_le_bytes());
    }
    buf.truncate(len);
    buf
}

/// Fletcher-style checksum of a chunk's first `len` bytes, as a datanode
/// would report for read verification.
pub fn chunk_checksum(chunk: ChunkId, len: usize) -> u64 {
    checksum_of(&chunk_payload(chunk, len))
}

/// Checksum of an arbitrary payload (what a reader computes on receipt).
pub fn checksum_of(data: &[u8]) -> u64 {
    let mut a: u64 = 1;
    let mut b: u64 = 0;
    for &byte in data {
        a = (a + byte as u64) % 65_521;
        b = (b + a) % 65_521;
    }
    (b << 32) | a
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_is_deterministic() {
        let a = chunk_payload(ChunkId(7), 1024);
        let b = chunk_payload(ChunkId(7), 1024);
        assert_eq!(a, b);
        assert_eq!(a.len(), 1024);
    }

    #[test]
    fn different_chunks_differ() {
        let a = chunk_payload(ChunkId(1), 256);
        let b = chunk_payload(ChunkId(2), 256);
        assert_ne!(a, b);
    }

    #[test]
    fn prefix_property() {
        // Reading a prefix yields the prefix of the full payload, as a real
        // range-read would.
        let full = chunk_payload(ChunkId(5), 1000);
        let prefix = chunk_payload(ChunkId(5), 100);
        assert_eq!(&full[..100], &prefix[..]);
    }

    #[test]
    fn odd_lengths_are_exact() {
        for len in [0usize, 1, 7, 9, 63, 65] {
            assert_eq!(chunk_payload(ChunkId(3), len).len(), len);
        }
    }

    #[test]
    fn checksums_verify_round_trip() {
        let payload = chunk_payload(ChunkId(11), 4096);
        assert_eq!(checksum_of(&payload), chunk_checksum(ChunkId(11), 4096));
        // Corruption is detected.
        let mut corrupted = payload.to_vec();
        corrupted[100] ^= 0xFF;
        assert_ne!(checksum_of(&corrupted), chunk_checksum(ChunkId(11), 4096));
    }

    #[test]
    fn zero_seed_chunk_still_produces_data() {
        // ChunkId whose xor with the constant is zero must not emit zeros.
        let id = ChunkId(0x9E37_79B9_7F4A_7C15);
        let payload = chunk_payload(id, 64);
        assert!(payload.iter().any(|&b| b != 0));
    }
}
