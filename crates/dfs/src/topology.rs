//! Rack membership of cluster nodes.
//!
//! HDFS placement and replica selection are rack-aware in real
//! deployments; the paper's testbed is single-switch, so the reproduction
//! defaults to no racks. The [`RackMap`] supports this repository's
//! rack-locality extension: rack-aware placement, rack-preferring replica
//! selection, and two-tier (node-then-rack) matching.

use crate::ids::NodeId;

/// Maps every node to a rack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RackMap {
    rack_of: Vec<u32>,
}

impl RackMap {
    /// Groups `n_nodes` into consecutive racks of `nodes_per_rack` (the
    /// last rack may be smaller).
    ///
    /// # Panics
    ///
    /// Panics if either argument is zero.
    pub fn uniform(n_nodes: usize, nodes_per_rack: usize) -> Self {
        assert!(n_nodes > 0, "need at least one node");
        assert!(nodes_per_rack > 0, "racks must hold at least one node");
        RackMap {
            rack_of: (0..n_nodes).map(|i| (i / nodes_per_rack) as u32).collect(),
        }
    }

    /// Builds from an explicit node→rack vector.
    pub fn explicit(rack_of: Vec<u32>) -> Self {
        assert!(!rack_of.is_empty(), "need at least one node");
        RackMap { rack_of }
    }

    /// Number of nodes covered.
    pub fn n_nodes(&self) -> usize {
        self.rack_of.len()
    }

    /// Number of racks.
    pub fn n_racks(&self) -> usize {
        self.rack_of
            .iter()
            .map(|&r| r as usize + 1)
            .max()
            .unwrap_or(0)
    }

    /// The rack of `node`.
    ///
    /// # Panics
    ///
    /// Panics if the node is outside the map.
    pub fn rack_of(&self, node: NodeId) -> u32 {
        self.rack_of[node.index()]
    }

    /// Whether two nodes share a rack.
    pub fn same_rack(&self, a: NodeId, b: NodeId) -> bool {
        self.rack_of(a) == self.rack_of(b)
    }

    /// All nodes in `rack`, ascending.
    pub fn nodes_in(&self, rack: u32) -> Vec<NodeId> {
        self.rack_of
            .iter()
            .enumerate()
            .filter_map(|(i, &r)| (r == rack).then_some(NodeId(i as u32)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_grouping() {
        let m = RackMap::uniform(10, 4);
        assert_eq!(m.n_nodes(), 10);
        assert_eq!(m.n_racks(), 3);
        assert_eq!(m.rack_of(NodeId(0)), 0);
        assert_eq!(m.rack_of(NodeId(4)), 1);
        assert_eq!(m.rack_of(NodeId(9)), 2);
        assert!(m.same_rack(NodeId(0), NodeId(3)));
        assert!(!m.same_rack(NodeId(3), NodeId(4)));
    }

    #[test]
    fn nodes_in_rack() {
        let m = RackMap::uniform(6, 2);
        assert_eq!(m.nodes_in(1), vec![NodeId(2), NodeId(3)]);
        assert!(m.nodes_in(9).is_empty());
    }

    #[test]
    fn explicit_map() {
        let m = RackMap::explicit(vec![1, 0, 1]);
        assert_eq!(m.n_racks(), 2);
        assert_eq!(m.rack_of(NodeId(0)), 1);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn rejects_empty() {
        let _ = RackMap::explicit(vec![]);
    }
}
