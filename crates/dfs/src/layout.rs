//! Layout snapshots — what Opass retrieves from the namenode.
//!
//! A [`LayoutSnapshot`] is an immutable copy of the chunk→locations map for
//! a set of chunks of interest, decoupling the optimizer from namenode
//! mutations (the real system would fetch this over RPC via
//! `getFileBlockLocations`). It also provides the inverse co-location view
//! used to build the bipartite matching graph.

use crate::delta::LayoutDelta;
use crate::ids::{ChunkId, NodeId};
use crate::namenode::Namenode;
use std::collections::BTreeMap;

/// One chunk's layout entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkLayout {
    /// The chunk.
    pub chunk: ChunkId,
    /// Size in bytes.
    pub size: u64,
    /// Replica holders, sorted.
    pub locations: Vec<NodeId>,
}

/// Immutable layout of a set of chunks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayoutSnapshot {
    entries: Vec<ChunkLayout>,
}

/// Chunk-id → entry-index map maintained *across* deltas.
///
/// [`LayoutSnapshot::apply_delta`] rebuilds this map from scratch on
/// every call — fine for one-shot use, O(n log n) per step for a
/// session replaying a long churn stream. A session keeps one
/// `ChunkIndex` alive instead and advances it together with the
/// snapshot via [`LayoutSnapshot::apply_delta_indexed`], which only
/// pays O(|delta| log n) for replica churn (a full rebuild happens
/// solely when chunks are removed, because removal compacts indices).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChunkIndex {
    map: BTreeMap<ChunkId, usize>,
}

impl ChunkIndex {
    /// Builds the index for `snapshot`. When the snapshot holds the same
    /// chunk id twice (scope quirks), the later entry wins — matching
    /// what the per-call map in [`LayoutSnapshot::apply_delta`] resolves.
    pub fn build(snapshot: &LayoutSnapshot) -> Self {
        ChunkIndex {
            map: snapshot
                .entries
                .iter()
                .enumerate()
                .map(|(i, e)| (e.chunk, i))
                .collect(),
        }
    }

    /// Entry index of `chunk` in the tracked snapshot, if present.
    pub fn get(&self, chunk: ChunkId) -> Option<usize> {
        self.map.get(&chunk).copied()
    }

    /// Number of indexed chunks.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

impl LayoutSnapshot {
    /// Captures the layout of `chunks` from the namenode, in the given
    /// order (the order defines the task indexing downstream).
    ///
    /// # Panics
    ///
    /// Panics on unknown chunk ids — snapshots are taken from ids the
    /// namenode itself returned.
    pub fn capture(namenode: &Namenode, chunks: &[ChunkId]) -> Self {
        let entries = chunks
            .iter()
            .map(|&c| {
                let meta = namenode.chunk(c).expect("chunk must exist");
                ChunkLayout {
                    chunk: c,
                    size: meta.size,
                    locations: meta.locations.clone(),
                }
            })
            .collect();
        LayoutSnapshot { entries }
    }

    /// Captures every chunk the namenode knows about, in id order.
    pub fn capture_all(namenode: &Namenode) -> Self {
        let ids: Vec<ChunkId> = namenode.chunks().iter().map(|c| c.id).collect();
        Self::capture(namenode, &ids)
    }

    /// Entries in capture order.
    pub fn entries(&self) -> &[ChunkLayout] {
        &self.entries
    }

    /// Number of chunks in the snapshot.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the snapshot is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Sizes in capture order (the task demand vector).
    pub fn sizes(&self) -> Vec<u64> {
        self.entries.iter().map(|e| e.size).collect()
    }

    /// Total bytes in the snapshot.
    pub fn total_bytes(&self) -> u64 {
        self.entries.iter().map(|e| e.size).sum()
    }

    /// Chunk indices (into this snapshot) co-located with `node`, with
    /// their sizes — the raw material for locality edges.
    pub fn colocated_with(&self, node: NodeId) -> Vec<(usize, u64)> {
        self.entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.locations.binary_search(&node).is_ok())
            .map(|(i, e)| (i, e.size))
            .collect()
    }

    /// Advances the snapshot by a normalized [`LayoutDelta`] without
    /// re-walking the namenode: O(|delta| + n) instead of O(n · r) chunk
    /// lookups.
    ///
    /// Semantics, in order: failed nodes lose every replica they held;
    /// net replica drops and adds apply to surviving entries; removed
    /// chunks leave (order of the remaining entries is preserved, so
    /// surviving task indices compact predictably); added chunks append
    /// in the delta's order. Changes referring to chunks outside the
    /// snapshot are ignored — deltas may be projected from a wider scope.
    ///
    /// Determinism: a pure function of `(self, delta)`; equal inputs
    /// yield byte-identical snapshots.
    pub fn apply_delta(&mut self, delta: &LayoutDelta) {
        let mut index = ChunkIndex::build(self);
        self.apply_delta_indexed(delta, &mut index);
    }

    /// [`apply_delta`](Self::apply_delta) with a caller-maintained
    /// [`ChunkIndex`], for sessions replaying long churn streams: the
    /// per-call index rebuild disappears, and `index` comes out tracking
    /// the advanced snapshot (ready for the next delta). The index must
    /// have been built from — or advanced alongside — this snapshot.
    pub fn apply_delta_indexed(&mut self, delta: &LayoutDelta, index: &mut ChunkIndex) {
        debug_assert_eq!(
            index.map.len(),
            self.entries.len(),
            "index must track this snapshot"
        );
        if !delta.nodes_failed.is_empty() {
            for entry in &mut self.entries {
                entry
                    .locations
                    .retain(|n| delta.nodes_failed.binary_search(n).is_err());
            }
        }
        for &(chunk, node) in &delta.replicas_dropped {
            if let Some(i) = index.get(chunk) {
                self.entries[i].locations.retain(|&n| n != node);
            }
        }
        for &(chunk, node) in &delta.replicas_added {
            if let Some(i) = index.get(chunk) {
                let locs = &mut self.entries[i].locations;
                let pos = locs.partition_point(|&n| n < node);
                if locs.get(pos) != Some(&node) {
                    locs.insert(pos, node);
                }
            }
        }
        if !delta.files_removed.is_empty() {
            self.entries
                .retain(|e| delta.files_removed.binary_search(&e.chunk).is_err());
            // Removal compacts every index to the right of a hole; a
            // rebuild is the only correct (and still O(n log n), same as
            // the retain's reads) way to catch up.
            index.map.clear();
            index
                .map
                .extend(self.entries.iter().enumerate().map(|(i, e)| (e.chunk, i)));
        }
        for e in &delta.files_added {
            index.map.insert(e.chunk, self.entries.len());
            self.entries.push(e.clone());
        }
    }

    /// Bytes stored per node among the snapshot's chunks, indexed by raw
    /// node id (`n_nodes` sizes the vector).
    pub fn bytes_per_node(&self, n_nodes: usize) -> Vec<u64> {
        let mut out = vec![0u64; n_nodes];
        for e in &self.entries {
            for &n in &e.locations {
                out[n.index()] += e.size;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk::DatasetSpec;
    use crate::namenode::DfsConfig;
    use crate::placement::Placement;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (Namenode, Vec<ChunkId>) {
        let mut nn = Namenode::new(6, DfsConfig::default());
        let mut rng = StdRng::seed_from_u64(1);
        let id = nn.create_dataset(
            &DatasetSpec::uniform("d", 12, 64),
            &Placement::Random,
            &mut rng,
        );
        let chunks = nn.dataset(id).unwrap().chunks.clone();
        (nn, chunks)
    }

    #[test]
    fn capture_preserves_order_and_sizes() {
        let (nn, chunks) = setup();
        let snap = LayoutSnapshot::capture(&nn, &chunks);
        assert_eq!(snap.len(), 12);
        assert!(!snap.is_empty());
        assert_eq!(snap.total_bytes(), 12 * 64);
        for (i, e) in snap.entries().iter().enumerate() {
            assert_eq!(e.chunk, chunks[i]);
            assert_eq!(e.size, 64);
            assert_eq!(e.locations.len(), 3);
        }
    }

    #[test]
    fn capture_all_covers_everything() {
        let (nn, _) = setup();
        let snap = LayoutSnapshot::capture_all(&nn);
        assert_eq!(snap.len(), nn.chunk_count());
    }

    #[test]
    fn colocated_matches_namenode_view() {
        let (nn, chunks) = setup();
        let snap = LayoutSnapshot::capture(&nn, &chunks);
        for node in nn.alive_nodes() {
            let from_snap: Vec<ChunkId> = snap
                .colocated_with(node)
                .into_iter()
                .map(|(i, _)| chunks[i])
                .collect();
            let from_nn: Vec<ChunkId> = nn.chunks_on(node).unwrap().to_vec();
            assert_eq!(from_snap, from_nn, "{node}");
        }
    }

    #[test]
    fn bytes_per_node_sums_to_replicated_total() {
        let (nn, chunks) = setup();
        let snap = LayoutSnapshot::capture(&nn, &chunks);
        let total: u64 = snap.bytes_per_node(nn.node_count()).iter().sum();
        assert_eq!(total, snap.total_bytes() * 3);
    }

    #[test]
    fn apply_delta_tracks_namenode_churn_exactly() {
        // Capture, churn the namenode (failure, repair, decommission,
        // node add, rebalance), project the journal, apply — the advanced
        // snapshot must equal a fresh capture.
        let (mut nn, chunks) = setup();
        let mut snap = LayoutSnapshot::capture(&nn, &chunks);
        nn.take_events(); // drop the creation events: snapshot has them
        let mut rng = StdRng::seed_from_u64(0xC0FFEE);
        nn.fail_node(NodeId(1)).unwrap();
        nn.repair_under_replicated(&mut rng).unwrap();
        nn.add_node();
        nn.decommission(NodeId(4), &mut rng).unwrap();
        nn.rebalance(1.25, &mut rng);
        let events = nn.take_events();
        assert!(nn.events().is_empty(), "drain empties the journal");
        let scope: std::collections::BTreeSet<ChunkId> = chunks.iter().copied().collect();
        let delta = crate::delta::LayoutDelta::from_events(&events, |c| scope.contains(&c));
        assert!(!delta.is_empty());
        snap.apply_delta(&delta);
        assert_eq!(snap, LayoutSnapshot::capture(&nn, &chunks));
    }

    #[test]
    fn apply_delta_handles_scope_changes() {
        let (nn, chunks) = setup();
        let mut snap = LayoutSnapshot::capture(&nn, &chunks);
        let delta = crate::delta::LayoutDelta {
            files_removed: vec![chunks[3], chunks[7]],
            files_added: vec![ChunkLayout {
                chunk: ChunkId(999),
                size: 32,
                locations: vec![NodeId(0), NodeId(2)],
            }],
            ..Default::default()
        };
        snap.apply_delta(&delta);
        assert_eq!(snap.len(), 11);
        // Survivors keep their relative order; the new chunk appends.
        let ids: Vec<ChunkId> = snap.entries().iter().map(|e| e.chunk).collect();
        let mut expected: Vec<ChunkId> = chunks
            .iter()
            .copied()
            .filter(|&c| c != chunks[3] && c != chunks[7])
            .collect();
        expected.push(ChunkId(999));
        assert_eq!(ids, expected);
    }

    #[test]
    fn apply_delta_indexed_matches_per_call_rebuild() {
        // Replay a mixed stream through both entry points: the
        // maintained index must stay in lockstep with fresh rebuilds and
        // both snapshots must stay byte-identical.
        let (nn, chunks) = setup();
        let mut plain = LayoutSnapshot::capture(&nn, &chunks);
        let mut indexed = plain.clone();
        let mut index = ChunkIndex::build(&indexed);
        let deltas = vec![
            LayoutDelta {
                replicas_dropped: vec![(chunks[0], plain.entries()[0].locations[0])],
                replicas_added: vec![(chunks[1], NodeId(5))],
                ..Default::default()
            },
            LayoutDelta {
                files_removed: vec![chunks[2], chunks[9]],
                files_added: vec![ChunkLayout {
                    chunk: ChunkId(500),
                    size: 16,
                    locations: vec![NodeId(1)],
                }],
                ..Default::default()
            },
            LayoutDelta {
                nodes_failed: vec![NodeId(3)],
                replicas_added: vec![(ChunkId(500), NodeId(0)), (ChunkId(999), NodeId(2))],
                ..Default::default()
            },
        ];
        for delta in &deltas {
            let mut delta = delta.clone();
            delta.normalize();
            plain.apply_delta(&delta);
            indexed.apply_delta_indexed(&delta, &mut index);
            assert_eq!(plain, indexed);
            assert_eq!(index, ChunkIndex::build(&indexed), "index tracks snapshot");
        }
        assert_eq!(index.len(), indexed.len());
        assert!(!index.is_empty());
        assert_eq!(index.get(ChunkId(500)), Some(indexed.len() - 1));
        assert_eq!(index.get(chunks[2]), None);
    }

    #[test]
    fn apply_delta_ignores_out_of_scope_changes() {
        let (nn, chunks) = setup();
        let mut snap = LayoutSnapshot::capture(&nn, &chunks);
        let before = snap.clone();
        let delta = crate::delta::LayoutDelta {
            replicas_added: vec![(ChunkId(998), NodeId(0))],
            replicas_dropped: vec![(ChunkId(997), NodeId(1))],
            ..Default::default()
        };
        snap.apply_delta(&delta);
        assert_eq!(snap, before);
    }

    #[test]
    fn snapshot_is_immune_to_later_mutations() {
        let (mut nn, chunks) = setup();
        let snap = LayoutSnapshot::capture(&nn, &chunks);
        let before = snap.entries()[0].locations.clone();
        let mut rng = StdRng::seed_from_u64(9);
        nn.decommission(before[0], &mut rng).unwrap();
        assert_eq!(
            snap.entries()[0].locations,
            before,
            "snapshot must not change"
        );
    }
}
