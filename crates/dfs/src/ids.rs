//! Strongly typed identifiers for cluster nodes, chunks, and datasets.

use std::fmt;

/// A cluster node (one DataNode in HDFS terms).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// A chunk file (one HDFS block-sized file).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ChunkId(pub u64);

/// A named dataset: an ordered collection of chunks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DatasetId(pub u32);

impl NodeId {
    /// Raw index into per-node tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl ChunkId {
    /// Raw index into the namenode's chunk table.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl DatasetId {
    /// Raw index into the namenode's dataset table.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node-{}", self.0)
    }
}

impl fmt::Display for ChunkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "chunk-{}", self.0)
    }
}

impl fmt::Display for DatasetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dataset-{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(NodeId(43).to_string(), "node-43");
        assert_eq!(ChunkId(7).to_string(), "chunk-7");
        assert_eq!(DatasetId(0).to_string(), "dataset-0");
    }

    #[test]
    fn ids_order_by_raw_value() {
        assert!(NodeId(1) < NodeId(2));
        assert!(ChunkId(10) > ChunkId(9));
        assert_eq!(NodeId(5).index(), 5);
    }
}
