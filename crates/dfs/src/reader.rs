//! Replica selection — which node serves a read.
//!
//! The paper (Section V setup): "When reading data, the client will attempt
//! to read from a local disk. If the required data is not on a local disk,
//! the client will read data from another node that is chosen at random."
//! [`ReplicaChoice::PreferLocalRandom`] is that default; the other variants
//! support the ablation study and Opass-directed sourcing.

use crate::ids::{ChunkId, NodeId};
use crate::topology::RackMap;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use std::collections::BTreeMap;

/// Policy deciding which replica holder serves a chunk read.
#[derive(Debug, Clone, Default)]
pub enum ReplicaChoice {
    /// Local replica when present, otherwise a uniformly random holder —
    /// the HDFS default behaviour the paper evaluates against.
    #[default]
    PreferLocalRandom,
    /// Always a uniformly random holder, even when a local copy exists.
    /// Models locality-oblivious clients (worst case).
    RandomReplica,
    /// A fixed source per chunk (e.g. chosen by a planner to spread load);
    /// falls back to prefer-local-random for unmapped chunks. Ordered so
    /// that debug dumps and any future iteration are deterministic.
    Directed(BTreeMap<ChunkId, NodeId>),
    /// Local replica when present, else a random *same-rack* holder, else
    /// a random holder — HDFS's rack-aware client behaviour (this
    /// repository's rack extension).
    PreferLocalThenRack(RackMap),
}

impl ReplicaChoice {
    /// Selects the serving node for `chunk` read by a process on `reader`.
    ///
    /// `locations` must be the chunk's replica holders (non-empty).
    ///
    /// # Panics
    ///
    /// Panics if `locations` is empty or a directed source is not among the
    /// holders (a planner bug worth failing loudly on).
    pub fn select(
        &self,
        chunk: ChunkId,
        reader: NodeId,
        locations: &[NodeId],
        rng: &mut StdRng,
    ) -> NodeId {
        assert!(!locations.is_empty(), "chunk {chunk} has no replicas");
        match self {
            ReplicaChoice::PreferLocalRandom => {
                if locations.contains(&reader) {
                    reader
                } else {
                    *locations.choose(rng).expect("non-empty locations")
                }
            }
            ReplicaChoice::RandomReplica => *locations.choose(rng).expect("non-empty locations"),
            ReplicaChoice::Directed(map) => match map.get(&chunk) {
                Some(&src) => {
                    assert!(
                        locations.contains(&src),
                        "directed source {src} does not hold {chunk}"
                    );
                    src
                }
                None => ReplicaChoice::PreferLocalRandom.select(chunk, reader, locations, rng),
            },
            ReplicaChoice::PreferLocalThenRack(racks) => {
                if locations.contains(&reader) {
                    return reader;
                }
                let same_rack: Vec<NodeId> = locations
                    .iter()
                    .copied()
                    .filter(|&n| racks.same_rack(n, reader))
                    .collect();
                match same_rack.choose(rng) {
                    Some(&n) => n,
                    None => *locations.choose(rng).expect("non-empty locations"),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(77)
    }

    #[test]
    fn prefer_local_picks_reader_when_colocated() {
        let locs = [NodeId(1), NodeId(4), NodeId(6)];
        let mut r = rng();
        for _ in 0..10 {
            let s = ReplicaChoice::PreferLocalRandom.select(ChunkId(0), NodeId(4), &locs, &mut r);
            assert_eq!(s, NodeId(4));
        }
    }

    #[test]
    fn prefer_local_falls_back_to_random_holder() {
        let locs = [NodeId(1), NodeId(4), NodeId(6)];
        let mut r = rng();
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..100 {
            let s = ReplicaChoice::PreferLocalRandom.select(ChunkId(0), NodeId(9), &locs, &mut r);
            assert!(locs.contains(&s));
            seen.insert(s);
        }
        assert_eq!(seen.len(), 3, "all holders should be hit eventually");
    }

    #[test]
    fn random_replica_ignores_locality() {
        let locs = [NodeId(1), NodeId(4)];
        let mut r = rng();
        let mut picked_remote = false;
        for _ in 0..50 {
            let s = ReplicaChoice::RandomReplica.select(ChunkId(0), NodeId(1), &locs, &mut r);
            if s != NodeId(1) {
                picked_remote = true;
            }
        }
        assert!(
            picked_remote,
            "random policy must sometimes skip the local copy"
        );
    }

    #[test]
    fn directed_uses_map_and_falls_back() {
        let locs = [NodeId(1), NodeId(4)];
        let mut map = BTreeMap::new();
        map.insert(ChunkId(0), NodeId(4));
        let policy = ReplicaChoice::Directed(map);
        let mut r = rng();
        assert_eq!(
            policy.select(ChunkId(0), NodeId(1), &locs, &mut r),
            NodeId(4)
        );
        // Unmapped chunk: prefer-local fallback.
        assert_eq!(
            policy.select(ChunkId(1), NodeId(1), &locs, &mut r),
            NodeId(1)
        );
    }

    #[test]
    fn rack_preference_picks_same_rack_holder() {
        let racks = RackMap::uniform(8, 4); // racks {0..3}, {4..7}
        let policy = ReplicaChoice::PreferLocalThenRack(racks);
        let locs = [NodeId(2), NodeId(5), NodeId(6)];
        let mut r = rng();
        for _ in 0..20 {
            // Reader 1 is in rack 0; only holder 2 shares it.
            assert_eq!(
                policy.select(ChunkId(0), NodeId(1), &locs, &mut r),
                NodeId(2)
            );
            // Reader 2 holds the chunk itself.
            assert_eq!(
                policy.select(ChunkId(0), NodeId(2), &locs, &mut r),
                NodeId(2)
            );
        }
        // Reader with no same-rack holder falls back to any holder.
        let far_locs = [NodeId(5), NodeId(6)];
        let picked = policy.select(ChunkId(0), NodeId(0), &far_locs, &mut r);
        assert!(far_locs.contains(&picked));
    }

    #[test]
    #[should_panic(expected = "does not hold")]
    fn directed_source_must_hold_chunk() {
        let locs = [NodeId(1)];
        let mut map = BTreeMap::new();
        map.insert(ChunkId(0), NodeId(9));
        let mut r = rng();
        ReplicaChoice::Directed(map).select(ChunkId(0), NodeId(1), &locs, &mut r);
    }
}
