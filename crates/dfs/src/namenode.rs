//! The namenode: cluster membership and the chunk→locations block map.
//!
//! This is the part of HDFS that Opass actually talks to — the paper's
//! optimizer "retrieves the data layout information from the underlying
//! distributed file system". The model covers what the evaluation needs:
//! dataset creation under a placement policy, replica lookup, node
//! addition, and node decommission with re-replication (the paper names
//! node churn as the cause of unbalanced distributions that break full
//! matchings).

use crate::chunk::{ChunkMeta, DatasetMeta, DatasetSpec};
use crate::delta::{LayoutDelta, LayoutEvent};
use crate::error::DfsError;
use crate::ids::{ChunkId, DatasetId, NodeId};
use crate::placement::Placement;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;

/// Namenode configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DfsConfig {
    /// Replication factor (HDFS default: 3).
    pub replication: u32,
}

impl Default for DfsConfig {
    fn default() -> Self {
        DfsConfig { replication: 3 }
    }
}

/// In-memory namenode over `n` nodes.
#[derive(Debug, Clone, PartialEq)]
pub struct Namenode {
    config: DfsConfig,
    /// `alive[i]` — whether node `i` is in service.
    alive: Vec<bool>,
    chunks: Vec<ChunkMeta>,
    datasets: Vec<DatasetMeta>,
    /// Per-node chunk lists (sorted by ChunkId).
    node_chunks: Vec<Vec<ChunkId>>,
    /// Layout mutation journal since the last [`Namenode::take_events`]
    /// drain — the change feed incremental re-planning consumes.
    events: Vec<LayoutEvent>,
}

impl Namenode {
    /// Creates a namenode managing `n_nodes` empty datanodes.
    ///
    /// # Panics
    ///
    /// Panics if `n_nodes` is smaller than the replication factor.
    pub fn new(n_nodes: usize, config: DfsConfig) -> Self {
        assert!(config.replication >= 1, "replication must be at least 1");
        assert!(
            n_nodes >= config.replication as usize,
            "cluster of {n_nodes} cannot hold {} replicas",
            config.replication
        );
        Namenode {
            config,
            alive: vec![true; n_nodes],
            chunks: Vec::new(),
            datasets: Vec::new(),
            node_chunks: vec![Vec::new(); n_nodes],
            events: Vec::new(),
        }
    }

    /// Layout events journalled since the last [`Namenode::take_events`]
    /// drain, in mutation order.
    pub fn events(&self) -> &[LayoutEvent] {
        &self.events
    }

    /// Drains the event journal: returns every event since the previous
    /// drain and leaves the journal empty. Each consumer window projects
    /// onto its snapshot via
    /// [`LayoutDelta::from_events`](crate::delta::LayoutDelta::from_events).
    pub fn take_events(&mut self) -> Vec<LayoutEvent> {
        std::mem::take(&mut self.events)
    }

    /// Configuration in use.
    pub fn config(&self) -> DfsConfig {
        self.config
    }

    /// Total number of nodes ever registered (alive or not).
    pub fn node_count(&self) -> usize {
        self.alive.len()
    }

    /// Ids of alive nodes, ascending.
    pub fn alive_nodes(&self) -> Vec<NodeId> {
        self.alive
            .iter()
            .enumerate()
            .filter_map(|(i, &a)| a.then_some(NodeId(i as u32)))
            .collect()
    }

    /// Whether a node is alive.
    pub fn is_alive(&self, node: NodeId) -> bool {
        self.alive.get(node.index()).copied().unwrap_or(false)
    }

    /// Number of chunks across all datasets.
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// Total stored bytes (one copy; multiply by `r` for raw disk usage).
    pub fn total_bytes(&self) -> u64 {
        self.chunks.iter().map(|c| c.size).sum()
    }

    /// Creates a dataset, placing every chunk under `placement`.
    pub fn create_dataset(
        &mut self,
        spec: &DatasetSpec,
        placement: &Placement,
        rng: &mut StdRng,
    ) -> DatasetId {
        let id = DatasetId(self.datasets.len() as u32);
        let alive = self.alive_nodes();
        let mut chunk_ids = Vec::with_capacity(spec.n_chunks());
        for (i, &size) in spec.chunk_sizes.iter().enumerate() {
            assert!(size > 0, "chunk sizes must be positive");
            let chunk_id = ChunkId(self.chunks.len() as u64);
            let locations = placement.place(i, self.config.replication as usize, &alive, rng);
            for &n in &locations {
                insert_sorted(&mut self.node_chunks[n.index()], chunk_id);
            }
            self.events.push(LayoutEvent::ChunkAdded {
                chunk: chunk_id,
                size,
                locations: locations.clone(),
            });
            self.chunks.push(ChunkMeta {
                id: chunk_id,
                dataset: id,
                index_in_dataset: i,
                size,
                locations,
            });
            chunk_ids.push(chunk_id);
        }
        self.datasets.push(DatasetMeta {
            id,
            name: spec.name.clone(),
            chunks: chunk_ids,
            total_bytes: spec.total_bytes(),
        });
        id
    }

    /// Registers a dataset whose replica locations were decided elsewhere
    /// (e.g. by the simulated parallel write path). Locations are
    /// validated: the correct replica count, distinct alive nodes.
    ///
    /// # Panics
    ///
    /// Panics on malformed locations — callers produce them from placement
    /// policies, so a violation is a programming error.
    pub fn create_dataset_placed(
        &mut self,
        spec: &DatasetSpec,
        locations: Vec<Vec<NodeId>>,
    ) -> DatasetId {
        assert_eq!(
            locations.len(),
            spec.n_chunks(),
            "one location set per chunk"
        );
        let id = DatasetId(self.datasets.len() as u32);
        let mut chunk_ids = Vec::with_capacity(spec.n_chunks());
        for (i, (&size, mut locs)) in spec.chunk_sizes.iter().zip(locations).enumerate() {
            assert!(size > 0, "chunk sizes must be positive");
            locs.sort_unstable();
            assert_eq!(
                locs.len(),
                self.config.replication as usize,
                "chunk {i} has wrong replica count"
            );
            assert!(
                locs.windows(2).all(|w| w[0] != w[1]),
                "chunk {i} has duplicate replicas"
            );
            for &n in &locs {
                assert!(self.is_alive(n), "chunk {i} placed on dead {n}");
            }
            let chunk_id = ChunkId(self.chunks.len() as u64);
            for &n in &locs {
                insert_sorted(&mut self.node_chunks[n.index()], chunk_id);
            }
            self.events.push(LayoutEvent::ChunkAdded {
                chunk: chunk_id,
                size,
                locations: locs.clone(),
            });
            self.chunks.push(ChunkMeta {
                id: chunk_id,
                dataset: id,
                index_in_dataset: i,
                size,
                locations: locs,
            });
            chunk_ids.push(chunk_id);
        }
        self.datasets.push(DatasetMeta {
            id,
            name: spec.name.clone(),
            chunks: chunk_ids,
            total_bytes: spec.total_bytes(),
        });
        id
    }

    /// Chunk metadata.
    pub fn chunk(&self, id: ChunkId) -> Result<&ChunkMeta, DfsError> {
        self.chunks
            .get(id.index())
            .ok_or(DfsError::UnknownChunk(id))
    }

    /// Replica locations of a chunk.
    pub fn locate(&self, id: ChunkId) -> Result<&[NodeId], DfsError> {
        Ok(&self.chunk(id)?.locations)
    }

    /// Dataset metadata.
    pub fn dataset(&self, id: DatasetId) -> Result<&DatasetMeta, DfsError> {
        self.datasets
            .get(id.index())
            .ok_or(DfsError::UnknownDataset(id))
    }

    /// All datasets.
    pub fn datasets(&self) -> &[DatasetMeta] {
        &self.datasets
    }

    /// All chunks, in id order.
    pub fn chunks(&self) -> &[ChunkMeta] {
        &self.chunks
    }

    /// Chunks stored on `node`, ascending by id.
    pub fn chunks_on(&self, node: NodeId) -> Result<&[ChunkId], DfsError> {
        self.node_chunks
            .get(node.index())
            .map(Vec::as_slice)
            .ok_or(DfsError::UnknownNode(node))
    }

    /// Bytes stored on each node (raw, counting every replica).
    pub fn stored_bytes_per_node(&self) -> Vec<u64> {
        let mut out = vec![0u64; self.alive.len()];
        for chunk in &self.chunks {
            for &n in &chunk.locations {
                out[n.index()] += chunk.size;
            }
        }
        out
    }

    /// Registers a brand-new empty node and returns its id. Existing data is
    /// not rebalanced — exactly the skew the paper says breaks full
    /// matchings.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId(self.alive.len() as u32);
        self.alive.push(true);
        self.node_chunks.push(Vec::new());
        self.events.push(LayoutEvent::NodeJoined { node: id });
        id
    }

    /// Crash-fails a node: it goes down *without* re-replication, leaving
    /// its chunks under-replicated (the state HDFS is in between a
    /// DataNode death and the re-replication scan). Follow with
    /// [`Self::repair_under_replicated`] to restore the target factor.
    ///
    /// # Errors
    ///
    /// Fails when the node is unknown, already down, or holds the last
    /// replica of some chunk (data loss is refused; decommission instead).
    pub fn fail_node(&mut self, node: NodeId) -> Result<(), DfsError> {
        if node.index() >= self.alive.len() {
            return Err(DfsError::UnknownNode(node));
        }
        if !self.alive[node.index()] {
            return Err(DfsError::NodeDown(node));
        }
        // Refuse data loss.
        for &chunk_id in &self.node_chunks[node.index()] {
            if self.chunks[chunk_id.index()].locations.len() == 1 {
                return Err(DfsError::InsufficientNodes {
                    needed: 1,
                    available: 0,
                });
            }
        }
        self.alive[node.index()] = false;
        self.events.push(LayoutEvent::NodeFailed { node });
        let lost: Vec<ChunkId> = std::mem::take(&mut self.node_chunks[node.index()]);
        for chunk_id in lost {
            self.chunks[chunk_id.index()]
                .locations
                .retain(|&n| n != node);
            self.events.push(LayoutEvent::ReplicaDropped {
                chunk: chunk_id,
                node,
            });
        }
        Ok(())
    }

    /// Chunks currently holding fewer than `replication` copies, with
    /// their live replica counts.
    pub fn under_replicated(&self) -> Vec<(ChunkId, usize)> {
        let r = self.config.replication as usize;
        self.chunks
            .iter()
            .filter(|c| c.locations.len() < r)
            .map(|c| (c.id, c.locations.len()))
            .collect()
    }

    /// Re-replicates every under-replicated chunk onto random alive nodes
    /// without a copy, restoring the configured factor. Returns how many
    /// replicas were created.
    ///
    /// # Errors
    ///
    /// Fails when fewer alive nodes exist than the replication factor.
    pub fn repair_under_replicated(&mut self, rng: &mut StdRng) -> Result<usize, DfsError> {
        let alive = self.alive_nodes();
        let r = self.config.replication as usize;
        if alive.len() < r {
            return Err(DfsError::InsufficientNodes {
                needed: r,
                available: alive.len(),
            });
        }
        let mut created = 0usize;
        let todo: Vec<ChunkId> = self
            .chunks
            .iter()
            .filter(|c| c.locations.len() < r)
            .map(|c| c.id)
            .collect();
        for chunk_id in todo {
            while self.chunks[chunk_id.index()].locations.len() < r {
                let chunk = &mut self.chunks[chunk_id.index()];
                let candidates: Vec<NodeId> = alive
                    .iter()
                    .copied()
                    .filter(|n| !chunk.locations.contains(n))
                    .collect();
                let target = *candidates
                    .choose(rng)
                    .expect("alive count >= r guarantees a candidate");
                let pos = chunk.locations.partition_point(|&n| n < target);
                chunk.locations.insert(pos, target);
                insert_sorted(&mut self.node_chunks[target.index()], chunk_id);
                self.events.push(LayoutEvent::ReplicaAdded {
                    chunk: chunk_id,
                    node: target,
                });
                created += 1;
            }
        }
        Ok(created)
    }

    /// Decommissions a node: its replicas are re-created on random alive
    /// nodes not already holding the chunk.
    ///
    /// # Errors
    ///
    /// Fails when the node is unknown or already down, or when fewer than
    /// `replication` alive nodes would remain.
    pub fn decommission(&mut self, node: NodeId, rng: &mut StdRng) -> Result<(), DfsError> {
        if node.index() >= self.alive.len() {
            return Err(DfsError::UnknownNode(node));
        }
        if !self.alive[node.index()] {
            return Err(DfsError::NodeDown(node));
        }
        let remaining = self.alive_nodes().len() - 1;
        if remaining < self.config.replication as usize {
            return Err(DfsError::InsufficientNodes {
                needed: self.config.replication as usize,
                available: remaining,
            });
        }
        self.alive[node.index()] = false;
        self.events.push(LayoutEvent::NodeFailed { node });
        let moved: Vec<ChunkId> = std::mem::take(&mut self.node_chunks[node.index()]);
        let alive = self.alive_nodes();
        for chunk_id in moved {
            let chunk = &mut self.chunks[chunk_id.index()];
            chunk.locations.retain(|&n| n != node);
            // Re-replicate onto a random alive node without a copy.
            let candidates: Vec<NodeId> = alive
                .iter()
                .copied()
                .filter(|n| !chunk.locations.contains(n))
                .collect();
            let target = *candidates
                .choose(rng)
                .expect("replication <= alive count guarantees a candidate");
            let pos = chunk.locations.partition_point(|&n| n < target);
            chunk.locations.insert(pos, target);
            insert_sorted(&mut self.node_chunks[target.index()], chunk_id);
            self.events.push(LayoutEvent::ReplicaDropped {
                chunk: chunk_id,
                node,
            });
            self.events.push(LayoutEvent::ReplicaAdded {
                chunk: chunk_id,
                node: target,
            });
        }
        Ok(())
    }

    /// Runs the HDFS-balancer equivalent: while some node stores more
    /// than `threshold` times the mean number of chunks, move one replica
    /// from the most-loaded node to a random node below the mean that
    /// lacks a copy. Returns the number of replicas moved.
    ///
    /// Mirrors `hdfs balancer`'s behaviour at chunk granularity; useful
    /// after writer-local ingest or node addition skews storage.
    ///
    /// # Panics
    ///
    /// Panics if `threshold < 1.0` (the mean is unreachable below itself).
    pub fn rebalance(&mut self, threshold: f64, rng: &mut StdRng) -> usize {
        assert!(threshold >= 1.0, "threshold must be at least 1.0");
        let alive = self.alive_nodes();
        if alive.is_empty() || self.chunks.is_empty() {
            return 0;
        }
        let total_replicas: usize = alive
            .iter()
            .map(|&n| self.node_chunks[n.index()].len())
            .sum();
        let mean = total_replicas as f64 / alive.len() as f64;
        let cap = (mean * threshold).ceil() as usize;
        let mut moved = 0usize;

        // Most loaded node above the cap, recomputed after every move.
        while let Some(&src) = alive
            .iter()
            .filter(|&&n| self.node_chunks[n.index()].len() > cap)
            .max_by_key(|&&n| self.node_chunks[n.index()].len())
        {
            // A chunk on src that some under-mean node lacks.
            let candidates: Vec<NodeId> = alive
                .iter()
                .copied()
                .filter(|&n| (self.node_chunks[n.index()].len() as f64) < mean)
                .collect();
            let mut done = false;
            let src_chunks = self.node_chunks[src.index()].clone();
            'outer: for &chunk_id in &src_chunks {
                let mut shuffled = candidates.clone();
                shuffled.shuffle(rng);
                for target in shuffled {
                    if !self.chunks[chunk_id.index()].is_on(target) {
                        // Move chunk replica src -> target.
                        let chunk = &mut self.chunks[chunk_id.index()];
                        chunk.locations.retain(|&n| n != src);
                        let pos = chunk.locations.partition_point(|&n| n < target);
                        chunk.locations.insert(pos, target);
                        self.node_chunks[src.index()].retain(|&c| c != chunk_id);
                        insert_sorted(&mut self.node_chunks[target.index()], chunk_id);
                        self.events.push(LayoutEvent::ReplicaDropped {
                            chunk: chunk_id,
                            node: src,
                        });
                        self.events.push(LayoutEvent::ReplicaAdded {
                            chunk: chunk_id,
                            node: target,
                        });
                        moved += 1;
                        done = true;
                        break 'outer;
                    }
                }
            }
            if !done {
                break; // no legal move remains
            }
        }
        moved
    }

    /// Moves one replica of `chunk` from `from` to `to`, journalling the
    /// paired drop+add. Replica counts are preserved, so the layout stays
    /// within the replication-factor invariant by construction.
    ///
    /// # Errors
    ///
    /// Fails when the chunk or either node is unknown, `to` is down,
    /// `from` holds no replica, or `to` already holds one.
    pub fn migrate_replica(
        &mut self,
        chunk_id: ChunkId,
        from: NodeId,
        to: NodeId,
    ) -> Result<(), DfsError> {
        if chunk_id.index() >= self.chunks.len() {
            return Err(DfsError::UnknownChunk(chunk_id));
        }
        for node in [from, to] {
            if node.index() >= self.alive.len() {
                return Err(DfsError::UnknownNode(node));
            }
        }
        if !self.alive[to.index()] {
            return Err(DfsError::NodeDown(to));
        }
        if !self.chunks[chunk_id.index()].is_on(from) {
            return Err(DfsError::ReplicaMissing {
                chunk: chunk_id,
                node: from,
            });
        }
        if self.chunks[chunk_id.index()].is_on(to) {
            return Err(DfsError::ReplicaExists {
                chunk: chunk_id,
                node: to,
            });
        }
        let chunk = &mut self.chunks[chunk_id.index()];
        chunk.locations.retain(|&n| n != from);
        let pos = chunk.locations.partition_point(|&n| n < to);
        chunk.locations.insert(pos, to);
        self.node_chunks[from.index()].retain(|&c| c != chunk_id);
        insert_sorted(&mut self.node_chunks[to.index()], chunk_id);
        self.events.push(LayoutEvent::ReplicaDropped {
            chunk: chunk_id,
            node: from,
        });
        self.events.push(LayoutEvent::ReplicaAdded {
            chunk: chunk_id,
            node: to,
        });
        Ok(())
    }

    /// Applies a *migration-shaped* [`LayoutDelta`] — the recommendations
    /// the placement engine emits — as a sequence of
    /// [`Namenode::migrate_replica`] calls, returning how many replicas
    /// moved. This is the replication-factor accounting gate: deltas that
    /// would change replica counts, the file set, or node membership are
    /// rejected whole, and nothing is applied unless every individual
    /// move validates against the current layout.
    ///
    /// # Errors
    ///
    /// Fails with [`DfsError::NotMigrationShaped`] on a delta of the
    /// wrong shape, or with the first per-move error otherwise (in which
    /// case no move has been applied).
    pub fn apply_migrations(&mut self, delta: &LayoutDelta) -> Result<usize, DfsError> {
        let pairs = delta.migration_pairs().ok_or(DfsError::NotMigrationShaped(
            "per-chunk drop and add counts must pair up with no file or node churn",
        ))?;
        // Validate every move before mutating anything: a half-applied
        // recommendation batch would leave the journal describing a
        // layout transition no planner proposed.
        for &(chunk_id, from, to) in &pairs {
            if chunk_id.index() >= self.chunks.len() {
                return Err(DfsError::UnknownChunk(chunk_id));
            }
            for node in [from, to] {
                if node.index() >= self.alive.len() {
                    return Err(DfsError::UnknownNode(node));
                }
            }
            if !self.alive[to.index()] {
                return Err(DfsError::NodeDown(to));
            }
            if !self.chunks[chunk_id.index()].is_on(from) {
                return Err(DfsError::ReplicaMissing {
                    chunk: chunk_id,
                    node: from,
                });
            }
            if self.chunks[chunk_id.index()].is_on(to) {
                return Err(DfsError::ReplicaExists {
                    chunk: chunk_id,
                    node: to,
                });
            }
        }
        let moved = pairs.len();
        for (chunk_id, from, to) in pairs {
            self.migrate_replica(chunk_id, from, to)
                .expect("validated above");
        }
        Ok(moved)
    }

    /// Verifies internal invariants (replica counts, index consistency).
    /// Used by tests and debug assertions; cheap enough for production
    /// sanity checks.
    pub fn check_invariants(&self) -> Result<(), String> {
        for chunk in &self.chunks {
            if chunk.locations.len() != self.config.replication as usize {
                return Err(format!(
                    "{} has {} replicas, expected {}",
                    chunk.id,
                    chunk.locations.len(),
                    self.config.replication
                ));
            }
            if chunk.locations.windows(2).any(|w| w[0] >= w[1]) {
                return Err(format!("{} locations not sorted/distinct", chunk.id));
            }
            for &n in &chunk.locations {
                if !self.is_alive(n) {
                    return Err(format!("{} replica on dead {}", chunk.id, n));
                }
                if self.node_chunks[n.index()]
                    .binary_search(&chunk.id)
                    .is_err()
                {
                    return Err(format!("{} missing from {}'s index", chunk.id, n));
                }
            }
        }
        for (i, chunks) in self.node_chunks.iter().enumerate() {
            for &c in chunks {
                if !self.chunks[c.index()].is_on(NodeId(i as u32)) {
                    return Err(format!("node-{i} index lists {c} but chunk disagrees"));
                }
            }
        }
        Ok(())
    }
}

fn insert_sorted(v: &mut Vec<ChunkId>, id: ChunkId) {
    let pos = v.partition_point(|&x| x < id);
    v.insert(pos, id);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xD15C)
    }

    fn small_fs() -> (Namenode, DatasetId) {
        let mut nn = Namenode::new(8, DfsConfig::default());
        let mut r = rng();
        let id = nn.create_dataset(
            &DatasetSpec::uniform("data", 32, 64),
            &Placement::Random,
            &mut r,
        );
        (nn, id)
    }

    #[test]
    fn create_dataset_places_all_chunks() {
        let (nn, id) = small_fs();
        let ds = nn.dataset(id).unwrap();
        assert_eq!(ds.chunks.len(), 32);
        assert_eq!(nn.chunk_count(), 32);
        assert_eq!(nn.total_bytes(), 32 * 64);
        nn.check_invariants().unwrap();
    }

    #[test]
    fn locate_returns_three_replicas() {
        let (nn, id) = small_fs();
        for &c in &nn.dataset(id).unwrap().chunks {
            assert_eq!(nn.locate(c).unwrap().len(), 3);
        }
    }

    #[test]
    fn node_index_matches_chunk_locations() {
        let (nn, _) = small_fs();
        for node in nn.alive_nodes() {
            for &c in nn.chunks_on(node).unwrap() {
                assert!(nn.chunk(c).unwrap().is_on(node));
            }
        }
    }

    #[test]
    fn stored_bytes_sum_to_replicated_total() {
        let (nn, _) = small_fs();
        let per_node: u64 = nn.stored_bytes_per_node().iter().sum();
        assert_eq!(per_node, nn.total_bytes() * 3);
    }

    #[test]
    fn unknown_ids_are_errors() {
        let (nn, _) = small_fs();
        assert!(matches!(
            nn.chunk(ChunkId(999)),
            Err(DfsError::UnknownChunk(_))
        ));
        assert!(matches!(
            nn.dataset(DatasetId(9)),
            Err(DfsError::UnknownDataset(_))
        ));
        assert!(matches!(
            nn.chunks_on(NodeId(99)),
            Err(DfsError::UnknownNode(_))
        ));
    }

    #[test]
    fn add_node_starts_empty() {
        let (mut nn, _) = small_fs();
        let n = nn.add_node();
        assert_eq!(n, NodeId(8));
        assert!(nn.chunks_on(n).unwrap().is_empty());
        assert!(nn.is_alive(n));
        nn.check_invariants().unwrap();
    }

    #[test]
    fn decommission_rereplicates_everything() {
        let (mut nn, _) = small_fs();
        let mut r = rng();
        let victim = NodeId(3);
        let moved = nn.chunks_on(victim).unwrap().len();
        assert!(moved > 0, "seeded placement should hit node 3");
        nn.decommission(victim, &mut r).unwrap();
        assert!(!nn.is_alive(victim));
        nn.check_invariants().unwrap();
        for chunk in nn.chunks() {
            assert!(!chunk.is_on(victim));
            assert_eq!(chunk.locations.len(), 3);
        }
    }

    #[test]
    fn decommission_twice_fails() {
        let (mut nn, _) = small_fs();
        let mut r = rng();
        nn.decommission(NodeId(1), &mut r).unwrap();
        assert!(matches!(
            nn.decommission(NodeId(1), &mut r),
            Err(DfsError::NodeDown(_))
        ));
    }

    #[test]
    fn decommission_below_replication_fails() {
        let mut nn = Namenode::new(3, DfsConfig::default());
        let mut r = rng();
        assert!(matches!(
            nn.decommission(NodeId(0), &mut r),
            Err(DfsError::InsufficientNodes { .. })
        ));
    }

    #[test]
    fn multiple_datasets_get_distinct_chunks() {
        let mut nn = Namenode::new(6, DfsConfig::default());
        let mut r = rng();
        let a = nn.create_dataset(
            &DatasetSpec::uniform("a", 4, 10),
            &Placement::Random,
            &mut r,
        );
        let b = nn.create_dataset(
            &DatasetSpec::uniform("b", 4, 20),
            &Placement::Random,
            &mut r,
        );
        let ca = &nn.dataset(a).unwrap().chunks;
        let cb = &nn.dataset(b).unwrap().chunks;
        assert!(ca.iter().all(|c| !cb.contains(c)));
        assert_eq!(nn.chunk_count(), 8);
        assert_eq!(nn.total_bytes(), 4 * 10 + 4 * 20);
    }

    #[test]
    fn writer_local_placement_respected() {
        let mut nn = Namenode::new(5, DfsConfig::default());
        let mut r = rng();
        let id = nn.create_dataset(
            &DatasetSpec::uniform("w", 10, 64),
            &Placement::WriterLocal { writer: NodeId(2) },
            &mut r,
        );
        for &c in &nn.dataset(id).unwrap().chunks {
            assert!(nn.chunk(c).unwrap().is_on(NodeId(2)));
        }
    }

    #[test]
    fn create_dataset_placed_registers_locations() {
        let mut nn = Namenode::new(5, DfsConfig::default());
        let spec = DatasetSpec::uniform("placed", 2, 64);
        let id = nn.create_dataset_placed(
            &spec,
            vec![
                vec![NodeId(0), NodeId(1), NodeId(2)],
                vec![NodeId(2), NodeId(3), NodeId(4)],
            ],
        );
        let chunks = nn.dataset(id).unwrap().chunks.clone();
        assert_eq!(
            nn.locate(chunks[0]).unwrap(),
            &[NodeId(0), NodeId(1), NodeId(2)]
        );
        nn.check_invariants().unwrap();
    }

    #[test]
    #[should_panic(expected = "wrong replica count")]
    fn create_dataset_placed_validates_replicas() {
        let mut nn = Namenode::new(5, DfsConfig::default());
        let spec = DatasetSpec::uniform("bad", 1, 64);
        nn.create_dataset_placed(&spec, vec![vec![NodeId(0)]]);
    }

    #[test]
    fn fail_node_leaves_under_replication_until_repair() {
        let (mut nn, _) = small_fs();
        let mut r = rng();
        let victim = NodeId(2);
        let lost = nn.chunks_on(victim).unwrap().len();
        assert!(lost > 0);
        nn.fail_node(victim).unwrap();
        assert!(!nn.is_alive(victim));
        let under = nn.under_replicated();
        assert_eq!(under.len(), lost, "every lost replica is reported");
        assert!(under.iter().all(|&(_, copies)| copies == 2));
        // Invariant check is expected to FAIL between failure and repair
        // (replica counts below target) — that is the under-replicated
        // state; repair must restore it.
        let created = nn.repair_under_replicated(&mut r).unwrap();
        assert_eq!(created, lost);
        assert!(nn.under_replicated().is_empty());
        nn.check_invariants().unwrap();
        for chunk in nn.chunks() {
            assert!(!chunk.is_on(victim));
        }
    }

    #[test]
    fn fail_node_refuses_data_loss() {
        let mut nn = Namenode::new(3, DfsConfig { replication: 1 });
        let mut r = rng();
        nn.create_dataset(&DatasetSpec::uniform("x", 4, 8), &Placement::Random, &mut r);
        // Some node holds a sole replica; failing it would lose data.
        let holder = nn.chunks().first().unwrap().locations[0];
        assert!(matches!(
            nn.fail_node(holder),
            Err(DfsError::InsufficientNodes { .. })
        ));
        assert!(nn.is_alive(holder), "refused failure leaves the node up");
    }

    #[test]
    fn rebalance_flattens_writer_local_skew() {
        // Writer-local placement piles one replica of everything on node 0.
        let mut nn = Namenode::new(8, DfsConfig::default());
        let mut r = rng();
        nn.create_dataset(
            &DatasetSpec::uniform("skewed", 32, 64),
            &Placement::WriterLocal { writer: NodeId(0) },
            &mut r,
        );
        let before = nn.chunks_on(NodeId(0)).unwrap().len();
        assert_eq!(before, 32, "writer holds a replica of every chunk");
        let moved = nn.rebalance(1.25, &mut r);
        assert!(moved > 0);
        nn.check_invariants().unwrap();
        let after = nn.chunks_on(NodeId(0)).unwrap().len();
        assert!(after < before, "{after} !< {before}");
        // Replica counts preserved.
        for chunk in nn.chunks() {
            assert_eq!(chunk.locations.len(), 3);
        }
        // Post-balance max load within threshold of the mean.
        let mean: f64 = (32.0 * 3.0) / 8.0;
        let max = nn
            .alive_nodes()
            .iter()
            .map(|&n| nn.chunks_on(n).unwrap().len())
            .max()
            .unwrap();
        assert!(max as f64 <= (mean * 1.25).ceil() + 1e-9, "max={max}");
    }

    #[test]
    fn rebalance_is_noop_when_even() {
        let mut nn = Namenode::new(6, DfsConfig::default());
        let mut r = rng();
        nn.create_dataset(
            &DatasetSpec::uniform("even", 12, 8),
            &Placement::RoundRobin,
            &mut r,
        );
        assert_eq!(nn.rebalance(1.5, &mut r), 0);
    }

    #[test]
    fn repair_is_noop_when_healthy() {
        let (mut nn, _) = small_fs();
        let mut r = rng();
        assert_eq!(nn.repair_under_replicated(&mut r).unwrap(), 0);
    }

    #[test]
    #[should_panic(expected = "cannot hold")]
    fn rejects_tiny_cluster() {
        let _ = Namenode::new(2, DfsConfig::default());
    }

    #[test]
    fn migrate_replica_preserves_counts_and_journals_the_move() {
        let (mut nn, id) = small_fs();
        nn.take_events();
        let chunk = nn.dataset(id).unwrap().chunks[0];
        let from = nn.chunk(chunk).unwrap().locations[0];
        let to = (0..8)
            .map(NodeId)
            .find(|&n| !nn.chunk(chunk).unwrap().is_on(n))
            .expect("r=3 on 8 nodes leaves a free node");
        nn.migrate_replica(chunk, from, to).unwrap();
        let meta = nn.chunk(chunk).unwrap();
        assert_eq!(meta.locations.len(), 3, "replica count preserved");
        assert!(meta.is_on(to) && !meta.is_on(from));
        nn.check_invariants().unwrap();
        assert_eq!(
            nn.take_events(),
            vec![
                LayoutEvent::ReplicaDropped { chunk, node: from },
                LayoutEvent::ReplicaAdded { chunk, node: to },
            ]
        );
        // Invalid moves are typed errors, not mutations.
        assert_eq!(
            nn.migrate_replica(chunk, from, to),
            Err(DfsError::ReplicaMissing { chunk, node: from })
        );
        let holder = nn.chunk(chunk).unwrap().locations[0];
        assert_eq!(
            nn.migrate_replica(chunk, to, holder),
            Err(DfsError::ReplicaExists {
                chunk,
                node: holder
            })
        );
    }

    #[test]
    fn apply_migrations_is_all_or_nothing() {
        let (mut nn, id) = small_fs();
        nn.take_events();
        let chunks = nn.dataset(id).unwrap().chunks.clone();
        let free_node = |nn: &Namenode, c: ChunkId| {
            (0..8)
                .map(NodeId)
                .find(|&n| !nn.chunk(c).unwrap().is_on(n))
                .expect("free node exists")
        };
        let good = (
            chunks[0],
            nn.chunk(chunks[0]).unwrap().locations[0],
            free_node(&nn, chunks[0]),
        );
        // A migration delta built from valid moves applies whole.
        let delta = LayoutDelta::migrations(&[good]);
        assert_eq!(nn.apply_migrations(&delta).unwrap(), 1);
        nn.check_invariants().unwrap();

        // A batch containing one bad move applies nothing.
        let before = nn.chunk(chunks[1]).unwrap().clone();
        let locs = nn.chunk(chunks[2]).unwrap().locations.clone();
        let bad = LayoutDelta::migrations(&[
            (
                chunks[1],
                nn.chunk(chunks[1]).unwrap().locations[0],
                free_node(&nn, chunks[1]),
            ),
            // Target already holds a replica: the whole batch must fail.
            (chunks[2], locs[0], locs[1]),
        ]);
        assert!(nn.apply_migrations(&bad).is_err());
        assert_eq!(nn.chunk(chunks[1]).unwrap(), &before, "nothing applied");

        // Count-changing deltas are rejected as not migration-shaped.
        let lopsided = LayoutDelta {
            replicas_added: vec![(chunks[3], free_node(&nn, chunks[3]))],
            ..Default::default()
        };
        assert_eq!(
            nn.apply_migrations(&lopsided),
            Err(DfsError::NotMigrationShaped(
                "per-chunk drop and add counts must pair up with no file or node churn",
            ))
        );
    }
}
