//! Layout deltas — the namenode's change feed for incremental re-planning.
//!
//! A [`LayoutEvent`] is one journal entry describing a single layout
//! mutation (a replica created or dropped, a chunk created, a node joining
//! or leaving service). The namenode appends events as its mutation
//! methods run; a planner drains them with
//! [`Namenode::take_events`](crate::Namenode::take_events) and projects
//! them onto the snapshot it planned against with
//! [`LayoutDelta::from_events`], yielding a [`LayoutDelta`]: the net,
//! canonically ordered difference between that snapshot and the current
//! layout. [`LayoutSnapshot::apply_delta`](crate::LayoutSnapshot::apply_delta)
//! then advances the snapshot without re-walking the namenode, and the
//! matching layer repairs its solution from the same delta.
//!
//! Determinism: a delta is always *normalized* — every list sorted and
//! deduplicated, replica changes reduced to their net effect — so equal
//! event sequences produce byte-identical deltas regardless of how the
//! events interleaved.

use crate::ids::{ChunkId, NodeId};
use crate::layout::ChunkLayout;
use std::collections::{BTreeMap, BTreeSet};

/// One namenode layout mutation, as appended to the event journal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LayoutEvent {
    /// A chunk came into existence with its initial replica set.
    ChunkAdded {
        /// The new chunk.
        chunk: ChunkId,
        /// Its size in bytes.
        size: u64,
        /// Initial replica holders, sorted.
        locations: Vec<NodeId>,
    },
    /// A replica of `chunk` was created on `node`.
    ReplicaAdded {
        /// The chunk gaining a replica.
        chunk: ChunkId,
        /// The node now holding a copy.
        node: NodeId,
    },
    /// The replica of `chunk` on `node` went away.
    ReplicaDropped {
        /// The chunk losing a replica.
        chunk: ChunkId,
        /// The node no longer holding a copy.
        node: NodeId,
    },
    /// A new empty node joined the cluster.
    NodeJoined {
        /// The new node.
        node: NodeId,
    },
    /// A node left service (crash-fail or decommission). Replica losses
    /// are journalled separately as [`LayoutEvent::ReplicaDropped`].
    NodeFailed {
        /// The departed node.
        node: NodeId,
    },
}

/// The net difference between a captured [`LayoutSnapshot`] and a later
/// layout, in snapshot terms.
///
/// All lists are sorted and duplicate-free (see [`LayoutDelta::normalize`]);
/// replica changes are *net* (a replica dropped and re-added cancels out).
/// `files_removed` describes chunks leaving the snapshot's scope — the
/// namenode never deletes chunks, but a planner's workload can shrink.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LayoutDelta {
    /// New chunks entering scope, appended after the existing entries in
    /// ascending chunk order (their snapshot indices continue at the end).
    pub files_added: Vec<ChunkLayout>,
    /// Chunks leaving scope, ascending.
    pub files_removed: Vec<ChunkId>,
    /// Net replica creations on chunks already in scope, ascending by
    /// `(chunk, node)`.
    pub replicas_added: Vec<(ChunkId, NodeId)>,
    /// Net replica losses on chunks already in scope, ascending by
    /// `(chunk, node)`.
    pub replicas_dropped: Vec<(ChunkId, NodeId)>,
    /// Nodes that left service, ascending. Their replica losses are also
    /// listed in `replicas_dropped`.
    pub nodes_failed: Vec<NodeId>,
    /// Nodes that joined, ascending (empty: no replicas yet).
    pub nodes_joined: Vec<NodeId>,
}

impl LayoutDelta {
    /// True when the delta changes nothing.
    pub fn is_empty(&self) -> bool {
        self.files_added.is_empty()
            && self.files_removed.is_empty()
            && self.replicas_added.is_empty()
            && self.replicas_dropped.is_empty()
            && self.nodes_failed.is_empty()
            && self.nodes_joined.is_empty()
    }

    /// Total number of elementary changes the delta carries — the `|Δ|`
    /// that incremental repair cost is proportional to.
    pub fn change_count(&self) -> usize {
        self.files_added.len()
            + self.files_removed.len()
            + self.replicas_added.len()
            + self.replicas_dropped.len()
            + self.nodes_failed.len()
            + self.nodes_joined.len()
    }

    /// Sorts every list and drops duplicates and internal contradictions:
    /// a `(chunk, node)` pair present in both `replicas_added` and
    /// `replicas_dropped` cancels out, replica changes on removed or
    /// added files are folded away (removed files need no repair; added
    /// files carry their final location set), and additions on failed
    /// nodes are dropped. Idempotent; [`LayoutDelta::from_events`] returns
    /// normalized deltas already.
    pub fn normalize(&mut self) {
        self.files_added.sort_by_key(|e| e.chunk);
        self.files_added.dedup_by_key(|e| e.chunk);
        self.files_removed.sort_unstable();
        self.files_removed.dedup();
        self.nodes_failed.sort_unstable();
        self.nodes_failed.dedup();
        self.nodes_joined.sort_unstable();
        self.nodes_joined.dedup();

        let removed: BTreeSet<ChunkId> = self.files_removed.iter().copied().collect();
        let added: BTreeSet<ChunkId> = self.files_added.iter().map(|e| e.chunk).collect();
        let failed: BTreeSet<NodeId> = self.nodes_failed.iter().copied().collect();

        self.replicas_added.sort_unstable();
        self.replicas_added.dedup();
        self.replicas_dropped.sort_unstable();
        self.replicas_dropped.dedup();
        let dropped: BTreeSet<(ChunkId, NodeId)> = self.replicas_dropped.iter().copied().collect();
        let cancelled: BTreeSet<(ChunkId, NodeId)> = self
            .replicas_added
            .iter()
            .filter(|pair| dropped.contains(pair))
            .copied()
            .collect();
        self.replicas_added.retain(|&(c, n)| {
            !cancelled.contains(&(c, n))
                && !removed.contains(&c)
                && !added.contains(&c)
                && !failed.contains(&n)
        });
        self.replicas_dropped.retain(|&(c, n)| {
            !cancelled.contains(&(c, n)) && !removed.contains(&c) && !added.contains(&c)
        });
        // A failed node's replicas must be gone from added-file locations
        // too (fold the failure into the final location sets).
        for entry in &mut self.files_added {
            entry.locations.retain(|n| !failed.contains(n));
            entry.locations.sort_unstable();
            entry.locations.dedup();
        }
    }

    /// A delta moving one replica of `chunk` from `from` to `to` — the
    /// shape the placement engine emits: replica counts are preserved,
    /// so applying it never violates the replication-factor invariant.
    pub fn migration(chunk: ChunkId, from: NodeId, to: NodeId) -> Self {
        Self::migrations(&[(chunk, from, to)])
    }

    /// A delta bundling several replica moves (`(chunk, from, to)` each),
    /// normalized.
    pub fn migrations(moves: &[(ChunkId, NodeId, NodeId)]) -> Self {
        let mut delta = LayoutDelta {
            replicas_dropped: moves.iter().map(|&(c, from, _)| (c, from)).collect(),
            replicas_added: moves.iter().map(|&(c, _, to)| (c, to)).collect(),
            ..Default::default()
        };
        delta.normalize();
        delta
    }

    /// Decomposes a *migration-shaped* delta back into `(chunk, from, to)`
    /// moves: no file or node churn, and per chunk as many replicas
    /// dropped as added (pairing i-th drop with i-th add in node order).
    /// Returns `None` when the delta has any other shape — the
    /// replication-factor accounting gate used by
    /// [`crate::Namenode::apply_migrations`].
    pub fn migration_pairs(&self) -> Option<Vec<(ChunkId, NodeId, NodeId)>> {
        if !self.files_added.is_empty()
            || !self.files_removed.is_empty()
            || !self.nodes_failed.is_empty()
            || !self.nodes_joined.is_empty()
        {
            return None;
        }
        let mut drops: BTreeMap<ChunkId, Vec<NodeId>> = BTreeMap::new();
        for &(c, n) in &self.replicas_dropped {
            drops.entry(c).or_default().push(n);
        }
        let mut adds: BTreeMap<ChunkId, Vec<NodeId>> = BTreeMap::new();
        for &(c, n) in &self.replicas_added {
            adds.entry(c).or_default().push(n);
        }
        if drops.len() != adds.len() {
            return None;
        }
        let mut pairs = Vec::new();
        for ((dc, dn), (ac, an)) in drops.into_iter().zip(adds) {
            if dc != ac || dn.len() != an.len() {
                return None;
            }
            pairs.extend(dn.into_iter().zip(an).map(|(from, to)| (dc, from, to)));
        }
        Some(pairs)
    }

    /// Projects a journal slice onto the scope of a prior snapshot.
    ///
    /// `in_scope` decides which chunks the snapshot covers (and which
    /// *new* chunks should enter it — e.g. "belongs to dataset 3").
    /// Events about out-of-scope chunks are ignored; node membership
    /// events always apply. The result is normalized: replica events are
    /// reduced to their net effect, chunks created inside the window
    /// arrive as `files_added` entries carrying their final location set.
    pub fn from_events(events: &[LayoutEvent], mut in_scope: impl FnMut(ChunkId) -> bool) -> Self {
        // Chunks born inside the window: final locations accumulate here.
        let mut born: BTreeMap<ChunkId, ChunkLayout> = BTreeMap::new();
        // Net replica change per (chunk, node) for pre-existing chunks:
        // +1 = added, -1 = dropped, 0 = cancelled out.
        let mut net: BTreeMap<(ChunkId, NodeId), i32> = BTreeMap::new();
        let mut delta = LayoutDelta::default();

        for event in events {
            match event {
                LayoutEvent::ChunkAdded {
                    chunk,
                    size,
                    locations,
                } => {
                    if in_scope(*chunk) {
                        born.insert(
                            *chunk,
                            ChunkLayout {
                                chunk: *chunk,
                                size: *size,
                                locations: locations.clone(),
                            },
                        );
                    }
                }
                LayoutEvent::ReplicaAdded { chunk, node } => {
                    if let Some(entry) = born.get_mut(chunk) {
                        let pos = entry.locations.partition_point(|&n| n < *node);
                        if entry.locations.get(pos) != Some(node) {
                            entry.locations.insert(pos, *node);
                        }
                    } else if in_scope(*chunk) {
                        *net.entry((*chunk, *node)).or_insert(0) += 1;
                    }
                }
                LayoutEvent::ReplicaDropped { chunk, node } => {
                    if let Some(entry) = born.get_mut(chunk) {
                        entry.locations.retain(|n| n != node);
                    } else if in_scope(*chunk) {
                        *net.entry((*chunk, *node)).or_insert(0) -= 1;
                    }
                }
                LayoutEvent::NodeJoined { node } => delta.nodes_joined.push(*node),
                LayoutEvent::NodeFailed { node } => delta.nodes_failed.push(*node),
            }
        }

        delta.files_added = born.into_values().collect();
        for ((chunk, node), n) in net {
            match n.cmp(&0) {
                std::cmp::Ordering::Greater => delta.replicas_added.push((chunk, node)),
                std::cmp::Ordering::Less => delta.replicas_dropped.push((chunk, node)),
                std::cmp::Ordering::Equal => {}
            }
        }
        delta.normalize();
        delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout(chunk: u64, size: u64, nodes: &[u32]) -> ChunkLayout {
        ChunkLayout {
            chunk: ChunkId(chunk),
            size,
            locations: nodes.iter().map(|&n| NodeId(n)).collect(),
        }
    }

    #[test]
    fn empty_delta_is_empty() {
        let d = LayoutDelta::default();
        assert!(d.is_empty());
        assert_eq!(d.change_count(), 0);
    }

    #[test]
    fn from_events_nets_out_replica_churn() {
        let events = vec![
            LayoutEvent::ReplicaDropped {
                chunk: ChunkId(3),
                node: NodeId(1),
            },
            LayoutEvent::ReplicaAdded {
                chunk: ChunkId(3),
                node: NodeId(5),
            },
            // Dropped then re-added on the same node: cancels out.
            LayoutEvent::ReplicaDropped {
                chunk: ChunkId(4),
                node: NodeId(2),
            },
            LayoutEvent::ReplicaAdded {
                chunk: ChunkId(4),
                node: NodeId(2),
            },
        ];
        let d = LayoutDelta::from_events(&events, |_| true);
        assert_eq!(d.replicas_dropped, vec![(ChunkId(3), NodeId(1))]);
        assert_eq!(d.replicas_added, vec![(ChunkId(3), NodeId(5))]);
        assert_eq!(d.change_count(), 2);
    }

    #[test]
    fn from_events_folds_churn_into_born_chunks() {
        let events = vec![
            LayoutEvent::ChunkAdded {
                chunk: ChunkId(9),
                size: 64,
                locations: vec![NodeId(0), NodeId(1)],
            },
            LayoutEvent::ReplicaAdded {
                chunk: ChunkId(9),
                node: NodeId(4),
            },
            LayoutEvent::ReplicaDropped {
                chunk: ChunkId(9),
                node: NodeId(0),
            },
        ];
        let d = LayoutDelta::from_events(&events, |_| true);
        assert_eq!(d.files_added, vec![layout(9, 64, &[1, 4])]);
        assert!(d.replicas_added.is_empty() && d.replicas_dropped.is_empty());
    }

    #[test]
    fn from_events_respects_scope() {
        let events = vec![
            LayoutEvent::ReplicaAdded {
                chunk: ChunkId(1),
                node: NodeId(0),
            },
            LayoutEvent::ReplicaAdded {
                chunk: ChunkId(2),
                node: NodeId(0),
            },
            LayoutEvent::NodeJoined { node: NodeId(9) },
        ];
        let d = LayoutDelta::from_events(&events, |c| c == ChunkId(1));
        assert_eq!(d.replicas_added, vec![(ChunkId(1), NodeId(0))]);
        assert_eq!(d.nodes_joined, vec![NodeId(9)], "membership always applies");
    }

    #[test]
    fn normalize_cancels_and_sorts() {
        let mut d = LayoutDelta {
            replicas_added: vec![
                (ChunkId(2), NodeId(1)),
                (ChunkId(1), NodeId(0)),
                (ChunkId(1), NodeId(0)),
            ],
            replicas_dropped: vec![(ChunkId(1), NodeId(0))],
            nodes_failed: vec![NodeId(7), NodeId(3), NodeId(7)],
            ..Default::default()
        };
        d.normalize();
        assert_eq!(d.replicas_added, vec![(ChunkId(2), NodeId(1))]);
        assert!(d.replicas_dropped.is_empty());
        assert_eq!(d.nodes_failed, vec![NodeId(3), NodeId(7)]);
    }

    #[test]
    fn normalize_drops_adds_on_failed_nodes_and_removed_files() {
        let mut d = LayoutDelta {
            files_removed: vec![ChunkId(5)],
            files_added: vec![layout(8, 64, &[0, 3])],
            replicas_added: vec![
                (ChunkId(5), NodeId(1)),
                (ChunkId(6), NodeId(3)),
                (ChunkId(8), NodeId(2)),
            ],
            replicas_dropped: vec![(ChunkId(5), NodeId(2))],
            nodes_failed: vec![NodeId(3)],
            ..Default::default()
        };
        d.normalize();
        assert!(d.replicas_added.is_empty(), "{:?}", d.replicas_added);
        assert!(d.replicas_dropped.is_empty());
        assert_eq!(
            d.files_added[0].locations,
            vec![NodeId(0)],
            "failed node folded out of the added file"
        );
    }
}
