//! Replica placement policies.
//!
//! HDFS decides where each chunk's `r` replicas live when the dataset is
//! written. The paper's analysis assumes the default *random* placement
//! ("data are randomly distributed within HDFS"); the writer-local and
//! round-robin variants exist for the ablation study (Opass's benefit
//! depends on how skewed placement is).

use crate::ids::NodeId;
use crate::topology::RackMap;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;

/// How replicas are placed across alive nodes at write time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Placement {
    /// `r` distinct nodes chosen uniformly at random — the HDFS default the
    /// paper analyzes.
    Random,
    /// First replica on the writing node, remaining `r - 1` random — HDFS's
    /// actual behaviour when the writer is a cluster node.
    WriterLocal {
        /// The node performing the write.
        writer: NodeId,
    },
    /// Consecutive chunks start at consecutive nodes (`chunk i` →
    /// nodes `i, i+1, …, i+r-1` mod alive count) — a perfectly even
    /// distribution used as the "ideal" baseline in tests and ablations.
    RoundRobin,
    /// HDFS's production rack-aware policy (this repository's rack
    /// extension): the first replica on a random node, the second and
    /// third together on one *different* random rack, any further
    /// replicas random. Survives a whole-rack failure while keeping
    /// cross-rack write traffic low.
    RackAware {
        /// Node→rack membership.
        racks: RackMap,
    },
}

impl Placement {
    /// Chooses the `replication` nodes for the `chunk_seq`-th chunk placed
    /// under this policy. Returned nodes are distinct and sorted.
    ///
    /// # Panics
    ///
    /// Panics if `replication` exceeds the number of alive nodes or is zero.
    pub fn place(
        &self,
        chunk_seq: usize,
        replication: usize,
        alive: &[NodeId],
        rng: &mut StdRng,
    ) -> Vec<NodeId> {
        assert!(replication >= 1, "replication must be at least 1");
        assert!(
            replication <= alive.len(),
            "replication {replication} exceeds alive node count {}",
            alive.len()
        );
        let mut chosen: Vec<NodeId> = match self {
            Placement::Random => {
                let mut pool: Vec<NodeId> = alive.to_vec();
                pool.shuffle(rng);
                pool.truncate(replication);
                pool
            }
            Placement::WriterLocal { writer } => {
                assert!(
                    alive.contains(writer),
                    "writer {writer} is not an alive node"
                );
                let mut pool: Vec<NodeId> = alive.iter().copied().filter(|n| n != writer).collect();
                pool.shuffle(rng);
                pool.truncate(replication - 1);
                pool.push(*writer);
                pool
            }
            Placement::RoundRobin => (0..replication)
                .map(|k| alive[(chunk_seq + k) % alive.len()])
                .collect(),
            Placement::RackAware { racks } => {
                let mut chosen: Vec<NodeId> = Vec::with_capacity(replication);
                let mut pool: Vec<NodeId> = alive.to_vec();
                pool.shuffle(rng);
                let first = pool[0];
                chosen.push(first);
                if replication > 1 {
                    // Second (and third) replica on one different rack.
                    let other_racks: Vec<u32> = {
                        let mut rs: Vec<u32> = pool
                            .iter()
                            .filter(|&&n| racks.rack_of(n) != racks.rack_of(first))
                            .map(|&n| racks.rack_of(n))
                            .collect();
                        rs.sort_unstable();
                        rs.dedup();
                        rs
                    };
                    if let Some(&remote_rack) = other_racks.choose(rng) {
                        let candidates: Vec<NodeId> = pool
                            .iter()
                            .copied()
                            .filter(|&n| racks.rack_of(n) == remote_rack && !chosen.contains(&n))
                            .collect();
                        for n in candidates {
                            if chosen.len() >= replication.min(3) {
                                break;
                            }
                            chosen.push(n);
                        }
                    }
                    // Fill any remainder (r > 3, tiny clusters, single
                    // rack) from the shuffled pool.
                    let leftovers: Vec<NodeId> = pool
                        .iter()
                        .copied()
                        .filter(|n| !chosen.contains(n))
                        .collect();
                    for n in leftovers {
                        if chosen.len() >= replication {
                            break;
                        }
                        chosen.push(n);
                    }
                }
                chosen
            }
        };
        chosen.sort_unstable();
        debug_assert!(
            chosen.windows(2).all(|w| w[0] != w[1]),
            "replicas must land on distinct nodes"
        );
        chosen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn nodes(n: u32) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    #[test]
    fn random_placement_gives_distinct_sorted_nodes() {
        let alive = nodes(10);
        let mut rng = StdRng::seed_from_u64(3);
        for seq in 0..50 {
            let locs = Placement::Random.place(seq, 3, &alive, &mut rng);
            assert_eq!(locs.len(), 3);
            assert!(locs.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn random_placement_covers_all_nodes_eventually() {
        let alive = nodes(8);
        let mut rng = StdRng::seed_from_u64(11);
        let mut hit = [false; 8];
        for seq in 0..200 {
            for n in Placement::Random.place(seq, 3, &alive, &mut rng) {
                hit[n.index()] = true;
            }
        }
        assert!(hit.iter().all(|&h| h));
    }

    #[test]
    fn writer_local_always_includes_writer() {
        let alive = nodes(6);
        let mut rng = StdRng::seed_from_u64(5);
        for seq in 0..20 {
            let locs = Placement::WriterLocal { writer: NodeId(2) }.place(seq, 3, &alive, &mut rng);
            assert!(locs.contains(&NodeId(2)), "seq {seq}: {locs:?}");
            assert_eq!(locs.len(), 3);
        }
    }

    #[test]
    fn round_robin_is_even() {
        let alive = nodes(5);
        let mut rng = StdRng::seed_from_u64(0);
        let mut counts = vec![0usize; 5];
        for seq in 0..10 {
            for n in Placement::RoundRobin.place(seq, 2, &alive, &mut rng) {
                counts[n.index()] += 1;
            }
        }
        // 10 chunks x 2 replicas over 5 nodes = exactly 4 each.
        assert!(counts.iter().all(|&c| c == 4), "{counts:?}");
    }

    #[test]
    fn replication_one_is_allowed() {
        let alive = nodes(3);
        let mut rng = StdRng::seed_from_u64(1);
        let locs = Placement::Random.place(0, 1, &alive, &mut rng);
        assert_eq!(locs.len(), 1);
    }

    #[test]
    #[should_panic(expected = "exceeds alive node count")]
    fn rejects_replication_above_alive() {
        let alive = nodes(2);
        let mut rng = StdRng::seed_from_u64(1);
        Placement::Random.place(0, 3, &alive, &mut rng);
    }

    #[test]
    fn rack_aware_spans_exactly_two_racks_at_r3() {
        let alive = nodes(12);
        let racks = RackMap::uniform(12, 4);
        let placement = Placement::RackAware {
            racks: racks.clone(),
        };
        let mut rng = StdRng::seed_from_u64(8);
        for seq in 0..50 {
            let locs = placement.place(seq, 3, &alive, &mut rng);
            assert_eq!(locs.len(), 3);
            let mut rs: Vec<u32> = locs.iter().map(|&n| racks.rack_of(n)).collect();
            rs.sort_unstable();
            rs.dedup();
            assert_eq!(
                rs.len(),
                2,
                "seq {seq}: replicas must span two racks, got {locs:?}"
            );
        }
    }

    #[test]
    fn rack_aware_single_rack_degrades_gracefully() {
        let alive = nodes(4);
        let racks = RackMap::uniform(4, 4); // everything in rack 0
        let placement = Placement::RackAware { racks };
        let mut rng = StdRng::seed_from_u64(3);
        let locs = placement.place(0, 3, &alive, &mut rng);
        assert_eq!(locs.len(), 3);
    }

    #[test]
    fn rack_aware_replication_one_is_single_node() {
        let alive = nodes(8);
        let racks = RackMap::uniform(8, 4);
        let placement = Placement::RackAware { racks };
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(placement.place(0, 1, &alive, &mut rng).len(), 1);
    }
}
