//! # opass-dfs — an HDFS-model distributed file system substrate
//!
//! The Opass paper runs against HDFS; this crate models exactly the slice of
//! HDFS that the paper's analysis and optimizer depend on:
//!
//! * a [`Namenode`] holding the chunk→replica-locations block map, with
//!   `r`-way replication (default 3) and 64 MB chunks;
//! * write-time [`Placement`] policies (random — the default the paper
//!   analyzes — plus writer-local and round-robin for ablations);
//! * read-time [`ReplicaChoice`] policies (prefer-local-else-random — the
//!   HDFS default — plus fully random and planner-directed);
//! * [`LayoutSnapshot`] — the layout retrieval Opass performs before
//!   matching;
//! * node addition and decommission with re-replication, the churn the
//!   paper blames for skewed distributions;
//! * deterministic synthetic chunk payloads (see [`datanode`]) so examples
//!   can verify end-to-end data integrity.
//!
//! ```
//! use opass_dfs::{DatasetSpec, DfsConfig, Namenode, Placement};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut nn = Namenode::new(8, DfsConfig::default());
//! let mut rng = StdRng::seed_from_u64(1);
//! let ds = nn.create_dataset(
//!     &DatasetSpec::uniform("demo", 16, 64 << 20),
//!     &Placement::Random,
//!     &mut rng,
//! );
//! let chunks = &nn.dataset(ds).unwrap().chunks;
//! assert_eq!(nn.locate(chunks[0]).unwrap().len(), 3); // 3 replicas
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod chunk;
pub mod datanode;
pub mod delta;
pub mod error;
pub mod ids;
pub mod layout;
pub mod namenode;
pub mod placement;
pub mod reader;
pub mod topology;

pub use chunk::{ChunkMeta, DatasetMeta, DatasetSpec, DEFAULT_CHUNK_SIZE};
pub use delta::{LayoutDelta, LayoutEvent};
pub use error::DfsError;
pub use ids::{ChunkId, DatasetId, NodeId};
pub use layout::{ChunkIndex, ChunkLayout, LayoutSnapshot};
pub use namenode::{DfsConfig, Namenode};
pub use placement::Placement;
pub use reader::ReplicaChoice;
pub use topology::RackMap;
