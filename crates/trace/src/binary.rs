//! Compact binary framing for multi-GB traces.
//!
//! Layout: the 8-byte magic [`BINARY_MAGIC`], a little-endian `u64`
//! record count, then `count` fixed-width 32-byte records
//! (`time_us: u64, client: u32, dataset: u32, chunk: u64, bytes: u64`,
//! all little-endian). Fixed-width records make the parallel split
//! trivial: any record range is a byte range, no newline snapping
//! needed.

use crate::record::{TraceError, TraceRecord};

/// Magic bytes opening every binary trace; the trailing `1` is the
/// format version.
pub const BINARY_MAGIC: [u8; 8] = *b"OPTRACE1";

/// Bytes per encoded record.
const RECORD_BYTES: usize = 32;
/// Bytes before the first record: magic + count.
const HEADER_BYTES: usize = 16;

/// Serializes records to the binary framing. The inverse of
/// [`parse_binary`].
pub fn write_binary(records: &[TraceRecord]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_BYTES + RECORD_BYTES * records.len());
    out.extend_from_slice(&BINARY_MAGIC);
    out.extend_from_slice(&(records.len() as u64).to_le_bytes());
    for r in records {
        out.extend_from_slice(&r.time_us.to_le_bytes());
        out.extend_from_slice(&r.client.to_le_bytes());
        out.extend_from_slice(&r.dataset.to_le_bytes());
        out.extend_from_slice(&r.chunk.to_le_bytes());
        out.extend_from_slice(&r.bytes.to_le_bytes());
    }
    out
}

/// Decodes a binary trace sequentially. Equivalent to
/// [`parse_binary_with_threads`] with one thread.
pub fn parse_binary(input: &[u8]) -> Result<Vec<TraceRecord>, TraceError> {
    parse_binary_with_threads(input, 1)
}

/// Decodes a binary trace on up to `threads` scoped threads. Fixed-width
/// records are split by record ranges and the per-range outputs are
/// concatenated by joining workers in spawn order, so the result is
/// bit-identical at any thread count.
///
/// # Errors
///
/// [`TraceError::BadBinary`] on bad magic, a truncated body, or trailing
/// garbage; [`TraceError::Empty`] when the count is zero.
pub fn parse_binary_with_threads(
    input: &[u8],
    threads: usize,
) -> Result<Vec<TraceRecord>, TraceError> {
    if input.len() < HEADER_BYTES {
        return Err(TraceError::BadBinary {
            offset: input.len(),
            reason: "shorter than the 16-byte header",
        });
    }
    if input[..8] != BINARY_MAGIC {
        return Err(TraceError::BadBinary {
            offset: 0,
            reason: "bad magic (expected OPTRACE1)",
        });
    }
    let count = u64::from_le_bytes(input[8..16].try_into().expect("8-byte slice")) as usize;
    if count == 0 {
        return Err(TraceError::Empty);
    }
    let body = &input[HEADER_BYTES..];
    let expected = count
        .checked_mul(RECORD_BYTES)
        .ok_or(TraceError::BadBinary {
            offset: 8,
            reason: "record count overflows",
        })?;
    if body.len() < expected {
        return Err(TraceError::BadBinary {
            offset: input.len(),
            reason: "truncated record body",
        });
    }
    if body.len() > expected {
        return Err(TraceError::BadBinary {
            offset: HEADER_BYTES + expected,
            reason: "trailing bytes after the last record",
        });
    }

    let threads = threads.max(1).min(count);
    if threads < 2 {
        return Ok(decode_range(body));
    }
    // Split by record ranges; every boundary is a record boundary by
    // construction, so no snapping is needed.
    let mut ranges = Vec::with_capacity(threads);
    let mut start = 0usize;
    for i in 1..=threads {
        let end = count * i / threads;
        if end > start {
            ranges.push(&body[start * RECORD_BYTES..end * RECORD_BYTES]);
        }
        start = end;
    }
    let parts: Vec<Vec<TraceRecord>> = std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .iter()
            .map(|range| scope.spawn(|| decode_range(range)))
            .collect();
        // Join in spawn order so the merge is independent of worker
        // completion order.
        handles
            .into_iter()
            .map(|h| h.join().expect("decoder worker panicked"))
            .collect()
    });
    let mut records = Vec::with_capacity(count);
    for part in parts {
        records.extend(part);
    }
    Ok(records)
}

/// Decodes a byte range holding whole records (length checked by the
/// caller).
fn decode_range(body: &[u8]) -> Vec<TraceRecord> {
    let u64_at = |rec: &[u8], at: usize| {
        u64::from_le_bytes(rec[at..at + 8].try_into().expect("8-byte slice"))
    };
    let u32_at = |rec: &[u8], at: usize| {
        u32::from_le_bytes(rec[at..at + 4].try_into().expect("4-byte slice"))
    };
    body.chunks_exact(RECORD_BYTES)
        .map(|rec| TraceRecord {
            time_us: u64_at(rec, 0),
            client: u32_at(rec, 8),
            dataset: u32_at(rec, 12),
            chunk: u64_at(rec, 16),
            bytes: u64_at(rec, 24),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: u64) -> Vec<TraceRecord> {
        (0..n)
            .map(|i| TraceRecord {
                time_us: i * 137,
                client: (i % 11) as u32,
                dataset: (i % 5) as u32,
                chunk: i * 3 % 640,
                bytes: 64 << 20,
            })
            .collect()
    }

    #[test]
    fn binary_round_trips() {
        let records = sample(100);
        let bytes = write_binary(&records);
        assert_eq!(bytes.len(), 16 + 32 * 100);
        assert_eq!(parse_binary(&bytes).unwrap(), records);
    }

    #[test]
    fn parallel_decode_matches_sequential() {
        let records = sample(257);
        let bytes = write_binary(&records);
        for threads in [2, 3, 8, 64] {
            assert_eq!(parse_binary_with_threads(&bytes, threads).unwrap(), records);
        }
    }

    #[test]
    fn rejects_malformed_framing() {
        let good = write_binary(&sample(3));
        let cases: Vec<(Vec<u8>, &str)> = vec![
            (b"short".to_vec(), "shorter than the 16-byte header"),
            (
                {
                    let mut b = good.clone();
                    b[0] = b'X';
                    b
                },
                "bad magic (expected OPTRACE1)",
            ),
            (good[..good.len() - 1].to_vec(), "truncated record body"),
            (
                {
                    let mut b = good.clone();
                    b.push(0);
                    b
                },
                "trailing bytes after the last record",
            ),
        ];
        for (bytes, want) in cases {
            match parse_binary(&bytes) {
                Err(TraceError::BadBinary { reason, .. }) => assert_eq!(reason, want),
                other => panic!("expected BadBinary({want}), got {other:?}"),
            }
        }
        let empty = write_binary(&[]);
        assert_eq!(parse_binary(&empty), Err(TraceError::Empty));
    }
}
