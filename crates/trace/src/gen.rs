//! Seeded trace generation: Zipfian dataset popularity, a diurnal
//! intensity curve, and flash-crowd bursts.
//!
//! Generation is a pure function of the [`TraceSpec`]: one explicitly
//! seeded [`StdRng`] drives every draw in a fixed order, all float
//! accumulation is sequential, and no wall clock is consulted — equal
//! specs produce byte-identical traces.

use crate::record::TraceRecord;
use crate::spec::TraceSpec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates the spec's records, sorted by time (times are produced
/// monotonically). Panics only if the spec fails
/// [`TraceSpec::validate`] — validate first when the spec comes from
/// user input.
pub fn generate(spec: &TraceSpec) -> Vec<TraceRecord> {
    spec.validate().expect("invalid TraceSpec");
    let mut rng = StdRng::seed_from_u64(spec.seed);

    // Base Zipf weights: dataset d has weight 1/(d+1)^s.
    let base_weights: Vec<f64> = (0..spec.datasets)
        .map(|d| 1.0 / f64::from(d + 1).powf(spec.zipf_exponent))
        .collect();
    let mut base_total = 0.0f64;
    for w in &base_weights {
        base_total += w;
    }

    // Arrival intensity is `base_rate · diurnal(t) · crowd(t)` where
    // `crowd` is the total-weight inflation from active bursts, so a
    // flash crowd both skews popularity and raises the arrival rate.
    let base_rate = spec.records as f64 / spec.duration_s;

    let mut records = Vec::with_capacity(spec.records as usize);
    let mut t = 0.0f64;
    let mut last_us = 0u64;
    for i in 0..spec.records {
        // Per-dataset multipliers for bursts active at time t, and the
        // resulting total weight.
        let mut total = base_total;
        for b in &spec.bursts {
            if t >= b.start_s && t < b.start_s + b.duration_s {
                total += base_weights[b.dataset as usize] * (b.multiplier - 1.0);
            }
        }
        let diurnal = 1.0
            + spec.diurnal_amplitude
                * (2.0 * std::f64::consts::PI * t / spec.diurnal_period_s).sin();
        let intensity = base_rate * diurnal * (total / base_total);

        // Exponential inter-arrival at the current intensity. `u` is in
        // [0, 1) so `1 - u` is in (0, 1] and the log is finite.
        if i > 0 {
            let u: f64 = rng.gen_range(0.0..1.0);
            t += -(1.0 - u).ln() / intensity;
        }

        // Sample the dataset from the burst-adjusted weights.
        let mut pick: f64 = rng.gen_range(0.0..total);
        let mut dataset = spec.datasets - 1;
        for (d, w) in base_weights.iter().enumerate() {
            let mut w = *w;
            for b in &spec.bursts {
                if b.dataset as usize == d && t >= b.start_s && t < b.start_s + b.duration_s {
                    w *= b.multiplier;
                }
            }
            if pick < w {
                dataset = d as u32;
                break;
            }
            pick -= w;
        }

        // Times are emitted as monotone microseconds: ties collapse to
        // the same microsecond rather than reordering.
        let time_us = ((t * 1e6) as u64).max(last_us);
        last_us = time_us;
        records.push(TraceRecord {
            time_us,
            client: rng.gen_range(0..spec.clients),
            dataset,
            chunk: rng.gen_range(0..spec.chunks_per_dataset),
            bytes: spec.chunk_size,
        });
    }
    records
}

/// Generates the spec's records and serializes them to the text format,
/// with the spec's name and seed echoed into a comment line.
pub fn generate_text(spec: &TraceSpec) -> String {
    let records = generate(spec);
    let mut out = crate::parser::write_text(&records);
    // Splice a provenance comment after the two header lines.
    let insert_at = nth_line_start(&out, 2);
    out.insert_str(
        insert_at,
        &format!(
            "# generated: spec={} seed={} records={}\n",
            spec.name,
            spec.seed,
            records.len()
        ),
    );
    out
}

/// Byte offset where the `n`-th (0-based) line starts.
fn nth_line_start(text: &str, n: usize) -> usize {
    let mut at = 0;
    for _ in 0..n {
        match text[at..].find('\n') {
            Some(off) => at += off + 1,
            None => return text.len(),
        }
    }
    at
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_text;

    fn small_spec() -> TraceSpec {
        TraceSpec {
            records: 2_000,
            duration_s: 60.0,
            clients: 8,
            datasets: 4,
            chunks_per_dataset: 64,
            bursts: vec![crate::spec::BurstSpec {
                start_s: 20.0,
                duration_s: 10.0,
                dataset: 3,
                multiplier: 50.0,
            }],
            ..TraceSpec::default()
        }
    }

    #[test]
    fn same_spec_same_bytes() {
        let spec = small_spec();
        assert_eq!(generate_text(&spec), generate_text(&spec));
        let mut other = spec.clone();
        other.seed += 1;
        assert_ne!(generate_text(&other), generate_text(&spec));
    }

    #[test]
    fn output_is_valid_sorted_and_in_range() {
        let spec = small_spec();
        let records = generate(&spec);
        assert_eq!(records.len(), spec.records as usize);
        for pair in records.windows(2) {
            assert!(pair[0].time_us <= pair[1].time_us);
        }
        for r in &records {
            assert!(r.client < spec.clients);
            assert!(r.dataset < spec.datasets);
            assert!(r.chunk < spec.chunks_per_dataset);
            assert_eq!(r.bytes, spec.chunk_size);
        }
        // The serialized form parses back to the same records.
        assert_eq!(parse_text(&generate_text(&spec)).unwrap(), records);
    }

    #[test]
    fn zipf_skews_and_burst_spikes() {
        let spec = small_spec();
        let records = generate(&spec);
        let mut per_dataset = vec![0usize; spec.datasets as usize];
        let mut burst_hits = 0usize;
        let mut burst_total = 0usize;
        for r in &records {
            per_dataset[r.dataset as usize] += 1;
            let t = r.time_seconds();
            if (20.0..30.0).contains(&t) {
                burst_total += 1;
                if r.dataset == 3 {
                    burst_hits += 1;
                }
            }
        }
        // Zipf: dataset 0 is the most popular overall.
        assert!(per_dataset[0] > per_dataset[1]);
        // Flash crowd: during the burst window, the burst dataset
        // dominates even though it is the least popular at rest.
        assert!(burst_total > 0);
        assert!(
            burst_hits * 2 > burst_total,
            "burst dataset got {burst_hits}/{burst_total} accesses in its window"
        );
    }
}
