//! The access record, its errors, and the line-level text encoding.

use std::fmt;

/// The mandatory first line of every text trace. The version is part of
/// the line so old parsers reject new majors instead of misreading them,
/// and the leading `#` keeps the header a comment for tools that only
/// know "skip `#` lines".
pub const TEXT_HEADER: &str = "#opass-trace v1";

/// One access record: client `client` read `bytes` bytes of chunk
/// `chunk` of dataset `dataset` at `time_us` microseconds into the
/// trace.
///
/// Time is stored as integer microseconds — the text field `time_s`
/// (seconds, up to six decimals) converts to and from it exactly, so no
/// float formatting or parsing sits on the round-trip path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceRecord {
    /// Microseconds since the start of the trace.
    pub time_us: u64,
    /// Issuing client id.
    pub client: u32,
    /// Dataset id.
    pub dataset: u32,
    /// Chunk index within the dataset.
    pub chunk: u64,
    /// Bytes read.
    pub bytes: u64,
}

impl TraceRecord {
    /// Access time in seconds.
    pub fn time_seconds(&self) -> f64 {
        self.time_us as f64 / 1e6
    }

    /// Appends the record's text line (including the trailing newline).
    pub fn write_line(&self, out: &mut String) {
        use fmt::Write as _;
        writeln!(
            out,
            "{}.{:06},{},{},{},{}",
            self.time_us / 1_000_000,
            self.time_us % 1_000_000,
            self.client,
            self.dataset,
            self.chunk,
            self.bytes
        )
        .expect("writing to a String cannot fail");
    }

    /// Parses one record line (already stripped of comments/blanks).
    /// `line_no` is the 1-based line number used in errors.
    pub fn parse_line(line: &str, line_no: usize) -> Result<TraceRecord, TraceError> {
        let mut fields = line.split(',');
        let (Some(time), Some(client), Some(dataset), Some(chunk), Some(bytes), None) = (
            fields.next(),
            fields.next(),
            fields.next(),
            fields.next(),
            fields.next(),
            fields.next(),
        ) else {
            return Err(TraceError::BadShape { line: line_no });
        };
        let bad = |field: &str| TraceError::BadValue {
            line: line_no,
            field: field.trim().to_string(),
        };
        Ok(TraceRecord {
            time_us: parse_time_us(time.trim()).ok_or_else(|| bad(time))?,
            client: client.trim().parse().map_err(|_| bad(client))?,
            dataset: dataset.trim().parse().map_err(|_| bad(dataset))?,
            chunk: chunk.trim().parse().map_err(|_| bad(chunk))?,
            bytes: bytes.trim().parse().map_err(|_| bad(bytes))?,
        })
    }
}

/// Parses a `time_s` field (`12`, `12.5`, `12.345678`) to integer
/// microseconds. At most six fractional digits; no signs, no exponents.
fn parse_time_us(field: &str) -> Option<u64> {
    let (secs, frac) = match field.split_once('.') {
        Some((_, "")) => return None, // `1.` — empty fraction is malformed
        Some((s, f)) => (s, f),
        None => (field, ""),
    };
    if secs.is_empty() || frac.len() > 6 || !frac.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    let secs: u64 = if secs.bytes().all(|b| b.is_ascii_digit()) {
        secs.parse().ok()?
    } else {
        return None;
    };
    let mut micros: u64 = 0;
    for b in frac.bytes() {
        micros = micros * 10 + u64::from(b - b'0');
    }
    micros *= 10u64.pow(6 - frac.len() as u32);
    secs.checked_mul(1_000_000)?.checked_add(micros)
}

/// Errors from parsing a trace (text or binary).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// The first line was not a known `#opass-trace` header.
    BadHeader {
        /// What the first line actually was (truncated).
        found: String,
    },
    /// A record line did not have exactly five comma-separated fields.
    BadShape {
        /// 1-based line number.
        line: usize,
    },
    /// A field failed to parse as a number, or was out of range.
    BadValue {
        /// 1-based line number.
        line: usize,
        /// The offending field text.
        field: String,
    },
    /// The binary framing was malformed.
    BadBinary {
        /// Byte offset where the problem was detected.
        offset: usize,
        /// What was wrong.
        reason: &'static str,
    },
    /// The trace contained no records.
    Empty,
}

impl TraceError {
    /// Shifts the error's line number by `delta` lines — how a chunked
    /// parser converts a worker's chunk-relative error into the global
    /// line number the sequential parser would have reported.
    pub fn offset_lines(self, delta: usize) -> TraceError {
        match self {
            TraceError::BadShape { line } => TraceError::BadShape { line: line + delta },
            TraceError::BadValue { line, field } => TraceError::BadValue {
                line: line + delta,
                field,
            },
            other => other,
        }
    }
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::BadHeader { found } => {
                write!(f, "missing `{TEXT_HEADER}` header (first line: {found:?})")
            }
            TraceError::BadShape { line } => {
                write!(
                    f,
                    "line {line}: expected `time_s,client,dataset,chunk,bytes`"
                )
            }
            TraceError::BadValue { line, field } => {
                write!(f, "line {line}: cannot parse {field:?}")
            }
            TraceError::BadBinary { offset, reason } => {
                write!(f, "binary trace, byte {offset}: {reason}")
            }
            TraceError::Empty => write!(f, "trace contains no records"),
        }
    }
}

impl std::error::Error for TraceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_round_trips_exactly() {
        let rec = TraceRecord {
            time_us: 12_345_678,
            client: 7,
            dataset: 3,
            chunk: 4095,
            bytes: 64 << 20,
        };
        let mut line = String::new();
        rec.write_line(&mut line);
        assert_eq!(line, "12.345678,7,3,4095,67108864\n");
        let parsed = TraceRecord::parse_line(line.trim_end(), 1).unwrap();
        assert_eq!(parsed, rec);
    }

    #[test]
    fn time_field_accepts_short_fractions() {
        assert_eq!(parse_time_us("12"), Some(12_000_000));
        assert_eq!(parse_time_us("12.5"), Some(12_500_000));
        assert_eq!(parse_time_us("0.000001"), Some(1));
        assert_eq!(parse_time_us("0"), Some(0));
    }

    #[test]
    fn time_field_rejects_junk() {
        for bad in ["", ".", "1.", "-1", "1.2345678", "1e3", "1.2.3", "x"] {
            assert_eq!(parse_time_us(bad), None, "{bad:?} should not parse");
        }
    }

    #[test]
    fn shape_and_value_errors_carry_line_numbers() {
        assert_eq!(
            TraceRecord::parse_line("1,2,3,4", 9),
            Err(TraceError::BadShape { line: 9 })
        );
        assert_eq!(
            TraceRecord::parse_line("1,2,3,4,x", 9),
            Err(TraceError::BadValue {
                line: 9,
                field: "x".into()
            })
        );
        assert_eq!(
            TraceError::BadShape { line: 2 }.offset_lines(40),
            TraceError::BadShape { line: 42 }
        );
    }
}
