//! The generator's JSON-serializable parameter block.

use opass_json::Json;

/// A flash-crowd burst: between `start_s` and `start_s + duration_s`,
/// accesses to `dataset` are `multiplier`× more likely and the overall
/// arrival rate rises with them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurstSpec {
    /// Burst start, seconds into the trace.
    pub start_s: f64,
    /// Burst length, seconds.
    pub duration_s: f64,
    /// The dataset the crowd flashes onto.
    pub dataset: u32,
    /// Popularity multiplier applied to that dataset while the burst is
    /// active (≥ 1).
    pub multiplier: f64,
}

/// Everything the trace generator needs. [`crate::generate`] is a pure
/// function of this spec: equal specs produce byte-identical traces.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSpec {
    /// Human-readable name, echoed into the trace's comment header.
    pub name: String,
    /// Master RNG seed.
    pub seed: u64,
    /// Number of records to emit.
    pub records: u64,
    /// Trace length in seconds; arrival intensity is scaled so the
    /// expected last arrival lands near this horizon.
    pub duration_s: f64,
    /// Number of distinct clients (ids `0..clients`).
    pub clients: u32,
    /// Number of datasets (ids `0..datasets`).
    pub datasets: u32,
    /// Chunks per dataset (chunk indices `0..chunks_per_dataset`).
    pub chunks_per_dataset: u64,
    /// Bytes read per access (one chunk).
    pub chunk_size: u64,
    /// Zipf exponent `s` for dataset popularity: dataset `d` has weight
    /// `1/(d+1)^s`. `0` means uniform.
    pub zipf_exponent: f64,
    /// Diurnal swing amplitude in `[0, 1)`: intensity follows
    /// `1 + amplitude · sin(2πt/period)`.
    pub diurnal_amplitude: f64,
    /// Diurnal period in seconds.
    pub diurnal_period_s: f64,
    /// Flash-crowd bursts, applied on top of the diurnal curve.
    pub bursts: Vec<BurstSpec>,
}

impl Default for TraceSpec {
    fn default() -> Self {
        TraceSpec {
            name: "example".to_string(),
            seed: 0xACCE55,
            records: 1_000_000,
            duration_s: 3600.0,
            clients: 64,
            datasets: 8,
            chunks_per_dataset: 640,
            chunk_size: 64 << 20,
            zipf_exponent: 1.1,
            diurnal_amplitude: 0.5,
            diurnal_period_s: 3600.0,
            bursts: vec![BurstSpec {
                start_s: 1200.0,
                duration_s: 300.0,
                dataset: 2,
                multiplier: 8.0,
            }],
        }
    }
}

impl TraceSpec {
    /// Serializes to a JSON object (pretty-print with
    /// [`Json::to_pretty`]).
    pub fn to_json(&self) -> Json {
        Json::object([
            ("name".to_string(), Json::from(self.name.as_str())),
            ("seed".to_string(), Json::from(self.seed)),
            ("records".to_string(), Json::from(self.records)),
            ("duration_s".to_string(), Json::from(self.duration_s)),
            ("clients".to_string(), Json::from(self.clients)),
            ("datasets".to_string(), Json::from(self.datasets)),
            (
                "chunks_per_dataset".to_string(),
                Json::from(self.chunks_per_dataset),
            ),
            ("chunk_size".to_string(), Json::from(self.chunk_size)),
            ("zipf_exponent".to_string(), Json::from(self.zipf_exponent)),
            (
                "diurnal_amplitude".to_string(),
                Json::from(self.diurnal_amplitude),
            ),
            (
                "diurnal_period_s".to_string(),
                Json::from(self.diurnal_period_s),
            ),
            (
                "bursts".to_string(),
                Json::array(self.bursts.iter().map(|b| {
                    Json::object([
                        ("start_s".to_string(), Json::from(b.start_s)),
                        ("duration_s".to_string(), Json::from(b.duration_s)),
                        ("dataset".to_string(), Json::from(b.dataset)),
                        ("multiplier".to_string(), Json::from(b.multiplier)),
                    ])
                })),
            ),
        ])
    }

    /// Parses and validates a spec from JSON text. Missing fields fall
    /// back to [`TraceSpec::default`], so a spec file only has to name
    /// what it changes.
    ///
    /// # Errors
    ///
    /// A human-readable message on malformed JSON, a wrongly-typed
    /// field, or a value [`TraceSpec::validate`] rejects.
    pub fn from_json_str(text: &str) -> Result<TraceSpec, String> {
        let v = Json::parse(text).map_err(|e| format!("bad spec JSON: {e}"))?;
        let d = TraceSpec::default();
        let u64_field = |key: &str, fallback: u64| -> Result<u64, String> {
            match v.get(key) {
                Some(j) => j
                    .as_u64()
                    .ok_or_else(|| format!("field {key:?} must be an unsigned integer")),
                None => Ok(fallback),
            }
        };
        let f64_field = |v: &Json, key: &str, fallback: f64| -> Result<f64, String> {
            match v.get(key) {
                Some(j) => j
                    .as_f64()
                    .ok_or_else(|| format!("field {key:?} must be a number")),
                None => Ok(fallback),
            }
        };
        let bursts = match v.get("bursts") {
            Some(j) => {
                let items = j
                    .as_array()
                    .ok_or_else(|| "field \"bursts\" must be an array".to_string())?;
                items
                    .iter()
                    .map(|b| {
                        Ok(BurstSpec {
                            start_s: f64_field(b, "start_s", 0.0)?,
                            duration_s: f64_field(b, "duration_s", 0.0)?,
                            dataset: b
                                .get("dataset")
                                .and_then(Json::as_u64)
                                .and_then(|d| u32::try_from(d).ok())
                                .ok_or_else(|| {
                                    "burst field \"dataset\" must be a u32".to_string()
                                })?,
                            multiplier: f64_field(b, "multiplier", 1.0)?,
                        })
                    })
                    .collect::<Result<Vec<BurstSpec>, String>>()?
            }
            None => d.bursts.clone(),
        };
        let spec = TraceSpec {
            name: match v.get("name") {
                Some(j) => j
                    .as_str()
                    .ok_or_else(|| "field \"name\" must be a string".to_string())?
                    .to_string(),
                None => d.name.clone(),
            },
            seed: u64_field("seed", d.seed)?,
            records: u64_field("records", d.records)?,
            duration_s: f64_field(&v, "duration_s", d.duration_s)?,
            clients: u64_field("clients", u64::from(d.clients))?
                .try_into()
                .map_err(|_| "field \"clients\" must fit in u32".to_string())?,
            datasets: u64_field("datasets", u64::from(d.datasets))?
                .try_into()
                .map_err(|_| "field \"datasets\" must fit in u32".to_string())?,
            chunks_per_dataset: u64_field("chunks_per_dataset", d.chunks_per_dataset)?,
            chunk_size: u64_field("chunk_size", d.chunk_size)?,
            zipf_exponent: f64_field(&v, "zipf_exponent", d.zipf_exponent)?,
            diurnal_amplitude: f64_field(&v, "diurnal_amplitude", d.diurnal_amplitude)?,
            diurnal_period_s: f64_field(&v, "diurnal_period_s", d.diurnal_period_s)?,
            bursts,
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Checks the spec is generatable.
    ///
    /// # Errors
    ///
    /// A message naming the first offending field.
    pub fn validate(&self) -> Result<(), String> {
        if self.records == 0 {
            return Err("records must be at least 1".to_string());
        }
        if self.clients == 0 || self.datasets == 0 || self.chunks_per_dataset == 0 {
            return Err("clients, datasets, and chunks_per_dataset must be at least 1".to_string());
        }
        // NaN fails every comparison below, so NaN inputs are rejected.
        let positive = |x: f64| x.is_finite() && x > 0.0;
        if !positive(self.duration_s) {
            return Err("duration_s must be positive".to_string());
        }
        if !(self.zipf_exponent.is_finite() && self.zipf_exponent >= 0.0) {
            return Err("zipf_exponent must be non-negative".to_string());
        }
        if !(0.0..1.0).contains(&self.diurnal_amplitude) {
            return Err("diurnal_amplitude must be in [0, 1)".to_string());
        }
        if !positive(self.diurnal_period_s) {
            return Err("diurnal_period_s must be positive".to_string());
        }
        for b in &self.bursts {
            if b.dataset >= self.datasets {
                return Err(format!(
                    "burst dataset {} out of range (datasets = {})",
                    b.dataset, self.datasets
                ));
            }
            if !(b.multiplier.is_finite() && b.multiplier >= 1.0) {
                return Err("burst multiplier must be at least 1".to_string());
            }
            if !(b.start_s.is_finite() && b.start_s >= 0.0 && positive(b.duration_s)) {
                return Err("burst start_s/duration_s must be non-negative/positive".to_string());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trips() {
        let spec = TraceSpec::default();
        let text = spec.to_json().to_pretty();
        let back = TraceSpec::from_json_str(&text).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn missing_fields_fall_back_to_defaults() {
        let spec = TraceSpec::from_json_str(r#"{"records": 42, "seed": 9}"#).unwrap();
        assert_eq!(spec.records, 42);
        assert_eq!(spec.seed, 9);
        assert_eq!(spec.datasets, TraceSpec::default().datasets);
    }

    #[test]
    fn validation_rejects_bad_values() {
        for bad in [
            r#"{"records": 0}"#,
            r#"{"datasets": 0}"#,
            r#"{"duration_s": 0}"#,
            r#"{"diurnal_amplitude": 1.5}"#,
            r#"{"bursts": [{"dataset": 99, "duration_s": 1, "multiplier": 2}]}"#,
            r#"{"bursts": [{"dataset": 0, "duration_s": 1, "multiplier": 0.5}]}"#,
        ] {
            assert!(TraceSpec::from_json_str(bad).is_err(), "{bad}");
        }
        assert!(TraceSpec::from_json_str("not json").is_err());
        assert!(TraceSpec::from_json_str(r#"{"records": "many"}"#).is_err());
    }
}
