//! Sequential and chunked-parallel parsing of the text trace format.
//!
//! The parallel path follows the 1BRC recipe: cut the body into
//! `threads` byte ranges snapped to newline boundaries
//! ([`crate::lines::split_at_newlines`]), parse each range on a scoped
//! thread, then merge by joining the workers **in spawn order**. Because
//! chunk boundaries never split a record and each worker counts its own
//! lines, the concatenated output — and the first error, if any — is
//! bit-identical to the sequential parse at any thread count.

use crate::lines::{newline_count, split_at_newlines, RecordLines};
use crate::record::{TraceError, TraceRecord, TEXT_HEADER};

/// Parses a text trace sequentially. Equivalent to
/// [`parse_text_with_threads`] with one thread.
pub fn parse_text(input: &str) -> Result<Vec<TraceRecord>, TraceError> {
    parse_text_with_threads(input, 1)
}

/// Parses a text trace on up to `threads` scoped threads.
///
/// Bit-identical to the sequential parse: same records in the same
/// order, and on malformed input the same first error (with the global
/// line number) the sequential pass would report.
///
/// # Errors
///
/// [`TraceError::BadHeader`] when the first line is not
/// [`TEXT_HEADER`], [`TraceError::BadShape`] / [`TraceError::BadValue`]
/// for the first malformed record, [`TraceError::Empty`] when no
/// records remain after comments and blanks.
pub fn parse_text_with_threads(
    input: &str,
    threads: usize,
) -> Result<Vec<TraceRecord>, TraceError> {
    let body = strip_header(input)?;
    let chunks = split_at_newlines(body, threads.max(1));
    // The header is line 1, so the body starts at line 2.
    let records = if chunks.len() < 2 {
        parse_chunk(body, 2)?
    } else {
        // Each worker parses its chunk with chunk-local line numbers; the
        // spawn-order join below restores global numbering by summing the
        // newline counts of the chunks before it.
        let partials: Vec<Result<Vec<TraceRecord>, TraceError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .iter()
                .map(|chunk| scope.spawn(|| parse_chunk(chunk, 1)))
                .collect();
            // Join in spawn order: the merge must not depend on which
            // worker finishes first.
            handles
                .into_iter()
                .map(|h| h.join().expect("parser worker panicked"))
                .collect()
        });
        let mut records = Vec::new();
        let mut lines_before = 1; // the header line
        for (chunk, partial) in chunks.iter().zip(partials) {
            match partial {
                Ok(part) => records.extend(part),
                // The first failing chunk in input order holds the first
                // failing line in input order (workers stop at their
                // first error), so this matches the sequential report.
                Err(e) => return Err(e.offset_lines(lines_before)),
            }
            lines_before += newline_count(chunk);
        }
        records
    };
    if records.is_empty() {
        return Err(TraceError::Empty);
    }
    Ok(records)
}

/// Serializes records to the text format, header included. The inverse
/// of [`parse_text`]: `parse_text(&write_text(r)) == Ok(r)` for any
/// non-empty `r`.
pub fn write_text(records: &[TraceRecord]) -> String {
    // ~26 bytes per typical line; headroom avoids doubling reallocations.
    let mut out = String::with_capacity(32 * records.len() + 64);
    out.push_str(TEXT_HEADER);
    out.push('\n');
    out.push_str("# columns: time_s,client,dataset,chunk,bytes\n");
    for record in records {
        record.write_line(&mut out);
    }
    out
}

/// Validates the version header and returns the body after it.
fn strip_header(input: &str) -> Result<&str, TraceError> {
    let (first, rest) = match input.split_once('\n') {
        Some((first, rest)) => (first, rest),
        None => (input, ""),
    };
    if first.trim_end() != TEXT_HEADER {
        let mut found = first.trim_end().to_string();
        found.truncate(64);
        return Err(TraceError::BadHeader { found });
    }
    Ok(rest)
}

/// Parses one newline-aligned chunk, stopping at the first error
/// (reported with a line number relative to `first_line`).
fn parse_chunk(chunk: &str, first_line: usize) -> Result<Vec<TraceRecord>, TraceError> {
    let mut records = Vec::new();
    for (line_no, line) in RecordLines::with_base(chunk, first_line) {
        records.push(TraceRecord::parse_line(line, line_no)?);
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "#opass-trace v1\n# columns: time_s,client,dataset,chunk,bytes\n\
         0.000100,1,0,5,1024\n\n# gap\n1.5,2,1,7,2048\n2,0,0,0,4096";

    #[test]
    fn parses_comments_blanks_and_partial_trailing_line() {
        let records = parse_text(SAMPLE).unwrap();
        assert_eq!(records.len(), 3);
        assert_eq!(records[0].time_us, 100);
        assert_eq!(records[1].time_us, 1_500_000);
        assert_eq!(records[2].time_us, 2_000_000);
        assert_eq!(records[2].bytes, 4096);
    }

    #[test]
    fn rejects_missing_header() {
        let err = parse_text("0.1,1,0,5,1024\n").unwrap_err();
        assert!(matches!(err, TraceError::BadHeader { .. }), "{err:?}");
    }

    #[test]
    fn error_line_numbers_are_global_at_any_thread_count() {
        // Line 4 (after header + comment) is malformed.
        let input = "#opass-trace v1\n# c\n0.1,1,0,5,1024\nbogus,1,0,5,1024\n0.2,1,0,5,1024\n";
        let seq = parse_text(input).unwrap_err();
        assert_eq!(
            seq,
            TraceError::BadValue {
                line: 4,
                field: "bogus".into()
            }
        );
        for threads in [2, 3, 8] {
            assert_eq!(parse_text_with_threads(input, threads).unwrap_err(), seq);
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let seq = parse_text(SAMPLE).unwrap();
        for threads in [2, 4, 8, 16] {
            assert_eq!(parse_text_with_threads(SAMPLE, threads).unwrap(), seq);
        }
    }

    #[test]
    fn write_parse_round_trips() {
        let records = parse_text(SAMPLE).unwrap();
        let text = write_text(&records);
        assert_eq!(parse_text(&text).unwrap(), records);
        // And the re-serialization is a fixed point.
        assert_eq!(write_text(&parse_text(&text).unwrap()), text);
    }

    #[test]
    fn empty_trace_is_an_error() {
        assert_eq!(
            parse_text("#opass-trace v1\n# nothing\n"),
            Err(TraceError::Empty)
        );
        assert_eq!(parse_text("#opass-trace v1"), Err(TraceError::Empty));
    }
}
