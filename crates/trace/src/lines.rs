//! Shared line-splitting machinery: the one place in the workspace that
//! knows how to walk a line-oriented record file (blank lines and `#`
//! comments skipped, 1-based line numbers tracked) and how to cut a big
//! input into seek-aligned chunks snapped to newline boundaries.
//!
//! Both the trace parser here and `opass_workloads::replay` iterate with
//! [`RecordLines`], so the two formats share a single line-splitting and
//! line-numbering path.

/// Iterator over the *meaningful* lines of a record file: blank lines
/// and `#` comments are skipped, every yielded line comes trimmed and
/// paired with its 1-based line number (counted from `first_line`).
///
/// A trailing line without a final newline is still yielded — partial
/// last lines are data, not garbage, and the parser decides whether they
/// parse.
#[derive(Debug, Clone)]
pub struct RecordLines<'a> {
    rest: &'a str,
    next_line: usize,
}

impl<'a> RecordLines<'a> {
    /// Walks `input` with line numbers starting at 1.
    pub fn new(input: &'a str) -> Self {
        RecordLines::with_base(input, 1)
    }

    /// Walks `input` with line numbers starting at `first_line` — how a
    /// chunked parser keeps global line numbers while iterating one
    /// chunk.
    pub fn with_base(input: &'a str, first_line: usize) -> Self {
        RecordLines {
            rest: input,
            next_line: first_line,
        }
    }
}

impl<'a> Iterator for RecordLines<'a> {
    type Item = (usize, &'a str);

    fn next(&mut self) -> Option<(usize, &'a str)> {
        while !self.rest.is_empty() {
            let (raw, rest) = match self.rest.split_once('\n') {
                Some((raw, rest)) => (raw, rest),
                None => (self.rest, ""),
            };
            let line_no = self.next_line;
            self.rest = rest;
            self.next_line += 1;
            let line = raw.trim();
            if !line.is_empty() && !line.starts_with('#') {
                return Some((line_no, line));
            }
        }
        None
    }
}

/// Cuts `input` into at most `parts` contiguous slices whose boundaries
/// sit immediately after a `'\n'` — the 1BRC seek-and-snap split. The
/// slices concatenate back to `input` exactly; only the last slice can
/// end without a newline. Returns fewer than `parts` slices when the
/// input has too few lines to split further.
pub fn split_at_newlines(input: &str, parts: usize) -> Vec<&str> {
    let parts = parts.max(1);
    let bytes = input.as_bytes();
    let mut out = Vec::with_capacity(parts);
    let mut start = 0usize;
    for i in 1..=parts {
        if start >= bytes.len() {
            break;
        }
        let end = if i == parts {
            bytes.len()
        } else {
            // Seek to the naive boundary, then snap forward past the
            // next newline so no record straddles two chunks.
            let target = (input.len() * i / parts).max(start);
            match bytes[target..].iter().position(|&b| b == b'\n') {
                Some(off) => target + off + 1,
                None => bytes.len(),
            }
        };
        if end > start {
            out.push(&input[start..end]);
        }
        start = end;
    }
    out
}

/// Number of newline bytes in `chunk` — the line-count contribution a
/// fully newline-terminated chunk makes, used to convert chunk-relative
/// line numbers to global ones.
pub fn newline_count(chunk: &str) -> usize {
    chunk.bytes().filter(|&b| b == b'\n').count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skips_comments_blanks_and_numbers_lines() {
        let input = "# header\n\na,b\n  \n# mid\nc,d";
        let got: Vec<(usize, &str)> = RecordLines::new(input).collect();
        assert_eq!(got, vec![(3, "a,b"), (6, "c,d")]);
    }

    #[test]
    fn trailing_partial_line_is_yielded() {
        let got: Vec<(usize, &str)> = RecordLines::new("x\npartial").collect();
        assert_eq!(got, vec![(1, "x"), (2, "partial")]);
    }

    #[test]
    fn base_offsets_line_numbers() {
        let got: Vec<(usize, &str)> = RecordLines::with_base("a\nb\n", 40).collect();
        assert_eq!(got, vec![(40, "a"), (41, "b")]);
    }

    #[test]
    fn split_concatenates_back_and_snaps_to_newlines() {
        let input = "one\ntwo\nthree\nfour\nfive\nsix\n";
        for parts in 1..=8 {
            let chunks = split_at_newlines(input, parts);
            assert_eq!(chunks.concat(), input, "parts={parts}");
            for chunk in &chunks[..chunks.len().saturating_sub(1)] {
                assert!(chunk.ends_with('\n'), "parts={parts}: {chunk:?}");
            }
        }
    }

    #[test]
    fn split_handles_no_trailing_newline_and_tiny_inputs() {
        let chunks = split_at_newlines("a\nb\nc", 2);
        assert_eq!(chunks.concat(), "a\nb\nc");
        assert!(split_at_newlines("", 4).is_empty());
        assert_eq!(split_at_newlines("only", 4), vec!["only"]);
    }

    #[test]
    fn newline_count_counts() {
        assert_eq!(newline_count("a\nb\n"), 2);
        assert_eq!(newline_count("a\nb"), 1);
        assert_eq!(newline_count(""), 0);
    }
}
