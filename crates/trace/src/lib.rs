//! # opass-trace — trace-driven workloads at 1BRC scale
//!
//! Every other workload in the workspace is a synthetic generator; this
//! crate makes access patterns *data*. It defines a line-oriented trace
//! format (one access record per line), a compact binary framing for
//! multi-GB traces, a chunked parallel parser in the 1BRC style, and a
//! seeded generator producing Zipfian dataset popularity, diurnal load
//! swings, and flash-crowd bursts from a JSON [`TraceSpec`].
//!
//! ## Text format
//!
//! ```text
//! #opass-trace v1
//! # columns: time_s,client,dataset,chunk,bytes
//! 0.000124,17,0,831,67108864
//! 0.000391,4,2,17,67108864
//! ```
//!
//! The first line is the mandatory versioned header. Every other
//! non-blank line is either a `#` comment or a record of five
//! comma-separated fields: access time in seconds (micro-second
//! resolution), client id, dataset id, chunk index within the dataset,
//! and bytes read. Timestamps are parsed to integer microseconds, so
//! text → records → text round-trips byte-identically with no float
//! formatting in the loop.
//!
//! ## Determinism discipline
//!
//! [`parse_text_with_threads`] splits the input into seek-aligned byte
//! ranges snapped to newline boundaries, parses each range on a scoped
//! thread, and merges by joining workers **in spawn order** — the same
//! discipline as `matching::parallel`, kept honest by opass-lint's
//! `unordered-parallel-merge` and `transitive-determinism` rules. The
//! parsed output (and the first reported error, if any) is bit-identical
//! across 1, 2, and 8 threads. [`generate`] is a pure function of its
//! [`TraceSpec`]: equal specs yield byte-identical traces.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod binary;
pub mod gen;
pub mod lines;
pub mod parser;
pub mod record;
pub mod spec;

pub use binary::{parse_binary, parse_binary_with_threads, write_binary, BINARY_MAGIC};
pub use gen::{generate, generate_text};
pub use lines::{split_at_newlines, RecordLines};
pub use parser::{parse_text, parse_text_with_threads, write_text};
pub use record::{TraceError, TraceRecord, TEXT_HEADER};
pub use spec::{BurstSpec, TraceSpec};
