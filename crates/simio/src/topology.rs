//! Network topology: flat (single switch) or racked (top-of-rack switches
//! with oversubscribed uplinks).
//!
//! The paper's Marmot testbed hangs every node off one switch, so the
//! reproduction defaults to [`Topology::Flat`]. Real HDFS deployments are
//! racked, which is why HDFS placement is rack-aware; the racked model here
//! supports the repository's rack-locality extension: cross-rack transfers
//! traverse the source rack's uplink transmit side and the destination
//! rack's uplink receive side, both shared by everything crossing that
//! rack boundary.

/// Cluster network topology.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Topology {
    /// All nodes on one non-blocking switch (Marmot; the paper's setup).
    #[default]
    Flat,
    /// Nodes grouped into racks of `nodes_per_rack`; each rack's uplink to
    /// the core has `uplink_bandwidth` bytes/second per direction. The last
    /// rack may be smaller when the node count is not divisible.
    Racked {
        /// Nodes per rack (last rack may hold fewer).
        nodes_per_rack: usize,
        /// Uplink capacity per direction, bytes/second. Choosing this below
        /// `nodes_per_rack × nic_bandwidth` models oversubscription.
        uplink_bandwidth: f64,
    },
}

impl Topology {
    /// The rack index of `node`, or `None` under a flat topology.
    pub fn rack_of(&self, node: usize) -> Option<usize> {
        match *self {
            Topology::Flat => None,
            Topology::Racked { nodes_per_rack, .. } => Some(node / nodes_per_rack),
        }
    }

    /// Number of racks for `n_nodes`, or `None` under a flat topology.
    pub fn rack_count(&self, n_nodes: usize) -> Option<usize> {
        match *self {
            Topology::Flat => None,
            Topology::Racked { nodes_per_rack, .. } => Some(n_nodes.div_ceil(nodes_per_rack)),
        }
    }

    /// Whether two nodes share a rack (true for all pairs when flat — a
    /// single switch behaves like one big rack).
    pub fn same_rack(&self, a: usize, b: usize) -> bool {
        match self.rack_of(a) {
            None => true,
            Some(ra) => Some(ra) == self.rack_of(b),
        }
    }

    /// Validates the topology parameters.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            Topology::Flat => Ok(()),
            Topology::Racked {
                nodes_per_rack,
                uplink_bandwidth,
            } => {
                if nodes_per_rack == 0 {
                    return Err("nodes_per_rack must be positive".into());
                }
                if !(uplink_bandwidth.is_finite() && uplink_bandwidth > 0.0) {
                    return Err(format!(
                        "uplink_bandwidth must be positive: {uplink_bandwidth}"
                    ));
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_has_no_racks() {
        let t = Topology::Flat;
        assert_eq!(t.rack_of(5), None);
        assert_eq!(t.rack_count(64), None);
        assert!(t.same_rack(0, 63));
    }

    #[test]
    fn racked_groups_nodes() {
        let t = Topology::Racked {
            nodes_per_rack: 4,
            uplink_bandwidth: 1e9,
        };
        assert_eq!(t.rack_of(0), Some(0));
        assert_eq!(t.rack_of(3), Some(0));
        assert_eq!(t.rack_of(4), Some(1));
        assert!(t.same_rack(0, 3));
        assert!(!t.same_rack(3, 4));
        assert_eq!(t.rack_count(9), Some(3)); // last rack has one node
    }

    #[test]
    fn validation() {
        assert!(Topology::Flat.validate().is_ok());
        assert!(Topology::Racked {
            nodes_per_rack: 0,
            uplink_bandwidth: 1.0
        }
        .validate()
        .is_err());
        assert!(Topology::Racked {
            nodes_per_rack: 4,
            uplink_bandwidth: -1.0
        }
        .validate()
        .is_err());
    }
}
