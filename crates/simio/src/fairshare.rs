//! Max-min fair bandwidth allocation (progressive filling).
//!
//! Active flows traverse one or more resources. The allocator assigns each
//! flow a rate such that the allocation is *max-min fair*: no flow can be
//! given more bandwidth without taking bandwidth from a flow that already has
//! less. This is the standard fluid model for TCP-like sharing of disks and
//! links, and it is what produces contention effects in the simulator: six
//! readers hitting one disk each get roughly one sixth of its (degraded)
//! aggregate bandwidth.
//!
//! The algorithm is classic progressive filling: repeatedly find the
//! bottleneck resource — the one whose remaining capacity divided by its
//! number of unfrozen flows is smallest — freeze those flows at that fair
//! share, charge their rate to every resource on their path, and repeat.

/// A flow, described by the resources it traverses and an optional
/// per-flow rate ceiling.
///
/// Indices refer to the capacity slice passed to [`allocate_rates`].
/// The ceiling models end-to-end protocol limits that bind before any
/// shared resource does — e.g. a single HDFS remote-read stream tops out
/// near 32 MB/s on the paper's testbed even though disk and NIC could
/// carry more.
#[derive(Debug, Clone)]
pub struct FlowPath {
    /// Resource indices this flow traverses (deduplicated by the caller).
    pub resources: Vec<usize>,
    /// Per-flow rate ceiling in bytes/second (`f64::INFINITY` = none).
    pub rate_cap: f64,
}

impl FlowPath {
    /// A path with no per-flow ceiling.
    pub fn uncapped(resources: Vec<usize>) -> Self {
        FlowPath {
            resources,
            rate_cap: f64::INFINITY,
        }
    }
}

/// # Example
///
/// ```
/// use opass_simio::fairshare::{allocate_rates, FlowPath};
///
/// // Two flows share a 100 B/s link; one is capped at 20 B/s, so the
/// // other soaks up the remaining 80.
/// let flows = [
///     FlowPath { resources: vec![0], rate_cap: 20.0 },
///     FlowPath::uncapped(vec![0]),
/// ];
/// let rates = allocate_rates(&flows, &[100.0]);
/// assert_eq!(rates, vec![20.0, 80.0]);
/// ```
///
/// Computes max-min fair rates for `flows` over resources with the given
/// aggregate `capacities` (bytes/second, already degraded for concurrency).
///
/// Returns one rate per flow, in flow order. Flows with empty paths are
/// given `f64::INFINITY` (they complete instantly; the engine treats such
/// flows as pure latency).
///
/// # Panics
///
/// Panics (in debug builds) if a flow references a resource index out of
/// bounds, or if any capacity is non-positive while flows traverse it.
pub fn allocate_rates(flows: &[FlowPath], capacities: &[f64]) -> Vec<f64> {
    let nf = flows.len();
    let nr = capacities.len();
    let mut rates = vec![0.0_f64; nf];
    if nf == 0 {
        return rates;
    }

    // remaining capacity per resource
    let mut remaining: Vec<f64> = capacities.to_vec();
    // number of unfrozen flows per resource
    let mut unfrozen_count = vec![0usize; nr];
    let mut frozen = vec![false; nf];
    let mut n_unfrozen = 0usize;

    for (fi, flow) in flows.iter().enumerate() {
        debug_assert!(flow.rate_cap > 0.0, "rate caps must be positive");
        if flow.resources.is_empty() {
            rates[fi] = flow.rate_cap; // INFINITY when uncapped
            frozen[fi] = true;
        } else {
            n_unfrozen += 1;
            for &r in &flow.resources {
                debug_assert!(r < nr, "flow references resource {r} out of {nr}");
                debug_assert!(
                    capacities[r] > 0.0,
                    "resource {r} has non-positive capacity"
                );
                unfrozen_count[r] += 1;
            }
        }
    }

    while n_unfrozen > 0 {
        // Water-filling: the level rises until either a resource saturates
        // (its fair share is the minimum) or a flow hits its rate cap.
        let mut bottleneck: Option<(usize, f64)> = None;
        for r in 0..nr {
            if unfrozen_count[r] == 0 {
                continue;
            }
            let share = (remaining[r] / unfrozen_count[r] as f64).max(0.0);
            match bottleneck {
                Some((_, best)) if share >= best => {}
                _ => bottleneck = Some((r, share)),
            }
        }
        let (br, share) = bottleneck.expect("unfrozen flows must traverse some resource");
        let min_cap = flows
            .iter()
            .enumerate()
            .filter(|&(fi, _)| !frozen[fi])
            .map(|(_, f)| f.rate_cap)
            .fold(f64::INFINITY, f64::min);

        let mut froze_any = false;
        if min_cap < share {
            // Cap-limited step: freeze every unfrozen flow at its cap when
            // the cap binds at or below the current minimum level.
            for fi in 0..nf {
                if frozen[fi] || flows[fi].rate_cap > min_cap {
                    continue;
                }
                let rate = flows[fi].rate_cap;
                frozen[fi] = true;
                froze_any = true;
                n_unfrozen -= 1;
                rates[fi] = rate;
                for &r in &flows[fi].resources {
                    remaining[r] = (remaining[r] - rate).max(0.0);
                    unfrozen_count[r] -= 1;
                }
            }
        } else {
            // Resource-limited step: freeze every unfrozen flow through the
            // bottleneck at the fair share, charging all its resources.
            for fi in 0..nf {
                if frozen[fi] {
                    continue;
                }
                if !flows[fi].resources.contains(&br) {
                    continue;
                }
                let rate = share.min(flows[fi].rate_cap);
                frozen[fi] = true;
                froze_any = true;
                n_unfrozen -= 1;
                rates[fi] = rate;
                for &r in &flows[fi].resources {
                    remaining[r] = (remaining[r] - rate).max(0.0);
                    unfrozen_count[r] -= 1;
                }
            }
        }
        debug_assert!(froze_any, "progressive filling must make progress");
        if !froze_any {
            break; // defensive: avoid an infinite loop in release builds
        }
    }

    rates
}

/// Verifies that a rate allocation respects every resource capacity, within
/// a relative tolerance. Used by tests and debug assertions.
pub fn respects_capacities(
    flows: &[FlowPath],
    capacities: &[f64],
    rates: &[f64],
    rel_tol: f64,
) -> bool {
    let mut used = vec![0.0_f64; capacities.len()];
    for (flow, &rate) in flows.iter().zip(rates) {
        if !rate.is_finite() {
            continue;
        }
        for &r in &flow.resources {
            used[r] += rate;
        }
    }
    used.iter()
        .zip(capacities)
        .all(|(&u, &c)| u <= c * (1.0 + rel_tol) + f64::EPSILON)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(rs: &[usize]) -> FlowPath {
        FlowPath::uncapped(rs.to_vec())
    }

    fn capped(rs: &[usize], cap: f64) -> FlowPath {
        FlowPath {
            resources: rs.to_vec(),
            rate_cap: cap,
        }
    }

    #[test]
    fn empty_input() {
        assert!(allocate_rates(&[], &[100.0]).is_empty());
    }

    #[test]
    fn single_flow_gets_bottleneck_capacity() {
        let flows = [path(&[0, 1])];
        let rates = allocate_rates(&flows, &[70.0, 117.0]);
        assert!((rates[0] - 70.0).abs() < 1e-9);
    }

    #[test]
    fn equal_flows_share_equally() {
        let flows = [path(&[0]), path(&[0]), path(&[0])];
        let rates = allocate_rates(&flows, &[90.0]);
        for &r in &rates {
            assert!((r - 30.0).abs() < 1e-9);
        }
    }

    #[test]
    fn classic_maxmin_example() {
        // Three flows: A on link0 only, B on link0+link1, C on link1 only.
        // link0 cap 10, link1 cap 4. Bottleneck is link1 (share 2):
        // B and C get 2; A then gets the rest of link0 = 8.
        let flows = [path(&[0]), path(&[0, 1]), path(&[1])];
        let rates = allocate_rates(&flows, &[10.0, 4.0]);
        assert!((rates[1] - 2.0).abs() < 1e-9, "B={}", rates[1]);
        assert!((rates[2] - 2.0).abs() < 1e-9, "C={}", rates[2]);
        assert!((rates[0] - 8.0).abs() < 1e-9, "A={}", rates[0]);
    }

    #[test]
    fn empty_path_is_infinite() {
        let flows = [path(&[])];
        let rates = allocate_rates(&flows, &[1.0]);
        assert!(rates[0].is_infinite());
    }

    #[test]
    fn allocation_respects_capacities() {
        let flows = [
            path(&[0, 2]),
            path(&[0, 1]),
            path(&[1, 2]),
            path(&[2]),
            path(&[0]),
        ];
        let caps = [50.0, 30.0, 20.0];
        let rates = allocate_rates(&flows, &caps);
        assert!(respects_capacities(&flows, &caps, &rates, 1e-9));
    }

    #[test]
    fn work_conserving_on_single_resource() {
        // All capacity of a shared resource is handed out.
        let flows = [path(&[0]), path(&[0]), path(&[0]), path(&[0])];
        let caps = [100.0];
        let rates = allocate_rates(&flows, &caps);
        let total: f64 = rates.iter().sum();
        assert!((total - 100.0).abs() < 1e-9);
    }

    #[test]
    fn disjoint_flows_do_not_interfere() {
        let flows = [path(&[0]), path(&[1])];
        let rates = allocate_rates(&flows, &[10.0, 20.0]);
        assert!((rates[0] - 10.0).abs() < 1e-9);
        assert!((rates[1] - 20.0).abs() < 1e-9);
    }

    #[test]
    fn rate_cap_binds_before_resources() {
        let flows = [capped(&[0], 3.0)];
        let rates = allocate_rates(&flows, &[100.0]);
        assert!((rates[0] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn capped_flow_releases_bandwidth_to_others() {
        // Two flows share a 10 B/s link; one is capped at 2: the other
        // gets the remaining 8 instead of a plain 5/5 split.
        let flows = [capped(&[0], 2.0), path(&[0])];
        let rates = allocate_rates(&flows, &[10.0]);
        assert!((rates[0] - 2.0).abs() < 1e-9);
        assert!((rates[1] - 8.0).abs() < 1e-9);
    }

    #[test]
    fn cap_above_fair_share_is_inert() {
        let flows = [capped(&[0], 50.0), path(&[0])];
        let rates = allocate_rates(&flows, &[10.0]);
        assert!((rates[0] - 5.0).abs() < 1e-9);
        assert!((rates[1] - 5.0).abs() < 1e-9);
    }

    #[test]
    fn many_caps_still_respect_capacities() {
        let flows = [
            capped(&[0, 1], 4.0),
            capped(&[0], 3.0),
            path(&[1]),
            capped(&[0, 1], 100.0),
        ];
        let caps = [8.0, 6.0];
        let rates = allocate_rates(&flows, &caps);
        assert!(respects_capacities(&flows, &caps, &rates, 1e-9));
        for (f, &r) in flows.iter().zip(&rates) {
            assert!(r <= f.rate_cap + 1e-9);
        }
    }

    #[test]
    fn empty_path_with_cap_runs_at_cap() {
        let flows = [capped(&[], 7.0)];
        let rates = allocate_rates(&flows, &[]);
        assert!((rates[0] - 7.0).abs() < 1e-9);
    }
}
