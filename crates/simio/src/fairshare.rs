//! Max-min fair bandwidth allocation (progressive filling).
//!
//! Active flows traverse one or more resources. The allocator assigns each
//! flow a rate such that the allocation is *max-min fair*: no flow can be
//! given more bandwidth without taking bandwidth from a flow that already has
//! less. This is the standard fluid model for TCP-like sharing of disks and
//! links, and it is what produces contention effects in the simulator: six
//! readers hitting one disk each get roughly one sixth of its (degraded)
//! aggregate bandwidth.
//!
//! The algorithm is classic progressive filling: repeatedly find the
//! bottleneck resource — the one whose remaining capacity divided by its
//! number of unfrozen flows is smallest — freeze those flows at that fair
//! share, charge their rate to every resource on their path, and repeat.
//!
//! Two entry points exist:
//!
//! * [`allocate_rates`] — the convenient slice-in/`Vec`-out form, used by
//!   tests, benches, and the retained dense reference engine;
//! * [`RateScratch`] — a reusable-buffer form the incremental engine drives
//!   once per *connected component* of the flow/resource sharing graph. All
//!   intermediate state lives in buffers owned by the caller, so steady-state
//!   rate recomputation performs no heap allocation.
//!
//! Max-min allocations decompose exactly over connected components: a flow's
//! rate depends only on flows it (transitively) shares a resource with. The
//! scoped form exploits that, and it is written so that the floating-point
//! arithmetic — the order of bottleneck selection, freezing, and capacity
//! subtraction within a component — is identical to running the classic
//! global algorithm over the whole flow set. Rates therefore come out
//! *bit-identical* whether computed globally or per component.

/// A flow, described by the resources it traverses and an optional
/// per-flow rate ceiling.
///
/// Indices refer to the capacity slice passed to [`allocate_rates`].
/// The ceiling models end-to-end protocol limits that bind before any
/// shared resource does — e.g. a single HDFS remote-read stream tops out
/// near 32 MB/s on the paper's testbed even though disk and NIC could
/// carry more.
#[derive(Debug, Clone)]
pub struct FlowPath {
    /// Resource indices this flow traverses (deduplicated by the caller).
    pub resources: Vec<usize>,
    /// Per-flow rate ceiling in bytes/second (`f64::INFINITY` = none).
    pub rate_cap: f64,
}

impl FlowPath {
    /// A path with no per-flow ceiling.
    pub fn uncapped(resources: Vec<usize>) -> Self {
        FlowPath {
            resources,
            rate_cap: f64::INFINITY,
        }
    }
}

/// Reusable progressive-filling state.
///
/// Resource-indexed buffers (`remaining`, `unfrozen`) are sized to the
/// largest resource id ever pushed and addressed by *global* resource
/// index, so a caller can solve a sparse component without remapping ids.
/// Flow-indexed buffers are local to one solve. Nothing is freed between
/// solves; after warm-up, [`RateScratch::fill`] allocates nothing.
///
/// # Protocol
///
/// 1. [`begin`](RateScratch::begin) — reset the per-solve state;
/// 2. [`push_resource`](RateScratch::push_resource) for every resource in
///    the component, **in ascending id order**, with its aggregate capacity;
/// 3. [`push_flow`](RateScratch::push_flow) for every flow, **in ascending
///    flow-id order**, referencing only pushed resources;
/// 4. [`fill`](RateScratch::fill) — returns one rate per flow, in push
///    order.
///
/// The ordering requirements make the solve reproduce the classic global
/// algorithm's tie-breaking (lowest resource id wins bottleneck ties,
/// flows freeze in ascending id order), which keeps results bit-identical
/// with [`allocate_rates`] over the same component.
#[derive(Debug, Default)]
pub struct RateScratch {
    /// Remaining capacity per resource (global index).
    remaining: Vec<f64>,
    /// Unfrozen-flow count per resource (global index).
    unfrozen: Vec<u32>,
    /// Stamp marking which resources were pushed for the current solve.
    res_stamp: Vec<u32>,
    /// Current solve's stamp value.
    stamp: u32,
    /// Resources of the current solve, ascending.
    res_list: Vec<u32>,
    /// Per-flow rate cap, in push order.
    flow_caps: Vec<f64>,
    /// Flattened flow paths (global resource indices).
    path_flat: Vec<u32>,
    /// CSR offsets into `path_flat`; `len == flows + 1`.
    path_off: Vec<u32>,
    /// Per-flow frozen flag for the current solve.
    frozen: Vec<bool>,
    /// Output rates, in flow push order.
    rates: Vec<f64>,
    /// `(cap, flow_slot)` for finitely-capped flows, sorted ascending.
    caps_sorted: Vec<(f64, u32)>,
}

impl RateScratch {
    /// Creates an empty scratch space.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts a new solve, clearing per-solve state but keeping buffers.
    pub fn begin(&mut self) {
        self.stamp = self.stamp.wrapping_add(1);
        if self.stamp == 0 {
            // Extremely rare wrap: invalidate all stale stamps at once.
            self.res_stamp.iter_mut().for_each(|s| *s = u32::MAX);
            self.stamp = 1;
        }
        self.res_list.clear();
        self.flow_caps.clear();
        self.path_flat.clear();
        self.path_off.clear();
        self.path_off.push(0);
    }

    /// Registers resource `r` with its aggregate `capacity` (bytes/second,
    /// already degraded for concurrency). Resources must be pushed in
    /// ascending id order.
    pub fn push_resource(&mut self, r: usize, capacity: f64) {
        if r >= self.remaining.len() {
            self.remaining.resize(r + 1, 0.0);
            self.unfrozen.resize(r + 1, 0);
            self.res_stamp.resize(r + 1, 0);
        }
        debug_assert!(
            self.res_list.last().map_or(true, |&p| (p as usize) < r),
            "resources must be pushed in ascending order"
        );
        self.remaining[r] = capacity;
        self.unfrozen[r] = 0;
        self.res_stamp[r] = self.stamp;
        self.res_list.push(r as u32);
    }

    /// Registers a flow traversing `path` (global resource indices, each
    /// previously pushed) with the given rate ceiling. Flows must be pushed
    /// in ascending flow-id order.
    pub fn push_flow(&mut self, path: &[usize], rate_cap: f64) {
        debug_assert!(rate_cap > 0.0, "rate caps must be positive");
        for &r in path {
            debug_assert!(
                r < self.res_stamp.len() && self.res_stamp[r] == self.stamp,
                "flow references resource {r} not pushed for this solve"
            );
            debug_assert!(
                self.remaining[r] > 0.0,
                "resource {r} has non-positive capacity"
            );
            self.path_flat.push(r as u32);
        }
        self.flow_caps.push(rate_cap);
        self.path_off.push(self.path_flat.len() as u32);
    }

    /// Number of flows pushed for the current solve.
    pub fn flow_count(&self) -> usize {
        self.flow_caps.len()
    }

    /// Runs progressive filling and returns one rate per pushed flow, in
    /// push order. Flows with empty paths get their `rate_cap`
    /// (`f64::INFINITY` when uncapped).
    pub fn fill(&mut self) -> &[f64] {
        let nf = self.flow_caps.len();
        let RateScratch {
            remaining,
            unfrozen,
            res_list,
            flow_caps,
            path_flat,
            path_off,
            frozen,
            rates,
            caps_sorted,
            ..
        } = self;
        let path = |fi: usize| &path_flat[path_off[fi] as usize..path_off[fi + 1] as usize];

        rates.clear();
        rates.resize(nf, 0.0);
        frozen.clear();
        frozen.resize(nf, false);
        caps_sorted.clear();
        let mut n_unfrozen = 0usize;

        for fi in 0..nf {
            let cap = flow_caps[fi];
            if path(fi).is_empty() {
                rates[fi] = cap; // INFINITY when uncapped
                frozen[fi] = true;
            } else {
                n_unfrozen += 1;
                for &r in path(fi) {
                    unfrozen[r as usize] += 1;
                }
                if cap.is_finite() {
                    caps_sorted.push((cap, fi as u32));
                }
            }
        }
        // Ties sort by flow slot so cap-limited freezes subtract capacity
        // in ascending flow order — the same order the global algorithm's
        // flow sweep uses.
        caps_sorted.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut cap_ptr = 0usize;

        while n_unfrozen > 0 {
            // Water-filling: the level rises until either a resource
            // saturates (its fair share is the minimum) or a flow hits its
            // rate cap. Ascending iteration keeps bottleneck ties on the
            // lowest resource id.
            let mut bottleneck: Option<(u32, f64)> = None;
            for &r in res_list.iter() {
                let ri = r as usize;
                if unfrozen[ri] == 0 {
                    continue;
                }
                let share = (remaining[ri] / unfrozen[ri] as f64).max(0.0);
                match bottleneck {
                    Some((_, best)) if share >= best => {}
                    _ => bottleneck = Some((r, share)),
                }
            }
            let (br, share) = bottleneck.expect("unfrozen flows must traverse some resource");

            // Smallest cap among unfrozen flows, via the sorted cap list:
            // entries whose flow froze in an earlier resource-limited step
            // are skipped (each at most once across the whole solve). When
            // no flow is capped the list is empty and the cap branch below
            // is never entered — the common uncapped case pays nothing.
            while cap_ptr < caps_sorted.len() && frozen[caps_sorted[cap_ptr].1 as usize] {
                cap_ptr += 1;
            }
            let min_cap = caps_sorted
                .get(cap_ptr)
                .map_or(f64::INFINITY, |&(cap, _)| cap);

            let mut froze_any = false;
            if min_cap < share {
                // Cap-limited step: freeze every unfrozen flow whose cap
                // binds at or below the current minimum level. Only flows
                // at exactly `min_cap` qualify (it is the minimum), and the
                // sort order visits them in ascending flow order.
                let mut p = cap_ptr;
                while p < caps_sorted.len() && caps_sorted[p].0 <= min_cap {
                    let (rate, slot) = caps_sorted[p];
                    p += 1;
                    let fi = slot as usize;
                    if frozen[fi] {
                        continue;
                    }
                    frozen[fi] = true;
                    froze_any = true;
                    n_unfrozen -= 1;
                    rates[fi] = rate;
                    for &r in path(fi) {
                        let ri = r as usize;
                        remaining[ri] = (remaining[ri] - rate).max(0.0);
                        unfrozen[ri] -= 1;
                    }
                }
            } else {
                // Resource-limited step: freeze every unfrozen flow through
                // the bottleneck at the fair share, charging all its
                // resources.
                for fi in 0..nf {
                    if frozen[fi] || !path(fi).contains(&br) {
                        continue;
                    }
                    let rate = share.min(flow_caps[fi]);
                    frozen[fi] = true;
                    froze_any = true;
                    n_unfrozen -= 1;
                    rates[fi] = rate;
                    for &r in path(fi) {
                        let ri = r as usize;
                        remaining[ri] = (remaining[ri] - rate).max(0.0);
                        unfrozen[ri] -= 1;
                    }
                }
            }
            debug_assert!(froze_any, "progressive filling must make progress");
            if !froze_any {
                break; // defensive: avoid an infinite loop in release builds
            }
        }

        rates
    }
}

/// # Example
///
/// ```
/// use opass_simio::fairshare::{allocate_rates, FlowPath};
///
/// // Two flows share a 100 B/s link; one is capped at 20 B/s, so the
/// // other soaks up the remaining 80.
/// let flows = [
///     FlowPath { resources: vec![0], rate_cap: 20.0 },
///     FlowPath::uncapped(vec![0]),
/// ];
/// let rates = allocate_rates(&flows, &[100.0]);
/// assert_eq!(rates, vec![20.0, 80.0]);
/// ```
///
/// Computes max-min fair rates for `flows` over resources with the given
/// aggregate `capacities` (bytes/second, already degraded for concurrency).
///
/// Returns one rate per flow, in flow order. Flows with empty paths are
/// given `f64::INFINITY` (they complete instantly; the engine treats such
/// flows as pure latency).
///
/// This is the allocating convenience form of [`RateScratch`]; hot paths
/// should hold a scratch and use [`allocate_rates_into`] instead.
///
/// # Panics
///
/// Panics (in debug builds) if a flow references a resource index out of
/// bounds, or if any capacity is non-positive while flows traverse it.
pub fn allocate_rates(flows: &[FlowPath], capacities: &[f64]) -> Vec<f64> {
    let mut scratch = RateScratch::new();
    let mut rates = Vec::new();
    allocate_rates_into(flows, capacities, &mut scratch, &mut rates);
    rates
}

/// Like [`allocate_rates`], but borrowing reusable buffers: intermediate
/// state lives in `scratch` and results land in `rates` (cleared first).
/// After warm-up the call performs no heap allocation.
pub fn allocate_rates_into(
    flows: &[FlowPath],
    capacities: &[f64],
    scratch: &mut RateScratch,
    rates: &mut Vec<f64>,
) {
    scratch.begin();
    for (r, &cap) in capacities.iter().enumerate() {
        scratch.push_resource(r, cap);
    }
    for flow in flows {
        #[cfg(debug_assertions)]
        for &r in &flow.resources {
            debug_assert!(
                r < capacities.len(),
                "flow references resource {r} out of {}",
                capacities.len()
            );
        }
        scratch.push_flow(&flow.resources, flow.rate_cap);
    }
    rates.clear();
    rates.extend_from_slice(scratch.fill());
}

/// Verifies that a rate allocation respects every resource capacity, within
/// a relative tolerance. Used by tests and debug assertions.
pub fn respects_capacities(
    flows: &[FlowPath],
    capacities: &[f64],
    rates: &[f64],
    rel_tol: f64,
) -> bool {
    let mut used = vec![0.0_f64; capacities.len()];
    for (flow, &rate) in flows.iter().zip(rates) {
        if !rate.is_finite() {
            continue;
        }
        for &r in &flow.resources {
            used[r] += rate;
        }
    }
    used.iter()
        .zip(capacities)
        .all(|(&u, &c)| u <= c * (1.0 + rel_tol) + f64::EPSILON)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(rs: &[usize]) -> FlowPath {
        FlowPath::uncapped(rs.to_vec())
    }

    fn capped(rs: &[usize], cap: f64) -> FlowPath {
        FlowPath {
            resources: rs.to_vec(),
            rate_cap: cap,
        }
    }

    #[test]
    fn empty_input() {
        assert!(allocate_rates(&[], &[100.0]).is_empty());
    }

    #[test]
    fn single_flow_gets_bottleneck_capacity() {
        let flows = [path(&[0, 1])];
        let rates = allocate_rates(&flows, &[70.0, 117.0]);
        assert!((rates[0] - 70.0).abs() < 1e-9);
    }

    #[test]
    fn equal_flows_share_equally() {
        let flows = [path(&[0]), path(&[0]), path(&[0])];
        let rates = allocate_rates(&flows, &[90.0]);
        for &r in &rates {
            assert!((r - 30.0).abs() < 1e-9);
        }
    }

    #[test]
    fn classic_maxmin_example() {
        // Three flows: A on link0 only, B on link0+link1, C on link1 only.
        // link0 cap 10, link1 cap 4. Bottleneck is link1 (share 2):
        // B and C get 2; A then gets the rest of link0 = 8.
        let flows = [path(&[0]), path(&[0, 1]), path(&[1])];
        let rates = allocate_rates(&flows, &[10.0, 4.0]);
        assert!((rates[1] - 2.0).abs() < 1e-9, "B={}", rates[1]);
        assert!((rates[2] - 2.0).abs() < 1e-9, "C={}", rates[2]);
        assert!((rates[0] - 8.0).abs() < 1e-9, "A={}", rates[0]);
    }

    #[test]
    fn empty_path_is_infinite() {
        let flows = [path(&[])];
        let rates = allocate_rates(&flows, &[1.0]);
        assert!(rates[0].is_infinite());
    }

    #[test]
    fn allocation_respects_capacities() {
        let flows = [
            path(&[0, 2]),
            path(&[0, 1]),
            path(&[1, 2]),
            path(&[2]),
            path(&[0]),
        ];
        let caps = [50.0, 30.0, 20.0];
        let rates = allocate_rates(&flows, &caps);
        assert!(respects_capacities(&flows, &caps, &rates, 1e-9));
    }

    #[test]
    fn work_conserving_on_single_resource() {
        // All capacity of a shared resource is handed out.
        let flows = [path(&[0]), path(&[0]), path(&[0]), path(&[0])];
        let caps = [100.0];
        let rates = allocate_rates(&flows, &caps);
        let total: f64 = rates.iter().sum();
        assert!((total - 100.0).abs() < 1e-9);
    }

    #[test]
    fn disjoint_flows_do_not_interfere() {
        let flows = [path(&[0]), path(&[1])];
        let rates = allocate_rates(&flows, &[10.0, 20.0]);
        assert!((rates[0] - 10.0).abs() < 1e-9);
        assert!((rates[1] - 20.0).abs() < 1e-9);
    }

    #[test]
    fn rate_cap_binds_before_resources() {
        let flows = [capped(&[0], 3.0)];
        let rates = allocate_rates(&flows, &[100.0]);
        assert!((rates[0] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn capped_flow_releases_bandwidth_to_others() {
        // Two flows share a 10 B/s link; one is capped at 2: the other
        // gets the remaining 8 instead of a plain 5/5 split.
        let flows = [capped(&[0], 2.0), path(&[0])];
        let rates = allocate_rates(&flows, &[10.0]);
        assert!((rates[0] - 2.0).abs() < 1e-9);
        assert!((rates[1] - 8.0).abs() < 1e-9);
    }

    #[test]
    fn cap_above_fair_share_is_inert() {
        let flows = [capped(&[0], 50.0), path(&[0])];
        let rates = allocate_rates(&flows, &[10.0]);
        assert!((rates[0] - 5.0).abs() < 1e-9);
        assert!((rates[1] - 5.0).abs() < 1e-9);
    }

    #[test]
    fn many_caps_still_respect_capacities() {
        let flows = [
            capped(&[0, 1], 4.0),
            capped(&[0], 3.0),
            path(&[1]),
            capped(&[0, 1], 100.0),
        ];
        let caps = [8.0, 6.0];
        let rates = allocate_rates(&flows, &caps);
        assert!(respects_capacities(&flows, &caps, &rates, 1e-9));
        for (f, &r) in flows.iter().zip(&rates) {
            assert!(r <= f.rate_cap + 1e-9);
        }
    }

    #[test]
    fn empty_path_with_cap_runs_at_cap() {
        let flows = [capped(&[], 7.0)];
        let rates = allocate_rates(&flows, &[]);
        assert!((rates[0] - 7.0).abs() < 1e-9);
    }

    #[test]
    fn scratch_reuse_matches_fresh_allocation() {
        // Solving different problems through one scratch gives the same
        // answers as fresh Vec-returning calls — stale state never leaks.
        let mut scratch = RateScratch::new();
        let mut rates = Vec::new();
        let problems: Vec<(Vec<FlowPath>, Vec<f64>)> = vec![
            (vec![path(&[0]), path(&[0, 1])], vec![10.0, 4.0]),
            (vec![capped(&[0], 2.0), path(&[0])], vec![10.0]),
            (vec![path(&[1]), path(&[])], vec![5.0, 20.0]),
            (vec![path(&[0]), path(&[0]), path(&[0])], vec![90.0]),
        ];
        for (flows, caps) in &problems {
            allocate_rates_into(flows, caps, &mut scratch, &mut rates);
            assert_eq!(rates, allocate_rates(flows, caps));
        }
    }

    #[test]
    fn scoped_component_matches_global_solve() {
        // Two disjoint components solved globally vs. one at a time
        // through the scoped API: identical rates.
        let flows = [path(&[0]), path(&[0, 1]), capped(&[2], 3.0), path(&[2, 3])];
        let caps = [10.0, 4.0, 8.0, 20.0];
        let global = allocate_rates(&flows, &caps);

        let mut scratch = RateScratch::new();
        // Component {0,1} x resources {0,1}.
        scratch.begin();
        scratch.push_resource(0, caps[0]);
        scratch.push_resource(1, caps[1]);
        scratch.push_flow(&flows[0].resources, flows[0].rate_cap);
        scratch.push_flow(&flows[1].resources, flows[1].rate_cap);
        let a = scratch.fill().to_vec();
        // Component {2,3} x resources {2,3}.
        scratch.begin();
        scratch.push_resource(2, caps[2]);
        scratch.push_resource(3, caps[3]);
        scratch.push_flow(&flows[2].resources, flows[2].rate_cap);
        scratch.push_flow(&flows[3].resources, flows[3].rate_cap);
        let b = scratch.fill().to_vec();

        assert_eq!(vec![a[0], a[1], b[0], b[1]], global);
    }
}
