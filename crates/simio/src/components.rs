//! Adjacency index over active flows ↔ resources, with connected-component
//! extraction.
//!
//! Max-min fair rates decompose over connected components of the sharing
//! graph: a flow's rate can only change when a flow activates or completes
//! in *its own* component. The engine therefore keeps this bipartite
//! adjacency index up to date as flows activate and complete, and on each
//! recompute pass extracts just the components reachable from the dirty
//! seeds (the activated flow, or the resources a completed flow released).
//!
//! Everything is index-based and amortized allocation-free:
//!
//! * per-resource active-flow lists support O(1) insert and O(1)
//!   `swap_remove` (each flow remembers its position in every list it is
//!   on, and the displaced flow's position is patched after a removal);
//! * component extraction is a BFS over the bipartite graph using
//!   epoch-stamped visit marks, so marks are never cleared between passes;
//! * flow → resource adjacency is stored in CSR form (flows get engine ids
//!   in submission order, so rows are appended once and never resized).

/// Bipartite adjacency index between active flows and the resources they
/// traverse, supporting incremental updates and component BFS.
#[derive(Debug, Default)]
pub(crate) struct ComponentIndex {
    /// Per resource: ids of active flows traversing it (unordered).
    res_flows: Vec<Vec<u32>>,
    /// CSR offsets into `flow_res` / `flow_pos`; `len == flows + 1`.
    flow_off: Vec<u32>,
    /// Flattened flow → resource adjacency (sorted within each row, since
    /// it mirrors the flow's deduplicated, sorted resource list).
    flow_res: Vec<u32>,
    /// Position of the flow inside `res_flows[flow_res[k]]`, parallel to
    /// `flow_res`. Valid only while the flow is inserted.
    flow_pos: Vec<u32>,
    /// Epoch-stamped BFS visit marks.
    flow_mark: Vec<u32>,
    res_mark: Vec<u32>,
    /// Current BFS pass epoch.
    epoch: u32,
}

impl ComponentIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        ComponentIndex {
            flow_off: vec![0],
            ..Default::default()
        }
    }

    /// Registers a new resource (ids are sequential, matching the engine).
    pub fn add_resource(&mut self) {
        self.res_flows.push(Vec::new());
        self.res_mark.push(0);
    }

    /// Registers a new flow's adjacency row (ids are sequential, matching
    /// the engine; `resources` is the flow's sorted, deduplicated resource
    /// list). The flow is *not* inserted into the active lists yet.
    pub fn register_flow(&mut self, resources: &[usize]) {
        debug_assert!(resources.windows(2).all(|w| w[0] < w[1]));
        for &r in resources {
            debug_assert!(r < self.res_flows.len());
            self.flow_res.push(r as u32);
            self.flow_pos.push(0);
        }
        self.flow_off.push(self.flow_res.len() as u32);
        self.flow_mark.push(0);
    }

    #[inline]
    fn row(&self, f: u32) -> std::ops::Range<usize> {
        self.flow_off[f as usize] as usize..self.flow_off[f as usize + 1] as usize
    }

    /// Inserts an activated flow into the active lists of its resources.
    pub fn insert(&mut self, f: u32) {
        for k in self.row(f) {
            let r = self.flow_res[k] as usize;
            self.flow_pos[k] = self.res_flows[r].len() as u32;
            self.res_flows[r].push(f);
        }
    }

    /// Removes a completed flow from the active lists of its resources.
    pub fn remove(&mut self, f: u32) {
        for k in self.row(f) {
            let r = self.flow_res[k] as usize;
            let p = self.flow_pos[k] as usize;
            let list = &mut self.res_flows[r];
            debug_assert_eq!(list[p], f);
            list.swap_remove(p);
            if p < list.len() {
                // Patch the displaced flow's remembered position for `r`.
                let moved = list[p];
                let row = self.row(moved);
                let idx = self.flow_res[row.clone()]
                    .binary_search(&(r as u32))
                    .expect("moved flow must traverse this resource");
                self.flow_pos[row.start + idx] = p as u32;
            }
        }
    }

    /// Active flows currently traversing resource `r`. The list length is
    /// the resource's concurrency count (feeds degraded capacity).
    #[inline]
    pub fn flows_on(&self, r: usize) -> &[u32] {
        &self.res_flows[r]
    }

    /// Starts a new recompute pass: components extracted afterwards share
    /// one visited-set, so overlapping seeds are processed once.
    pub fn begin_pass(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Wrapped after ~4 billion passes: flush all stale marks once.
            self.flow_mark.iter_mut().for_each(|m| *m = u32::MAX);
            self.res_mark.iter_mut().for_each(|m| *m = u32::MAX);
            self.epoch = 1;
        }
    }

    /// Whether `f` was already visited in the current pass.
    #[inline]
    pub fn flow_seen(&self, f: u32) -> bool {
        self.flow_mark[f as usize] == self.epoch
    }

    /// Whether `r` was already visited in the current pass.
    #[inline]
    pub fn resource_seen(&self, r: u32) -> bool {
        self.res_mark[r as usize] == self.epoch
    }

    /// Collects the connected component containing active flow `seed` into
    /// `out_flows` / `out_res` (cleared first; unsorted).
    pub fn component_from_flow(
        &mut self,
        seed: u32,
        out_flows: &mut Vec<u32>,
        out_res: &mut Vec<u32>,
    ) {
        out_flows.clear();
        out_res.clear();
        debug_assert!(!self.flow_seen(seed));
        self.flow_mark[seed as usize] = self.epoch;
        out_flows.push(seed);
        self.bfs(out_flows, out_res);
    }

    /// Collects the connected component containing resource `seed` into
    /// `out_flows` / `out_res` (cleared first; unsorted). The component may
    /// have no flows (a released resource with nothing else on it).
    pub fn component_from_resource(
        &mut self,
        seed: u32,
        out_flows: &mut Vec<u32>,
        out_res: &mut Vec<u32>,
    ) {
        out_flows.clear();
        out_res.clear();
        debug_assert!(!self.resource_seen(seed));
        self.res_mark[seed as usize] = self.epoch;
        out_res.push(seed);
        self.bfs(out_flows, out_res);
    }

    /// BFS over the bipartite graph; the output vectors double as
    /// worklists, so no queue allocation is needed.
    fn bfs(&mut self, out_flows: &mut Vec<u32>, out_res: &mut Vec<u32>) {
        let (mut i, mut j) = (0usize, 0usize);
        loop {
            if i < out_flows.len() {
                let f = out_flows[i];
                i += 1;
                for k in self.row(f) {
                    let r = self.flow_res[k];
                    if self.res_mark[r as usize] != self.epoch {
                        self.res_mark[r as usize] = self.epoch;
                        out_res.push(r);
                    }
                }
            } else if j < out_res.len() {
                let r = out_res[j] as usize;
                j += 1;
                for idx in 0..self.res_flows[r].len() {
                    let g = self.res_flows[r][idx];
                    if self.flow_mark[g as usize] != self.epoch {
                        self.flow_mark[g as usize] = self.epoch;
                        out_flows.push(g);
                    }
                }
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index(nres: usize, flows: &[&[usize]]) -> ComponentIndex {
        let mut ix = ComponentIndex::new();
        for _ in 0..nres {
            ix.add_resource();
        }
        for (f, rs) in flows.iter().enumerate() {
            ix.register_flow(rs);
            ix.insert(f as u32);
        }
        ix
    }

    fn sorted(mut v: Vec<u32>) -> Vec<u32> {
        v.sort_unstable();
        v
    }

    #[test]
    fn single_component_spans_shared_resources() {
        // f0: {0}, f1: {0,1}, f2: {1,2} — all one component; f3: {3} apart.
        let mut ix = index(4, &[&[0], &[0, 1], &[1, 2], &[3]]);
        let (mut fs, mut rs) = (Vec::new(), Vec::new());
        ix.begin_pass();
        ix.component_from_flow(0, &mut fs, &mut rs);
        assert_eq!(sorted(fs.clone()), vec![0, 1, 2]);
        assert_eq!(sorted(rs.clone()), vec![0, 1, 2]);
        assert!(!ix.flow_seen(3));
        ix.component_from_flow(3, &mut fs, &mut rs);
        assert_eq!(fs, vec![3]);
        assert_eq!(rs, vec![3]);
    }

    #[test]
    fn removal_splits_components() {
        // f1 bridges resources 0 and 1; removing it disconnects f0 and f2.
        let mut ix = index(2, &[&[0], &[0, 1], &[1]]);
        ix.remove(1);
        let (mut fs, mut rs) = (Vec::new(), Vec::new());
        ix.begin_pass();
        ix.component_from_resource(0, &mut fs, &mut rs);
        assert_eq!(fs, vec![0]);
        assert_eq!(rs, vec![0]);
        assert!(!ix.resource_seen(1));
        ix.component_from_resource(1, &mut fs, &mut rs);
        assert_eq!(fs, vec![2]);
        assert_eq!(rs, vec![1]);
    }

    #[test]
    fn swap_remove_patches_displaced_positions() {
        // Three flows on resource 0; removing the first displaces the last.
        let mut ix = index(1, &[&[0], &[0], &[0]]);
        ix.remove(0);
        assert_eq!(sorted(ix.flows_on(0).to_vec()), vec![1, 2]);
        ix.remove(2); // works only if its position was patched
        assert_eq!(ix.flows_on(0), &[1]);
        ix.remove(1);
        assert!(ix.flows_on(0).is_empty());
    }

    #[test]
    fn pass_marks_dedupe_overlapping_seeds() {
        let mut ix = index(2, &[&[0, 1], &[0], &[1]]);
        let (mut fs, mut rs) = (Vec::new(), Vec::new());
        ix.begin_pass();
        ix.component_from_flow(1, &mut fs, &mut rs);
        assert_eq!(sorted(fs.clone()), vec![0, 1, 2]);
        // Every other seed in this component is now marked seen.
        assert!(ix.flow_seen(0) && ix.flow_seen(2));
        assert!(ix.resource_seen(0) && ix.resource_seen(1));
        // A new pass forgets the marks.
        ix.begin_pass();
        assert!(!ix.flow_seen(0));
    }

    #[test]
    fn empty_resource_component() {
        let mut ix = index(1, &[&[0]]);
        ix.remove(0);
        let (mut fs, mut rs) = (Vec::new(), Vec::new());
        ix.begin_pass();
        ix.component_from_resource(0, &mut fs, &mut rs);
        assert!(fs.is_empty());
        assert_eq!(rs, vec![0]);
    }
}
