//! The discrete-event fluid-flow engine.
//!
//! The engine advances a simulated clock over *flows* (data transfers) that
//! share *resources* (disks, NIC directions) under max-min fairness. Between
//! events rates are constant, so the next interesting instant is either the
//! earliest flow completion or the earliest timer. Callers drive the engine
//! in a loop — submit flows and timers, call [`Engine::next_event`], react —
//! which is how the `opass-runtime` crate models parallel processes without
//! needing threads or coroutines. Everything is deterministic: identical
//! call sequences produce identical event sequences.
//!
//! ## Incremental core
//!
//! Event processing is incremental along three axes (see DESIGN.md §8 for
//! the complexity comparison against the dense implementation):
//!
//! * **Component-scoped rate recomputation.** Max-min allocations decompose
//!   over connected components of the flow ↔ resource sharing graph, so an
//!   activation or completion re-runs water-filling only on the affected
//!   component. [`crate::components::ComponentIndex`] maintains the
//!   adjacency; dirty *seeds* (the activated flow, or the resources a
//!   completed flow released) replace the old global dirty flag.
//! * **ETA-indexed completions.** Predicted completion times live in a
//!   min-heap with lazy invalidation: each entry carries the generation
//!   stamp of the flow's rate at prediction time, and entries whose stamp
//!   no longer matches are discarded when they reach the top.
//! * **Virtual work.** A flow's byte progress is settled into `remaining`
//!   only when its rate changes or it completes; events leave flows in
//!   untouched components entirely unvisited.
//!
//! The previous dense implementation — global recompute plus linear
//! completion scan — is retained verbatim as
//! [`reference::ReferenceEngine`] (tests and the `reference-engine`
//! feature only) and serves as the behavioral oracle: property tests
//! assert both engines produce the same event streams.

/// The retained dense engine (behavioral oracle; see module docs).
#[cfg(any(test, feature = "reference-engine"))]
pub mod reference;

use crate::components::ComponentIndex;
use crate::fairshare::RateScratch;
use crate::flow::{FlowCompletion, FlowId, FlowPhase, FlowSpec, FlowState};
use crate::record::{Recorder, RecorderSlot, TraceEvent};
use crate::resource::{Resource, ResourceId};
use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Bytes below which a transfer is considered finished (absorbs f64 drift).
pub(crate) const BYTES_EPS: f64 = 1e-6;

/// An event produced by [`Engine::next_event`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Event {
    /// A flow finished transferring all its bytes.
    FlowCompleted(FlowCompletion),
    /// A user timer set via [`Engine::set_timer`] fired.
    TimerFired {
        /// Caller tag passed to `set_timer`.
        token: u64,
        /// Fire time (equals [`Engine::now`] when delivered).
        at: SimTime,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TimerKind {
    User { token: u64 },
    Activate(FlowId),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct TimerEntry {
    at: SimTime,
    seq: u64,
    kind: TimerKind,
}

impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A predicted completion in the ETA heap. Ordered by `(at, flow)` so that
/// simultaneous completions are delivered in ascending flow-id order — the
/// same tie-break the dense engine's keep-first linear scan produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct EtaEntry {
    at: SimTime,
    flow: u32,
    /// Flow generation at prediction time; a mismatch marks the entry stale.
    gen: u32,
}

impl Ord for EtaEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.flow, self.gen).cmp(&(other.at, other.flow, other.gen))
    }
}

impl PartialOrd for EtaEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// O(1)-insert / O(1)-remove set of active flow ids. Iteration order is
/// unspecified; everything order-sensitive goes through the sorted
/// component extraction or the ETA heap instead.
#[derive(Debug, Default)]
struct ActiveSet {
    list: Vec<u32>,
    /// Position of each flow in `list` (`u32::MAX` = not active).
    pos: Vec<u32>,
}

impl ActiveSet {
    /// Reserves a slot for a newly submitted flow (ids are sequential).
    fn register(&mut self) {
        self.pos.push(u32::MAX);
    }

    fn insert(&mut self, f: u32) {
        debug_assert_eq!(self.pos[f as usize], u32::MAX);
        self.pos[f as usize] = self.list.len() as u32;
        self.list.push(f);
    }

    fn remove(&mut self, f: u32) {
        let p = self.pos[f as usize] as usize;
        debug_assert_eq!(self.list[p], f);
        self.list.swap_remove(p);
        if p < self.list.len() {
            self.pos[self.list[p] as usize] = p as u32;
        }
        self.pos[f as usize] = u32::MAX;
    }

    #[inline]
    fn len(&self) -> usize {
        self.list.len()
    }

    #[inline]
    fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.list.iter().copied()
    }
}

/// Counters describing how much work the incremental engine actually did.
///
/// Exposed for observability and benchmarking: comparing `flows_rerated`
/// against `recompute_passes × active flows` measures directly what
/// component-scoping saved, and `eta_stale` is the lazy-invalidation
/// overhead of the completion heap.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Rate-recompute passes (one per event that dirtied any component).
    pub recompute_passes: u64,
    /// Connected components re-solved across all passes.
    pub components_recomputed: u64,
    /// Flow rate assignments that actually changed (and were settled).
    pub flows_rerated: u64,
    /// Predicted-completion entries pushed onto the ETA heap.
    pub eta_pushed: u64,
    /// Stale ETA entries discarded by lazy invalidation.
    pub eta_stale: u64,
    /// Flow completions delivered.
    pub completions: u64,
    /// User timers fired.
    pub timers_fired: u64,
}

impl EngineStats {
    /// Accumulates another engine's counters into this one — used when a
    /// logical run chains several engine instances (e.g. bulk-synchronous
    /// rounds) and wants whole-run totals.
    pub fn merge(&mut self, other: &EngineStats) {
        self.recompute_passes += other.recompute_passes;
        self.components_recomputed += other.components_recomputed;
        self.flows_rerated += other.flows_rerated;
        self.eta_pushed += other.eta_pushed;
        self.eta_stale += other.eta_stale;
        self.completions += other.completions;
        self.timers_fired += other.timers_fired;
    }
}

/// Settles a flow's virtual progress up to `at`: bytes accrued since the
/// last settle are charged against `remaining` and credited to the
/// per-resource delivery accounting. Called only when the flow's rate
/// changes or it completes.
fn settle(flow: &mut FlowState, delivered: &mut [f64], at: SimTime) {
    if flow.rate.is_finite() {
        let dt = at - flow.updated_at;
        if flow.rate > 0.0 && dt > 0.0 {
            let moved = (flow.rate * dt).min(flow.remaining);
            flow.remaining -= moved;
            for &r in &flow.resources {
                delivered[r] += moved;
            }
        }
    } else {
        flow.remaining = 0.0;
    }
    flow.updated_at = at;
}

/// Deterministic discrete-event simulator for shared-bandwidth I/O.
///
/// # Example
///
/// ```
/// use opass_simio::{Engine, Event, FlowSpec, Resource};
///
/// let mut engine = Engine::new();
/// let disk = engine.add_resource(Resource::constant("disk", 100.0));
/// // Two 100-byte transfers share the 100 B/s disk: both take 2 s.
/// engine.start_flow(FlowSpec::new(100, vec![disk], 1));
/// engine.start_flow(FlowSpec::new(100, vec![disk], 2));
/// let mut done = 0;
/// while let Some(Event::FlowCompleted(c)) = engine.next_event() {
///     assert!((c.completed_at.as_secs() - 2.0).abs() < 1e-9);
///     done += 1;
/// }
/// assert_eq!(done, 2);
/// ```
#[derive(Debug)]
pub struct Engine {
    now: SimTime,
    resources: Vec<Resource>,
    flows: Vec<FlowState>,
    /// Flows in the `Active` phase.
    active: ActiveSet,
    timers: BinaryHeap<Reverse<TimerEntry>>,
    timer_seq: u64,
    /// Predicted completions (min-heap, lazily invalidated).
    etas: BinaryHeap<Reverse<EtaEntry>>,
    /// Whether a recompute pass is pending. Set alongside the dirty seeds
    /// (and by pathless activations, which seed nothing but still count as
    /// a pass, matching the dense engine's emission cadence).
    rates_dirty: bool,
    /// Activated flows whose component must be re-solved.
    dirty_flows: Vec<u32>,
    /// Resources released by completed flows whose components must be
    /// re-solved (may contain duplicates; the pass epoch dedupes).
    dirty_res: Vec<u32>,
    /// Active flow ↔ resource adjacency, for component extraction and
    /// per-resource concurrency counts.
    index: ComponentIndex,
    /// Reusable water-filling buffers.
    scratch: RateScratch,
    /// Reusable component-extraction buffers.
    comp_flows: Vec<u32>,
    comp_res: Vec<u32>,
    /// Bytes settled through each resource; [`Engine::bytes_through`] adds
    /// the in-flight (not yet settled) complement.
    delivered: Vec<f64>,
    /// Optional structured-event sink (observability; disabled by default).
    recorder: RecorderSlot,
    /// Work counters.
    stats: EngineStats,
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

impl Engine {
    /// Creates an empty engine at time zero.
    pub fn new() -> Self {
        Engine {
            now: SimTime::ZERO,
            resources: Vec::new(),
            flows: Vec::new(),
            active: ActiveSet::default(),
            timers: BinaryHeap::new(),
            timer_seq: 0,
            etas: BinaryHeap::new(),
            rates_dirty: false,
            dirty_flows: Vec::new(),
            dirty_res: Vec::new(),
            index: ComponentIndex::new(),
            scratch: RateScratch::new(),
            comp_flows: Vec::new(),
            comp_res: Vec::new(),
            delivered: Vec::new(),
            recorder: RecorderSlot::empty(),
            stats: EngineStats::default(),
        }
    }

    /// Installs a structured-event [`Recorder`]. Without one, emit sites
    /// cost a single branch and build no events.
    pub fn set_recorder(&mut self, recorder: Box<dyn Recorder>) {
        self.recorder.install(recorder);
    }

    /// Whether a recorder is installed.
    pub fn recording(&self) -> bool {
        self.recorder.enabled()
    }

    /// Emits an event to the installed recorder (no-op without one). Public
    /// so higher layers ([`crate::ClusterIo`], the runtime executor) can
    /// interleave their own events with the engine's in one stream.
    #[inline]
    pub fn emit(&mut self, event: TraceEvent) {
        self.recorder.emit(event);
    }

    /// Work counters accumulated since construction.
    #[inline]
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Registers a resource and returns its id.
    pub fn add_resource(&mut self, resource: Resource) -> ResourceId {
        let id = ResourceId(u32::try_from(self.resources.len()).expect("too many resources"));
        self.resources.push(resource);
        self.delivered.push(0.0);
        self.index.add_resource();
        id
    }

    /// Returns the resource behind an id.
    pub fn resource(&self, id: ResourceId) -> &Resource {
        &self.resources[id.index()]
    }

    /// Number of registered resources.
    pub fn resource_count(&self) -> usize {
        self.resources.len()
    }

    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of flows currently transferring (excludes latent ones).
    pub fn active_flow_count(&self) -> usize {
        self.active.len()
    }

    /// Total bytes that have traversed `resource` so far — per-resource
    /// utilization accounting (e.g. how much data each disk streamed or
    /// each rack uplink carried). Includes the virtual (not yet settled)
    /// progress of in-flight flows, so mid-run reads see current totals.
    pub fn bytes_through(&self, resource: ResourceId) -> f64 {
        let r = resource.index();
        let mut total = self.delivered[r];
        for &f in self.index.flows_on(r) {
            let flow = &self.flows[f as usize];
            if flow.rate.is_finite() && flow.rate > 0.0 {
                let dt = self.now - flow.updated_at;
                if dt > 0.0 {
                    total += (flow.rate * dt).min(flow.remaining);
                }
            }
        }
        total
    }

    /// Mean utilization of `resource` since time zero: bytes carried
    /// divided by what the base capacity could have carried. Returns 0
    /// before any time has passed.
    pub fn utilization(&self, resource: ResourceId) -> f64 {
        let elapsed = self.now.as_secs();
        if elapsed <= 0.0 {
            return 0.0;
        }
        let possible = self.resources[resource.index()].base_capacity * elapsed;
        self.bytes_through(resource) / possible
    }

    /// Submits a flow. It starts transferring after its startup latency.
    ///
    /// # Panics
    ///
    /// Panics if the spec references an unknown resource.
    pub fn start_flow(&mut self, spec: FlowSpec) -> FlowId {
        for r in &spec.path {
            assert!(
                r.index() < self.resources.len(),
                "flow references unknown resource {:?}",
                r
            );
        }
        let id = FlowId(self.flows.len() as u64);
        let latency = spec.latency;
        let state = FlowState::new(spec, self.now);
        self.index.register_flow(&state.resources);
        self.active.register();
        self.flows.push(state);
        if latency > 0.0 {
            self.push_timer(self.now + latency, TimerKind::Activate(id));
        } else {
            self.activate(id);
        }
        id
    }

    /// Schedules a user timer `delay` seconds from now.
    pub fn set_timer(&mut self, delay: f64, token: u64) {
        assert!(
            delay.is_finite() && delay >= 0.0,
            "timer delay must be finite and non-negative"
        );
        self.push_timer(self.now + delay, TimerKind::User { token });
    }

    fn push_timer(&mut self, at: SimTime, kind: TimerKind) {
        let entry = TimerEntry {
            at,
            seq: self.timer_seq,
            kind,
        };
        self.timer_seq += 1;
        self.timers.push(Reverse(entry));
    }

    fn activate(&mut self, id: FlowId) {
        let idx = id.index();
        let f = idx as u32;
        let now = self.now;
        let flow = &mut self.flows[idx];
        debug_assert_eq!(flow.phase, FlowPhase::Latent);
        flow.phase = FlowPhase::Active;
        flow.active_at = Some(now);
        flow.updated_at = now;
        let pathless = flow.resources.is_empty();
        if pathless {
            // No shared resources: the allocator would hand the flow its
            // rate cap (infinite when uncapped), so assign it directly and
            // skip component recomputation entirely.
            flow.rate = flow.spec.rate_cap;
            flow.gen = flow.gen.wrapping_add(1);
        }
        self.active.insert(f);
        self.index.insert(f);
        if pathless {
            self.push_eta(f);
        } else {
            self.dirty_flows.push(f);
        }
        self.rates_dirty = true;
    }

    /// Pushes a predicted completion for flow `f` from its current state.
    fn push_eta(&mut self, f: u32) {
        let flow = &self.flows[f as usize];
        let at = if flow.remaining <= BYTES_EPS || flow.rate.is_infinite() {
            self.now
        } else {
            debug_assert!(
                flow.rate > 0.0,
                "active flow {f} has zero rate; resources saturated to zero?"
            );
            if flow.rate <= 0.0 {
                return; // defensive: stuck flow, no predicted completion
            }
            self.now + flow.remaining / flow.rate
        };
        let gen = flow.gen;
        self.etas.push(Reverse(EtaEntry { at, flow: f, gen }));
        self.stats.eta_pushed += 1;
    }

    /// Re-solves every component reachable from the dirty seeds, settles
    /// and re-stamps flows whose rate changed, and emits one
    /// [`TraceEvent::RatesRecomputed`] for the pass.
    fn recompute_dirty(&mut self) {
        self.index.begin_pass();
        let mut si = 0;
        while si < self.dirty_flows.len() {
            let f = self.dirty_flows[si];
            si += 1;
            if self.flows[f as usize].phase != FlowPhase::Active || self.index.flow_seen(f) {
                continue;
            }
            let mut comp_flows = std::mem::take(&mut self.comp_flows);
            let mut comp_res = std::mem::take(&mut self.comp_res);
            self.index
                .component_from_flow(f, &mut comp_flows, &mut comp_res);
            self.comp_flows = comp_flows;
            self.comp_res = comp_res;
            self.solve_component();
        }
        let mut sj = 0;
        while sj < self.dirty_res.len() {
            let r = self.dirty_res[sj];
            sj += 1;
            if self.index.resource_seen(r) {
                continue;
            }
            let mut comp_flows = std::mem::take(&mut self.comp_flows);
            let mut comp_res = std::mem::take(&mut self.comp_res);
            self.index
                .component_from_resource(r, &mut comp_flows, &mut comp_res);
            self.comp_flows = comp_flows;
            self.comp_res = comp_res;
            if !self.comp_flows.is_empty() {
                self.solve_component();
            }
        }
        self.dirty_flows.clear();
        self.dirty_res.clear();
        self.rates_dirty = false;
        self.stats.recompute_passes += 1;
        if self.recorder.enabled() {
            let (mut min_rate, mut max_rate) = (f64::INFINITY, 0.0f64);
            for f in self.active.iter() {
                let r = self.flows[f as usize].rate;
                min_rate = min_rate.min(r);
                max_rate = max_rate.max(r);
            }
            if self.active.len() == 0 {
                min_rate = 0.0;
            }
            self.recorder.emit(TraceEvent::RatesRecomputed {
                at: self.now.as_secs(),
                active_flows: self.active.len(),
                min_rate,
                max_rate,
            });
        }
    }

    /// Water-fills one component (the `comp_flows` / `comp_res` buffers)
    /// and applies the resulting rates. Components are solved with flows
    /// and resources in ascending id order, which makes the arithmetic —
    /// and hence the rates — bit-identical to a global dense recompute.
    fn solve_component(&mut self) {
        self.comp_flows.sort_unstable();
        self.comp_res.sort_unstable();
        self.scratch.begin();
        for &r in &self.comp_res {
            let ri = r as usize;
            let n = self.index.flows_on(ri).len();
            self.scratch
                .push_resource(ri, self.resources[ri].capacity(n));
        }
        for &f in &self.comp_flows {
            let flow = &self.flows[f as usize];
            self.scratch.push_flow(&flow.resources, flow.spec.rate_cap);
        }
        let rates = self.scratch.fill();
        let now = self.now;
        for (k, &f) in self.comp_flows.iter().enumerate() {
            let new_rate = rates[k];
            let flow = &mut self.flows[f as usize];
            if new_rate.to_bits() == flow.rate.to_bits() {
                continue; // rate untouched: no settle, ETA entry stays valid
            }
            settle(flow, &mut self.delivered, now);
            flow.rate = new_rate;
            flow.gen = flow.gen.wrapping_add(1);
            self.stats.flows_rerated += 1;
            let at = if flow.remaining <= BYTES_EPS || new_rate.is_infinite() {
                now
            } else {
                debug_assert!(
                    new_rate > 0.0,
                    "active flow {f} has zero rate; resources saturated to zero?"
                );
                if new_rate <= 0.0 {
                    continue; // defensive: stuck flow, no predicted completion
                }
                now + flow.remaining / new_rate
            };
            let gen = flow.gen;
            self.etas.push(Reverse(EtaEntry { at, flow: f, gen }));
            self.stats.eta_pushed += 1;
        }
        self.stats.components_recomputed += 1;
    }

    /// Earliest valid predicted completion, discarding stale heap entries.
    fn peek_completion(&mut self) -> Option<(SimTime, u32)> {
        while let Some(&Reverse(e)) = self.etas.peek() {
            let flow = &self.flows[e.flow as usize];
            if flow.phase == FlowPhase::Active && flow.gen == e.gen {
                return Some((e.at, e.flow));
            }
            self.etas.pop();
            self.stats.eta_stale += 1;
        }
        None
    }

    /// Advances the clock to the next event and returns it, or `None` when
    /// no flows or timers remain.
    pub fn next_event(&mut self) -> Option<Event> {
        loop {
            if self.rates_dirty {
                self.recompute_dirty();
            }
            let completion = self.peek_completion();
            let timer_at = self.timers.peek().map(|&Reverse(e)| e.at);

            let take_timer = match (completion, timer_at) {
                (None, None) => return None,
                (None, Some(_)) => true,
                (Some(_), None) => false,
                // Prefer timers on ties so latent flows activate before
                // concurrent completions are delivered.
                (Some((ct, _)), Some(tt)) => tt <= ct,
            };

            if take_timer {
                let Reverse(entry) = self.timers.pop().expect("peeked timer must exist");
                debug_assert!(
                    entry.at - self.now >= -1e-12,
                    "time must not move backwards"
                );
                self.now = self.now.max(entry.at);
                match entry.kind {
                    TimerKind::Activate(id) => {
                        self.activate(id);
                        continue;
                    }
                    TimerKind::User { token } => {
                        self.stats.timers_fired += 1;
                        return Some(Event::TimerFired {
                            token,
                            at: self.now,
                        });
                    }
                }
            } else {
                let (at, f) = completion.expect("completion must exist");
                self.etas.pop();
                debug_assert!(at - self.now >= -1e-12, "time must not move backwards");
                self.now = self.now.max(at);
                let fi = f as usize;
                settle(&mut self.flows[fi], &mut self.delivered, self.now);
                let flow = &mut self.flows[fi];
                flow.remaining = 0.0;
                flow.phase = FlowPhase::Completed;
                flow.gen = flow.gen.wrapping_add(1);
                let completion = FlowCompletion {
                    flow: FlowId(fi as u64),
                    token: flow.spec.token,
                    bytes: flow.spec.bytes,
                    issued_at: flow.issued_at,
                    completed_at: self.now,
                };
                self.active.remove(f);
                for &r in &self.flows[fi].resources {
                    self.dirty_res.push(r as u32);
                }
                self.index.remove(f);
                self.rates_dirty = true;
                self.stats.completions += 1;
                self.recorder.emit_with(|| TraceEvent::FlowFinished {
                    at: completion.completed_at.as_secs(),
                    token: completion.token,
                    bytes: completion.bytes,
                });
                return Some(Event::FlowCompleted(completion));
            }
        }
    }

    /// Runs the engine to exhaustion, collecting all flow completions.
    ///
    /// Useful when the full set of flows is known upfront (no reactive
    /// scheduling). Timer events are discarded.
    pub fn drain(&mut self) -> Vec<FlowCompletion> {
        let mut out = Vec::new();
        while let Some(ev) = self.next_event() {
            if let Event::FlowCompleted(c) = ev {
                out.push(c);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn constant(engine: &mut Engine, cap: f64) -> ResourceId {
        engine.add_resource(Resource::constant("r", cap))
    }

    #[test]
    fn empty_engine_yields_nothing() {
        let mut e = Engine::new();
        assert_eq!(e.next_event(), None);
    }

    #[test]
    fn single_flow_duration_is_size_over_capacity() {
        let mut e = Engine::new();
        let r = constant(&mut e, 100.0);
        e.start_flow(FlowSpec::new(250, vec![r], 9));
        match e.next_event() {
            Some(Event::FlowCompleted(c)) => {
                assert_eq!(c.token, 9);
                assert!((c.completed_at.as_secs() - 2.5).abs() < 1e-9);
            }
            other => panic!("unexpected event {other:?}"),
        }
        assert_eq!(e.next_event(), None);
    }

    #[test]
    fn latency_delays_transfer() {
        let mut e = Engine::new();
        let r = constant(&mut e, 100.0);
        e.start_flow(FlowSpec::new(100, vec![r], 0).with_latency(0.5));
        match e.next_event() {
            Some(Event::FlowCompleted(c)) => {
                assert!((c.completed_at.as_secs() - 1.5).abs() < 1e-9);
            }
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn two_flows_share_then_speed_up() {
        // Flow A: 100 bytes, flow B: 300 bytes, on a 100 B/s resource.
        // Shared phase: both at 50 B/s until A finishes at t=2 (A done).
        // B then has 200 bytes left at 100 B/s -> finishes at t=4.
        let mut e = Engine::new();
        let r = constant(&mut e, 100.0);
        e.start_flow(FlowSpec::new(100, vec![r], 1));
        e.start_flow(FlowSpec::new(300, vec![r], 2));
        let c1 = match e.next_event().unwrap() {
            Event::FlowCompleted(c) => c,
            ev => panic!("unexpected {ev:?}"),
        };
        assert_eq!(c1.token, 1);
        assert!((c1.completed_at.as_secs() - 2.0).abs() < 1e-9);
        let c2 = match e.next_event().unwrap() {
            Event::FlowCompleted(c) => c,
            ev => panic!("unexpected {ev:?}"),
        };
        assert_eq!(c2.token, 2);
        assert!(
            (c2.completed_at.as_secs() - 4.0).abs() < 1e-9,
            "got {}",
            c2.completed_at
        );
    }

    #[test]
    fn timer_fires_between_completions() {
        let mut e = Engine::new();
        let r = constant(&mut e, 100.0);
        e.start_flow(FlowSpec::new(1000, vec![r], 1)); // completes at 10s
        e.set_timer(3.0, 42);
        match e.next_event().unwrap() {
            Event::TimerFired { token, at } => {
                assert_eq!(token, 42);
                assert!((at.as_secs() - 3.0).abs() < 1e-9);
            }
            ev => panic!("unexpected {ev:?}"),
        }
        match e.next_event().unwrap() {
            Event::FlowCompleted(c) => {
                assert!((c.completed_at.as_secs() - 10.0).abs() < 1e-9);
            }
            ev => panic!("unexpected {ev:?}"),
        }
    }

    #[test]
    fn reactive_submission_mid_simulation() {
        // Submit a second flow when the first completes; durations chain.
        let mut e = Engine::new();
        let r = constant(&mut e, 10.0);
        e.start_flow(FlowSpec::new(100, vec![r], 1));
        let first = e.next_event().unwrap();
        assert!(matches!(first, Event::FlowCompleted(c) if c.token == 1));
        e.start_flow(FlowSpec::new(50, vec![r], 2));
        match e.next_event().unwrap() {
            Event::FlowCompleted(c) => {
                assert_eq!(c.token, 2);
                assert!((c.completed_at.as_secs() - 15.0).abs() < 1e-9);
            }
            ev => panic!("unexpected {ev:?}"),
        }
    }

    #[test]
    fn zero_byte_flow_completes_after_latency() {
        let mut e = Engine::new();
        let r = constant(&mut e, 10.0);
        e.start_flow(FlowSpec::new(0, vec![r], 5).with_latency(0.25));
        match e.next_event().unwrap() {
            Event::FlowCompleted(c) => {
                assert_eq!(c.bytes, 0);
                assert!((c.completed_at.as_secs() - 0.25).abs() < 1e-9);
            }
            ev => panic!("unexpected {ev:?}"),
        }
    }

    #[test]
    fn pathless_flow_is_pure_latency() {
        let mut e = Engine::new();
        e.start_flow(FlowSpec::new(1 << 30, vec![], 1).with_latency(1.0));
        match e.next_event().unwrap() {
            Event::FlowCompleted(c) => {
                assert!((c.completed_at.as_secs() - 1.0).abs() < 1e-9);
            }
            ev => panic!("unexpected {ev:?}"),
        }
    }

    #[test]
    fn seek_degradation_slows_contended_disk() {
        // One lone transfer vs. the same transfer alongside five others on a
        // degrading disk: the lone one must be strictly faster than 6x-share.
        let params = |e: &mut Engine| e.add_resource(Resource::disk("sda", 100.0, 0.25, 0.2));
        let mut lone = Engine::new();
        let d = params(&mut lone);
        lone.start_flow(FlowSpec::new(1000, vec![d], 0));
        let lone_done = lone.drain()[0].completed_at.as_secs();
        assert!((lone_done - 10.0).abs() < 1e-9);

        let mut busy = Engine::new();
        let d = params(&mut busy);
        for t in 0..6 {
            busy.start_flow(FlowSpec::new(1000, vec![d], t));
        }
        let completions = busy.drain();
        assert_eq!(completions.len(), 6);
        let last = completions.last().unwrap().completed_at.as_secs();
        // Aggregate at n=6 is 100*(0.2+0.8/2.25)=55.55 B/s for 6000 bytes
        // -> 108 s, far worse than the 60 s a non-degrading disk would take.
        assert!(last > 100.0, "last={last}");
    }

    #[test]
    fn drain_returns_all_completions_in_time_order() {
        let mut e = Engine::new();
        let r = constant(&mut e, 100.0);
        for i in 0..10 {
            e.start_flow(FlowSpec::new(100 * (i + 1), vec![r], i));
        }
        let completions = e.drain();
        assert_eq!(completions.len(), 10);
        for w in completions.windows(2) {
            assert!(w[0].completed_at <= w[1].completed_at);
        }
    }

    #[test]
    fn utilization_accounting_conserves_bytes() {
        let mut e = Engine::new();
        let a = constant(&mut e, 100.0);
        let b = constant(&mut e, 50.0);
        e.start_flow(FlowSpec::new(500, vec![a, b], 1));
        e.start_flow(FlowSpec::new(300, vec![a], 2));
        e.drain();
        // Resource b carried only the first flow; a carried both.
        assert!((e.bytes_through(b) - 500.0).abs() < 1e-6);
        assert!((e.bytes_through(a) - 800.0).abs() < 1e-6);
        // Utilization is bounded by 1 and positive once data moved.
        assert!(e.utilization(a) > 0.0 && e.utilization(a) <= 1.0 + 1e-9);
    }

    #[test]
    fn bytes_through_includes_in_flight_progress() {
        // Virtual-work accounting must not make mid-run utilization reads
        // stale: after 3 of 10 seconds, ~300 of 1000 bytes have traversed.
        let mut e = Engine::new();
        let r = constant(&mut e, 100.0);
        e.start_flow(FlowSpec::new(1000, vec![r], 1));
        e.set_timer(3.0, 7);
        assert!(matches!(e.next_event(), Some(Event::TimerFired { .. })));
        assert!((e.bytes_through(r) - 300.0).abs() < 1e-6);
        assert!((e.utilization(r) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_replay() {
        let run = || {
            let mut e = Engine::new();
            let a = e.add_resource(Resource::disk("a", 72e6, 0.25, 0.2));
            let b = e.add_resource(Resource::constant("b", 117e6));
            for i in 0..20 {
                let path = if i % 2 == 0 { vec![a] } else { vec![a, b] };
                e.start_flow(FlowSpec::new(64 << 20, path, i).with_latency(0.01 * i as f64));
            }
            e.drain()
                .iter()
                .map(|c| (c.token, c.completed_at.as_secs()))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn zero_latency_activations_preserve_submission_order() {
        // Zero-latency flows activate synchronously inside start_flow, and
        // identical flows complete tie-broken by flow id — so completion
        // order must equal submission order, with equal timestamps.
        let mut e = Engine::new();
        let r = constant(&mut e, 100.0);
        for t in [3u64, 1, 2] {
            e.start_flow(FlowSpec::new(200, vec![r], t));
        }
        let done = e.drain();
        assert_eq!(done.iter().map(|c| c.token).collect::<Vec<_>>(), [3, 1, 2]);
        assert!(done.iter().all(|c| c.completed_at == done[0].completed_at));
    }

    #[test]
    fn equal_latency_activations_preserve_submission_order() {
        // Latent flows with the same activation instant are released in
        // submission order (timer sequence numbers break the tie).
        let mut e = Engine::new();
        let r = constant(&mut e, 100.0);
        for t in [9u64, 4, 6] {
            e.start_flow(FlowSpec::new(100, vec![r], t).with_latency(0.5));
        }
        let done = e.drain();
        assert_eq!(done.iter().map(|c| c.token).collect::<Vec<_>>(), [9, 4, 6]);
    }

    #[test]
    fn simultaneous_completions_tie_break_by_flow_id() {
        // Four identical flows on two disjoint resources all finish at the
        // same instant; delivery order must be ascending flow id even
        // though the active-set iteration order is unspecified.
        let mut e = Engine::new();
        let a = constant(&mut e, 100.0);
        let b = constant(&mut e, 100.0);
        let ids: Vec<FlowId> = [(a, 10u64), (b, 11), (a, 12), (b, 13)]
            .into_iter()
            .map(|(r, t)| e.start_flow(FlowSpec::new(400, vec![r], t)))
            .collect();
        let done = e.drain();
        assert_eq!(
            done.iter().map(|c| c.flow).collect::<Vec<_>>(),
            ids,
            "completions must be delivered in flow-id order"
        );
        assert!((done[0].completed_at.as_secs() - 8.0).abs() < 1e-9);
        assert!(done.iter().all(|c| c.completed_at == done[0].completed_at));
    }

    #[test]
    fn uncapped_pathless_flow_completes_instantly() {
        // Infinite rate: all bytes move in zero time, at the current clock.
        let mut e = Engine::new();
        e.start_flow(FlowSpec::new(1 << 40, vec![], 3));
        match e.next_event().unwrap() {
            Event::FlowCompleted(c) => {
                assert_eq!(c.token, 3);
                assert_eq!(c.completed_at.as_secs(), 0.0);
            }
            ev => panic!("unexpected {ev:?}"),
        }
    }

    #[test]
    fn capped_pathless_flow_runs_at_its_cap() {
        // A rate cap makes a pathless flow a fixed-duration transfer that
        // shares nothing: 100 bytes at 50 B/s after 0.5 s latency.
        let mut e = Engine::new();
        e.start_flow(
            FlowSpec::new(100, vec![], 8)
                .with_latency(0.5)
                .with_rate_cap(50.0),
        );
        match e.next_event().unwrap() {
            Event::FlowCompleted(c) => {
                assert!((c.completed_at.as_secs() - 2.5).abs() < 1e-9);
            }
            ev => panic!("unexpected {ev:?}"),
        }
    }

    #[test]
    fn pathless_flows_do_not_disturb_other_components() {
        // A burst of pathless flows must not change the rate of a disk
        // transfer (no shared resources => different components).
        let mut e = Engine::new();
        let r = constant(&mut e, 100.0);
        e.start_flow(FlowSpec::new(1000, vec![r], 1));
        for t in 0..8u64 {
            e.start_flow(FlowSpec::new(1, vec![], 100 + t).with_latency(0.1 * (t + 1) as f64));
        }
        let done = e.drain();
        let disk_done = done.iter().find(|c| c.token == 1).unwrap();
        assert!((disk_done.completed_at.as_secs() - 10.0).abs() < 1e-9);
        let stats = e.stats();
        assert_eq!(stats.completions, 9);
        // The disk flow is rerated exactly once (on activation): pathless
        // activations seed no component.
        assert_eq!(stats.flows_rerated, 1);
    }

    #[test]
    fn component_scoping_limits_rerates() {
        // Two disjoint pairs of flows: completing a flow in one pair must
        // not re-rate the other pair. With global recomputation every
        // event would touch every active flow.
        let mut e = Engine::new();
        let a = constant(&mut e, 100.0);
        let b = constant(&mut e, 100.0);
        e.start_flow(FlowSpec::new(100, vec![a], 0));
        e.start_flow(FlowSpec::new(300, vec![a], 1));
        e.start_flow(FlowSpec::new(100, vec![b], 2));
        e.start_flow(FlowSpec::new(300, vec![b], 3));
        e.drain();
        let stats = e.stats();
        // All four zero-latency activations batch into the first pass
        // (each flow rated once, at 50), then per pair the first
        // completion speeds the survivor up (+1) and the last completion
        // rerates nothing: 4 + 2 = 6 total.
        assert_eq!(stats.flows_rerated, 6);
        assert_eq!(stats.completions, 4);
        assert!(stats.components_recomputed >= 4);
    }

    #[test]
    fn rates_recomputed_emitted_once_per_pass() {
        use crate::record::MemoryRecorder;

        // Two staggered flows: passes happen at activation(t=0),
        // activation(t=0.5), completion, completion — four total, emitted
        // exactly once each regardless of how many components were solved.
        let log = MemoryRecorder::new();
        let mut e = Engine::new();
        let r = constant(&mut e, 100.0);
        e.set_recorder(Box::new(log.clone()));
        e.start_flow(FlowSpec::new(100, vec![r], 1));
        e.start_flow(FlowSpec::new(100, vec![r], 2).with_latency(0.5));
        e.drain();
        let recomputes = log
            .snapshot()
            .iter()
            .filter(|ev| matches!(ev, TraceEvent::RatesRecomputed { .. }))
            .count();
        assert_eq!(recomputes, 4);
        assert_eq!(e.stats().recompute_passes, 4);
    }

    #[test]
    fn noop_recorder_does_not_change_results_or_stats() {
        use crate::record::NoopRecorder;

        let run = |with_recorder: bool| {
            let mut e = Engine::new();
            let a = e.add_resource(Resource::disk("a", 72e6, 0.25, 0.2));
            let b = e.add_resource(Resource::constant("b", 117e6));
            if with_recorder {
                e.set_recorder(Box::new(NoopRecorder));
            }
            for i in 0..12 {
                let path = if i % 3 == 0 { vec![a] } else { vec![a, b] };
                e.start_flow(FlowSpec::new(1 << 20, path, i).with_latency(0.02 * i as f64));
            }
            let done = e
                .drain()
                .iter()
                .map(|c| (c.token, c.completed_at.as_secs()))
                .collect::<Vec<_>>();
            (done, e.stats())
        };
        assert_eq!(run(false), run(true));
    }
}

#[cfg(test)]
mod equivalence {
    //! Property tests: the incremental engine must produce the same event
    //! stream as the retained dense reference engine on randomized
    //! workloads — same completion order and tokens, same timestamps (to
    //! float-association dust), same rate extrema at every recompute pass.

    use super::reference::ReferenceEngine;
    use super::*;
    use crate::record::MemoryRecorder;
    use rand::{Rng, SeedableRng};

    const TIME_TOL: f64 = 1e-6;
    const RATE_TOL: f64 = 1e-9;

    /// A randomized workload as plain spec data, replayable identically
    /// into both engines.
    struct Workload {
        resources: Vec<Resource>,
        specs: Vec<FlowSpec>,
        timers: Vec<(f64, u64)>,
    }

    fn random_workload(seed: u64) -> Workload {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let nr = rng.gen_range(2usize..10);
        let resources: Vec<Resource> = (0..nr)
            .map(|_| {
                if rng.gen_bool(0.5) {
                    Resource::disk("d", rng.gen_range(50.0..200.0), 0.35, 0.15)
                } else {
                    Resource::constant("c", rng.gen_range(80.0..300.0))
                }
            })
            .collect();
        let nf = rng.gen_range(5usize..60);
        let specs = (0..nf)
            .map(|token| {
                let plen = rng.gen_range(0usize..=3);
                let path: Vec<ResourceId> = (0..plen)
                    .map(|_| ResourceId(rng.gen_range(0u32..nr as u32)))
                    .collect();
                let mut spec = FlowSpec::new(rng.gen_range(1u64..200_000), path, token as u64)
                    .with_latency(rng.gen_range(0.0..3.0));
                if rng.gen_bool(0.3) {
                    spec = spec.with_rate_cap(rng.gen_range(5.0..150.0));
                }
                spec
            })
            .collect();
        let timers = (0..rng.gen_range(0usize..5))
            .map(|i| (rng.gen_range(0.0..5.0), 1_000 + i as u64))
            .collect();
        Workload {
            resources,
            specs,
            timers,
        }
    }

    /// Everything observable about a run: delivered events, the recorded
    /// trace (which includes per-pass rate extrema), and final accounting.
    #[derive(Debug)]
    struct RunTrace {
        events: Vec<Event>,
        trace: Vec<TraceEvent>,
        final_now: f64,
        bytes_through: Vec<f64>,
    }

    /// Drives either engine type through a workload (both expose the same
    /// method names, so a macro stands in for a trait).
    macro_rules! drive {
        ($engine:expr, $w:expr) => {{
            let engine = $engine;
            let w = $w;
            let log = MemoryRecorder::new();
            engine.set_recorder(Box::new(log.clone()));
            let ids: Vec<_> = w
                .resources
                .iter()
                .map(|r| engine.add_resource(r.clone()))
                .collect();
            for spec in &w.specs {
                let mut spec = spec.clone();
                spec.path = spec.path.iter().map(|r| ids[r.index()]).collect();
                engine.start_flow(spec);
            }
            for &(delay, token) in &w.timers {
                engine.set_timer(delay, token);
            }
            let mut events = Vec::new();
            while let Some(ev) = engine.next_event() {
                events.push(ev);
            }
            let bytes_through = ids.iter().map(|&r| engine.bytes_through(r)).collect();
            RunTrace {
                events,
                trace: log.snapshot(),
                final_now: engine.now().as_secs(),
                bytes_through,
            }
        }};
    }

    fn assert_equivalent(seed: u64, inc: &RunTrace, dense: &RunTrace) {
        assert_eq!(
            inc.events.len(),
            dense.events.len(),
            "seed {seed}: event counts differ"
        );
        for (k, (a, b)) in inc.events.iter().zip(&dense.events).enumerate() {
            match (a, b) {
                (Event::FlowCompleted(x), Event::FlowCompleted(y)) => {
                    assert_eq!(x.flow, y.flow, "seed {seed} event {k}: flow order differs");
                    assert_eq!(x.token, y.token, "seed {seed} event {k}");
                    assert_eq!(x.bytes, y.bytes, "seed {seed} event {k}");
                    assert!(
                        (x.completed_at.as_secs() - y.completed_at.as_secs()).abs() <= TIME_TOL,
                        "seed {seed} event {k}: completion times {} vs {}",
                        x.completed_at,
                        y.completed_at
                    );
                }
                (
                    Event::TimerFired { token: ta, at: aa },
                    Event::TimerFired { token: tb, at: ab },
                ) => {
                    assert_eq!(ta, tb, "seed {seed} event {k}");
                    assert_eq!(aa, ab, "seed {seed} event {k}");
                }
                _ => panic!("seed {seed} event {k}: kinds differ ({a:?} vs {b:?})"),
            }
        }
        assert!(
            (inc.final_now - dense.final_now).abs() <= TIME_TOL,
            "seed {seed}: final clocks {} vs {}",
            inc.final_now,
            dense.final_now
        );
        for (r, (x, y)) in inc
            .bytes_through
            .iter()
            .zip(&dense.bytes_through)
            .enumerate()
        {
            let tol = 1e-6 * (1.0 + x.abs());
            assert!(
                (x - y).abs() <= tol,
                "seed {seed}: bytes_through[{r}] {x} vs {y}"
            );
        }
        // Recompute passes line up one-to-one, with identical active counts
        // and rate extrema (expected bit-identical; asserted to 1e-9).
        let recs = |t: &RunTrace| {
            t.trace
                .iter()
                .filter_map(|ev| match ev {
                    TraceEvent::RatesRecomputed {
                        at,
                        active_flows,
                        min_rate,
                        max_rate,
                    } => Some((*at, *active_flows, *min_rate, *max_rate)),
                    _ => None,
                })
                .collect::<Vec<_>>()
        };
        let (ri, rd) = (recs(inc), recs(dense));
        assert_eq!(ri.len(), rd.len(), "seed {seed}: recompute pass counts");
        let close = |x: f64, y: f64| {
            (x - y).abs() <= RATE_TOL * (1.0 + x.abs()) || (x.is_infinite() && y.is_infinite())
        };
        for (k, (a, b)) in ri.iter().zip(&rd).enumerate() {
            assert!((a.0 - b.0).abs() <= TIME_TOL, "seed {seed} pass {k}: time");
            assert_eq!(a.1, b.1, "seed {seed} pass {k}: active count");
            assert!(
                close(a.2, b.2),
                "seed {seed} pass {k}: min {} vs {}",
                a.2,
                b.2
            );
            assert!(
                close(a.3, b.3),
                "seed {seed} pass {k}: max {} vs {}",
                a.3,
                b.3
            );
        }
    }

    #[test]
    fn incremental_matches_reference_on_random_workloads() {
        for seed in 0..40 {
            let w = random_workload(seed);
            let inc = drive!(&mut Engine::new(), &w);
            let dense = drive!(&mut ReferenceEngine::new(), &w);
            assert_equivalent(seed, &inc, &dense);
        }
    }

    #[test]
    fn incremental_matches_reference_on_contended_single_resource() {
        // Everything in one component: scoping degenerates to the global
        // solve and must still agree.
        for seed in 100..110 {
            let mut w = random_workload(seed);
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xDEAD);
            for spec in &mut w.specs {
                spec.path = vec![ResourceId(0)];
                if rng.gen_bool(0.5) {
                    spec.latency = 0.0;
                }
            }
            let inc = drive!(&mut Engine::new(), &w);
            let dense = drive!(&mut ReferenceEngine::new(), &w);
            assert_equivalent(seed, &inc, &dense);
        }
    }

    #[test]
    fn incremental_matches_reference_with_reactive_submission() {
        // Interleave event consumption with new submissions: exercises
        // dirty-seed accumulation across caller turns.
        macro_rules! reactive_run {
            ($engine:expr) => {{
                let e = $engine;
                let r = e.add_resource(Resource::constant("c", 100.0));
                for t in 0..4u64 {
                    e.start_flow(FlowSpec::new(500 + 100 * t, vec![r], t));
                }
                let mut out = Vec::new();
                let mut next_token = 100u64;
                while let Some(ev) = e.next_event() {
                    if let Event::FlowCompleted(c) = ev {
                        out.push((c.token, c.completed_at.as_secs()));
                        if next_token < 106 {
                            e.start_flow(FlowSpec::new(300, vec![r], next_token).with_latency(0.1));
                            next_token += 1;
                        }
                    }
                }
                out
            }};
        }
        let inc = reactive_run!(&mut Engine::new());
        let dense = reactive_run!(&mut ReferenceEngine::new());
        assert_eq!(inc.len(), dense.len());
        for ((ta, xa), (tb, xb)) in inc.iter().zip(&dense) {
            assert_eq!(ta, tb);
            assert!((xa - xb).abs() <= TIME_TOL, "{xa} vs {xb}");
        }
    }
}
