//! The discrete-event fluid-flow engine.
//!
//! The engine advances a simulated clock over *flows* (data transfers) that
//! share *resources* (disks, NIC directions) under max-min fairness. Between
//! events rates are constant, so the next interesting instant is either the
//! earliest flow completion or the earliest timer. Callers drive the engine
//! in a loop — submit flows and timers, call [`Engine::next_event`], react —
//! which is how the `opass-runtime` crate models parallel processes without
//! needing threads or coroutines. Everything is deterministic: identical
//! call sequences produce identical event sequences.

use crate::fairshare::{allocate_rates, FlowPath};
use crate::flow::{FlowCompletion, FlowId, FlowPhase, FlowSpec, FlowState};
use crate::record::{Recorder, RecorderSlot, TraceEvent};
use crate::resource::{Resource, ResourceId};
use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Bytes below which a transfer is considered finished (absorbs f64 drift).
const BYTES_EPS: f64 = 1e-6;

/// An event produced by [`Engine::next_event`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Event {
    /// A flow finished transferring all its bytes.
    FlowCompleted(FlowCompletion),
    /// A user timer set via [`Engine::set_timer`] fired.
    TimerFired {
        /// Caller tag passed to `set_timer`.
        token: u64,
        /// Fire time (equals [`Engine::now`] when delivered).
        at: SimTime,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TimerKind {
    User { token: u64 },
    Activate(FlowId),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct TimerEntry {
    at: SimTime,
    seq: u64,
    kind: TimerKind,
}

impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Deterministic discrete-event simulator for shared-bandwidth I/O.
///
/// # Example
///
/// ```
/// use opass_simio::{Engine, Event, FlowSpec, Resource};
///
/// let mut engine = Engine::new();
/// let disk = engine.add_resource(Resource::constant("disk", 100.0));
/// // Two 100-byte transfers share the 100 B/s disk: both take 2 s.
/// engine.start_flow(FlowSpec::new(100, vec![disk], 1));
/// engine.start_flow(FlowSpec::new(100, vec![disk], 2));
/// let mut done = 0;
/// while let Some(Event::FlowCompleted(c)) = engine.next_event() {
///     assert!((c.completed_at.as_secs() - 2.0).abs() < 1e-9);
///     done += 1;
/// }
/// assert_eq!(done, 2);
/// ```
#[derive(Debug)]
pub struct Engine {
    now: SimTime,
    resources: Vec<Resource>,
    flows: Vec<FlowState>,
    /// Indices (into `flows`) of flows in the `Active` phase, kept sorted
    /// for deterministic iteration and tie-breaking.
    active: Vec<usize>,
    timers: BinaryHeap<Reverse<TimerEntry>>,
    timer_seq: u64,
    rates_dirty: bool,
    /// Bytes that have traversed each resource (utilization accounting).
    delivered: Vec<f64>,
    /// Optional structured-event sink (observability; disabled by default).
    recorder: RecorderSlot,
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

impl Engine {
    /// Creates an empty engine at time zero.
    pub fn new() -> Self {
        Engine {
            now: SimTime::ZERO,
            resources: Vec::new(),
            flows: Vec::new(),
            active: Vec::new(),
            timers: BinaryHeap::new(),
            timer_seq: 0,
            rates_dirty: false,
            delivered: Vec::new(),
            recorder: RecorderSlot::empty(),
        }
    }

    /// Installs a structured-event [`Recorder`]. Without one, emit sites
    /// cost a single branch and build no events.
    pub fn set_recorder(&mut self, recorder: Box<dyn Recorder>) {
        self.recorder.install(recorder);
    }

    /// Whether a recorder is installed.
    pub fn recording(&self) -> bool {
        self.recorder.enabled()
    }

    /// Emits an event to the installed recorder (no-op without one). Public
    /// so higher layers ([`crate::ClusterIo`], the runtime executor) can
    /// interleave their own events with the engine's in one stream.
    #[inline]
    pub fn emit(&mut self, event: TraceEvent) {
        self.recorder.emit(event);
    }

    /// Registers a resource and returns its id.
    pub fn add_resource(&mut self, resource: Resource) -> ResourceId {
        let id = ResourceId(u32::try_from(self.resources.len()).expect("too many resources"));
        self.resources.push(resource);
        self.delivered.push(0.0);
        id
    }

    /// Returns the resource behind an id.
    pub fn resource(&self, id: ResourceId) -> &Resource {
        &self.resources[id.index()]
    }

    /// Number of registered resources.
    pub fn resource_count(&self) -> usize {
        self.resources.len()
    }

    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of flows currently transferring (excludes latent ones).
    pub fn active_flow_count(&self) -> usize {
        self.active.len()
    }

    /// Total bytes that have traversed `resource` so far — per-resource
    /// utilization accounting (e.g. how much data each disk streamed or
    /// each rack uplink carried).
    pub fn bytes_through(&self, resource: ResourceId) -> f64 {
        self.delivered[resource.index()]
    }

    /// Mean utilization of `resource` since time zero: bytes carried
    /// divided by what the base capacity could have carried. Returns 0
    /// before any time has passed.
    pub fn utilization(&self, resource: ResourceId) -> f64 {
        let elapsed = self.now.as_secs();
        if elapsed <= 0.0 {
            return 0.0;
        }
        let possible = self.resources[resource.index()].base_capacity * elapsed;
        self.delivered[resource.index()] / possible
    }

    /// Submits a flow. It starts transferring after its startup latency.
    ///
    /// # Panics
    ///
    /// Panics if the spec references an unknown resource.
    pub fn start_flow(&mut self, spec: FlowSpec) -> FlowId {
        for r in &spec.path {
            assert!(
                r.index() < self.resources.len(),
                "flow references unknown resource {:?}",
                r
            );
        }
        let id = FlowId(self.flows.len() as u64);
        let latency = spec.latency;
        let state = FlowState::new(spec, self.now);
        self.flows.push(state);
        if latency > 0.0 {
            self.push_timer(self.now + latency, TimerKind::Activate(id));
        } else {
            self.activate(id);
        }
        id
    }

    /// Schedules a user timer `delay` seconds from now.
    pub fn set_timer(&mut self, delay: f64, token: u64) {
        assert!(
            delay.is_finite() && delay >= 0.0,
            "timer delay must be finite and non-negative"
        );
        self.push_timer(self.now + delay, TimerKind::User { token });
    }

    fn push_timer(&mut self, at: SimTime, kind: TimerKind) {
        let entry = TimerEntry {
            at,
            seq: self.timer_seq,
            kind,
        };
        self.timer_seq += 1;
        self.timers.push(Reverse(entry));
    }

    fn activate(&mut self, id: FlowId) {
        let idx = id.index();
        let flow = &mut self.flows[idx];
        debug_assert_eq!(flow.phase, FlowPhase::Latent);
        flow.phase = FlowPhase::Active;
        flow.active_at = Some(self.now);
        // Keep `active` sorted; flow indices are monotonically increasing so
        // a push preserves order, but activation can happen out of submission
        // order when latencies differ.
        let pos = self.active.partition_point(|&x| x < idx);
        self.active.insert(pos, idx);
        self.rates_dirty = true;
    }

    fn recompute_rates(&mut self) {
        // Aggregate capacities depend on per-resource concurrency.
        let mut counts = vec![0usize; self.resources.len()];
        for &fi in &self.active {
            for &r in &self.flows[fi].resources {
                counts[r] += 1;
            }
        }
        let capacities: Vec<f64> = self
            .resources
            .iter()
            .zip(&counts)
            .map(|(res, &n)| res.capacity(n))
            .collect();
        let paths: Vec<FlowPath> = self
            .active
            .iter()
            .map(|&fi| FlowPath {
                resources: self.flows[fi].resources.clone(),
                rate_cap: self.flows[fi].spec.rate_cap,
            })
            .collect();
        let rates = allocate_rates(&paths, &capacities);
        for (&fi, rate) in self.active.iter().zip(rates) {
            self.flows[fi].rate = rate;
        }
        self.rates_dirty = false;
        if self.recorder.enabled() {
            let (mut min_rate, mut max_rate) = (f64::INFINITY, 0.0f64);
            for &fi in &self.active {
                let r = self.flows[fi].rate;
                min_rate = min_rate.min(r);
                max_rate = max_rate.max(r);
            }
            if self.active.is_empty() {
                min_rate = 0.0;
            }
            self.recorder.emit(TraceEvent::RatesRecomputed {
                at: self.now.as_secs(),
                active_flows: self.active.len(),
                min_rate,
                max_rate,
            });
        }
    }

    /// Earliest completion among active flows: `(time, flow index)`.
    fn next_completion(&self) -> Option<(SimTime, usize)> {
        let mut best: Option<(SimTime, usize)> = None;
        for &fi in &self.active {
            let flow = &self.flows[fi];
            let eta = if flow.remaining <= BYTES_EPS || flow.rate.is_infinite() {
                self.now
            } else {
                debug_assert!(
                    flow.rate > 0.0,
                    "active flow {fi} has zero rate; resources saturated to zero?"
                );
                if flow.rate <= 0.0 {
                    continue; // defensive: skip stuck flows in release builds
                }
                self.now + flow.remaining / flow.rate
            };
            match best {
                Some((t, _)) if eta >= t => {}
                _ => best = Some((eta, fi)),
            }
        }
        best
    }

    /// Advances all active flows by `dt` seconds of transfer progress.
    fn advance(&mut self, to: SimTime) {
        let dt = to - self.now;
        debug_assert!(dt >= -1e-12, "time must not move backwards (dt={dt})");
        if dt > 0.0 {
            for &fi in &self.active {
                let flow = &mut self.flows[fi];
                if flow.rate.is_finite() {
                    let moved = (flow.rate * dt).min(flow.remaining);
                    flow.remaining -= moved;
                    for &r in &flow.resources {
                        self.delivered[r] += moved;
                    }
                } else {
                    flow.remaining = 0.0;
                }
            }
        }
        self.now = self.now.max(to);
    }

    /// Advances the clock to the next event and returns it, or `None` when
    /// no flows or timers remain.
    pub fn next_event(&mut self) -> Option<Event> {
        loop {
            if self.rates_dirty {
                self.recompute_rates();
            }
            let completion = self.next_completion();
            let timer_at = self.timers.peek().map(|Reverse(e)| e.at);

            let take_timer = match (completion, timer_at) {
                (None, None) => return None,
                (None, Some(_)) => true,
                (Some(_), None) => false,
                // Prefer timers on ties so latent flows activate before
                // concurrent completions are delivered.
                (Some((ct, _)), Some(tt)) => tt <= ct,
            };

            if take_timer {
                let Reverse(entry) = self.timers.pop().expect("peeked timer must exist");
                self.advance(entry.at);
                match entry.kind {
                    TimerKind::Activate(id) => {
                        self.activate(id);
                        continue;
                    }
                    TimerKind::User { token } => {
                        return Some(Event::TimerFired {
                            token,
                            at: self.now,
                        });
                    }
                }
            } else {
                let (at, fi) = completion.expect("completion must exist");
                self.advance(at);
                let flow = &mut self.flows[fi];
                flow.remaining = 0.0;
                flow.phase = FlowPhase::Completed;
                let completion = FlowCompletion {
                    flow: FlowId(fi as u64),
                    token: flow.spec.token,
                    bytes: flow.spec.bytes,
                    issued_at: flow.issued_at,
                    completed_at: self.now,
                };
                let pos = self
                    .active
                    .iter()
                    .position(|&a| a == fi)
                    .expect("completed flow must be active");
                self.active.remove(pos);
                self.rates_dirty = true;
                self.recorder.emit_with(|| TraceEvent::FlowFinished {
                    at: completion.completed_at.as_secs(),
                    token: completion.token,
                    bytes: completion.bytes,
                });
                return Some(Event::FlowCompleted(completion));
            }
        }
    }

    /// Runs the engine to exhaustion, collecting all flow completions.
    ///
    /// Useful when the full set of flows is known upfront (no reactive
    /// scheduling). Timer events are discarded.
    pub fn drain(&mut self) -> Vec<FlowCompletion> {
        let mut out = Vec::new();
        while let Some(ev) = self.next_event() {
            if let Event::FlowCompleted(c) = ev {
                out.push(c);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn constant(engine: &mut Engine, cap: f64) -> ResourceId {
        engine.add_resource(Resource::constant("r", cap))
    }

    #[test]
    fn empty_engine_yields_nothing() {
        let mut e = Engine::new();
        assert_eq!(e.next_event(), None);
    }

    #[test]
    fn single_flow_duration_is_size_over_capacity() {
        let mut e = Engine::new();
        let r = constant(&mut e, 100.0);
        e.start_flow(FlowSpec::new(250, vec![r], 9));
        match e.next_event() {
            Some(Event::FlowCompleted(c)) => {
                assert_eq!(c.token, 9);
                assert!((c.completed_at.as_secs() - 2.5).abs() < 1e-9);
            }
            other => panic!("unexpected event {other:?}"),
        }
        assert_eq!(e.next_event(), None);
    }

    #[test]
    fn latency_delays_transfer() {
        let mut e = Engine::new();
        let r = constant(&mut e, 100.0);
        e.start_flow(FlowSpec::new(100, vec![r], 0).with_latency(0.5));
        match e.next_event() {
            Some(Event::FlowCompleted(c)) => {
                assert!((c.completed_at.as_secs() - 1.5).abs() < 1e-9);
            }
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn two_flows_share_then_speed_up() {
        // Flow A: 100 bytes, flow B: 300 bytes, on a 100 B/s resource.
        // Shared phase: both at 50 B/s until A finishes at t=2 (A done).
        // B then has 200 bytes left at 100 B/s -> finishes at t=4.
        let mut e = Engine::new();
        let r = constant(&mut e, 100.0);
        e.start_flow(FlowSpec::new(100, vec![r], 1));
        e.start_flow(FlowSpec::new(300, vec![r], 2));
        let c1 = match e.next_event().unwrap() {
            Event::FlowCompleted(c) => c,
            ev => panic!("unexpected {ev:?}"),
        };
        assert_eq!(c1.token, 1);
        assert!((c1.completed_at.as_secs() - 2.0).abs() < 1e-9);
        let c2 = match e.next_event().unwrap() {
            Event::FlowCompleted(c) => c,
            ev => panic!("unexpected {ev:?}"),
        };
        assert_eq!(c2.token, 2);
        assert!(
            (c2.completed_at.as_secs() - 4.0).abs() < 1e-9,
            "got {}",
            c2.completed_at
        );
    }

    #[test]
    fn timer_fires_between_completions() {
        let mut e = Engine::new();
        let r = constant(&mut e, 100.0);
        e.start_flow(FlowSpec::new(1000, vec![r], 1)); // completes at 10s
        e.set_timer(3.0, 42);
        match e.next_event().unwrap() {
            Event::TimerFired { token, at } => {
                assert_eq!(token, 42);
                assert!((at.as_secs() - 3.0).abs() < 1e-9);
            }
            ev => panic!("unexpected {ev:?}"),
        }
        match e.next_event().unwrap() {
            Event::FlowCompleted(c) => {
                assert!((c.completed_at.as_secs() - 10.0).abs() < 1e-9);
            }
            ev => panic!("unexpected {ev:?}"),
        }
    }

    #[test]
    fn reactive_submission_mid_simulation() {
        // Submit a second flow when the first completes; durations chain.
        let mut e = Engine::new();
        let r = constant(&mut e, 10.0);
        e.start_flow(FlowSpec::new(100, vec![r], 1));
        let first = e.next_event().unwrap();
        assert!(matches!(first, Event::FlowCompleted(c) if c.token == 1));
        e.start_flow(FlowSpec::new(50, vec![r], 2));
        match e.next_event().unwrap() {
            Event::FlowCompleted(c) => {
                assert_eq!(c.token, 2);
                assert!((c.completed_at.as_secs() - 15.0).abs() < 1e-9);
            }
            ev => panic!("unexpected {ev:?}"),
        }
    }

    #[test]
    fn zero_byte_flow_completes_after_latency() {
        let mut e = Engine::new();
        let r = constant(&mut e, 10.0);
        e.start_flow(FlowSpec::new(0, vec![r], 5).with_latency(0.25));
        match e.next_event().unwrap() {
            Event::FlowCompleted(c) => {
                assert_eq!(c.bytes, 0);
                assert!((c.completed_at.as_secs() - 0.25).abs() < 1e-9);
            }
            ev => panic!("unexpected {ev:?}"),
        }
    }

    #[test]
    fn pathless_flow_is_pure_latency() {
        let mut e = Engine::new();
        e.start_flow(FlowSpec::new(1 << 30, vec![], 1).with_latency(1.0));
        match e.next_event().unwrap() {
            Event::FlowCompleted(c) => {
                assert!((c.completed_at.as_secs() - 1.0).abs() < 1e-9);
            }
            ev => panic!("unexpected {ev:?}"),
        }
    }

    #[test]
    fn seek_degradation_slows_contended_disk() {
        // One lone transfer vs. the same transfer alongside five others on a
        // degrading disk: the lone one must be strictly faster than 6x-share.
        let params = |e: &mut Engine| e.add_resource(Resource::disk("sda", 100.0, 0.25, 0.2));
        let mut lone = Engine::new();
        let d = params(&mut lone);
        lone.start_flow(FlowSpec::new(1000, vec![d], 0));
        let lone_done = lone.drain()[0].completed_at.as_secs();
        assert!((lone_done - 10.0).abs() < 1e-9);

        let mut busy = Engine::new();
        let d = params(&mut busy);
        for t in 0..6 {
            busy.start_flow(FlowSpec::new(1000, vec![d], t));
        }
        let completions = busy.drain();
        assert_eq!(completions.len(), 6);
        let last = completions.last().unwrap().completed_at.as_secs();
        // Aggregate at n=6 is 100*(0.2+0.8/2.25)=55.55 B/s for 6000 bytes
        // -> 108 s, far worse than the 60 s a non-degrading disk would take.
        assert!(last > 100.0, "last={last}");
    }

    #[test]
    fn drain_returns_all_completions_in_time_order() {
        let mut e = Engine::new();
        let r = constant(&mut e, 100.0);
        for i in 0..10 {
            e.start_flow(FlowSpec::new(100 * (i + 1), vec![r], i));
        }
        let completions = e.drain();
        assert_eq!(completions.len(), 10);
        for w in completions.windows(2) {
            assert!(w[0].completed_at <= w[1].completed_at);
        }
    }

    #[test]
    fn utilization_accounting_conserves_bytes() {
        let mut e = Engine::new();
        let a = constant(&mut e, 100.0);
        let b = constant(&mut e, 50.0);
        e.start_flow(FlowSpec::new(500, vec![a, b], 1));
        e.start_flow(FlowSpec::new(300, vec![a], 2));
        e.drain();
        // Resource b carried only the first flow; a carried both.
        assert!((e.bytes_through(b) - 500.0).abs() < 1e-6);
        assert!((e.bytes_through(a) - 800.0).abs() < 1e-6);
        // Utilization is bounded by 1 and positive once data moved.
        assert!(e.utilization(a) > 0.0 && e.utilization(a) <= 1.0 + 1e-9);
    }

    #[test]
    fn deterministic_replay() {
        let run = || {
            let mut e = Engine::new();
            let a = e.add_resource(Resource::disk("a", 72e6, 0.25, 0.2));
            let b = e.add_resource(Resource::constant("b", 117e6));
            for i in 0..20 {
                let path = if i % 2 == 0 { vec![a] } else { vec![a, b] };
                e.start_flow(FlowSpec::new(64 << 20, path, i).with_latency(0.01 * i as f64));
            }
            e.drain()
                .iter()
                .map(|c| (c.token, c.completed_at.as_secs()))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
