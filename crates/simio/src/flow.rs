//! Flow descriptions and lifecycle state.

use crate::resource::ResourceId;
use crate::time::SimTime;

/// Identifies a flow submitted to an [`crate::Engine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowId(pub(crate) u64);

impl FlowId {
    /// Returns the raw index of this flow.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Description of a data transfer submitted to the engine.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowSpec {
    /// Payload size in bytes. Zero-byte flows complete after `latency`.
    pub bytes: u64,
    /// Resources traversed, in path order (e.g. source disk, source NIC-out,
    /// destination NIC-in). Duplicates are merged.
    pub path: Vec<ResourceId>,
    /// Fixed startup latency (seconds) before the transfer consumes any
    /// bandwidth: request dispatch, positioning, protocol setup.
    pub latency: f64,
    /// Per-flow rate ceiling in bytes/second (`f64::INFINITY` = none) —
    /// end-to-end protocol limits that bind before any shared resource.
    pub rate_cap: f64,
    /// Opaque caller tag, echoed back in the completion event. The runtime
    /// uses it to map completions to (process, task) pairs.
    pub token: u64,
}

impl FlowSpec {
    /// Creates a flow spec with zero latency and no rate cap.
    pub fn new(bytes: u64, path: Vec<ResourceId>, token: u64) -> Self {
        FlowSpec {
            bytes,
            path,
            latency: 0.0,
            rate_cap: f64::INFINITY,
            token,
        }
    }

    /// Sets the startup latency.
    pub fn with_latency(mut self, latency: f64) -> Self {
        assert!(
            latency.is_finite() && latency >= 0.0,
            "latency must be finite and non-negative"
        );
        self.latency = latency;
        self
    }

    /// Sets the per-flow rate ceiling (bytes/second).
    pub fn with_rate_cap(mut self, cap: f64) -> Self {
        assert!(cap > 0.0, "rate cap must be positive");
        self.rate_cap = cap;
        self
    }
}

/// Lifecycle phase of a flow inside the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FlowPhase {
    /// Waiting out the startup latency; consumes no bandwidth.
    Latent,
    /// Actively transferring.
    Active,
    /// Done; kept only until the completion event is delivered.
    Completed,
}

/// Internal per-flow state.
#[derive(Debug, Clone)]
pub(crate) struct FlowState {
    pub spec: FlowSpec,
    /// Deduplicated resource indices (engine-internal form).
    pub resources: Vec<usize>,
    pub phase: FlowPhase,
    /// Bytes still to transfer *as of* `updated_at` (fluid, hence f64).
    /// Progress between rate changes is virtual: it is settled into this
    /// field only when the rate changes or the flow completes.
    pub remaining: f64,
    /// Current allocated rate in bytes/second.
    pub rate: f64,
    /// Simulated time at which `remaining` was last settled.
    pub updated_at: SimTime,
    /// Generation stamp, bumped on every rate change (and at completion).
    /// Completion-heap entries carry the stamp they were pushed with, so
    /// stale predictions are recognized and discarded lazily.
    pub gen: u32,
    /// When the flow was submitted.
    pub issued_at: SimTime,
    /// When the transfer became active (after latency).
    pub active_at: Option<SimTime>,
}

impl FlowState {
    pub fn new(spec: FlowSpec, issued_at: SimTime) -> Self {
        let mut resources: Vec<usize> = spec.path.iter().map(|r| r.index()).collect();
        resources.sort_unstable();
        resources.dedup();
        let remaining = spec.bytes as f64;
        FlowState {
            spec,
            resources,
            phase: FlowPhase::Latent,
            remaining,
            rate: 0.0,
            updated_at: issued_at,
            gen: 0,
            issued_at,
            active_at: None,
        }
    }
}

/// A finished transfer, as reported by [`crate::Engine::next_event`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowCompletion {
    /// The flow that finished.
    pub flow: FlowId,
    /// Caller tag from the [`FlowSpec`].
    pub token: u64,
    /// Payload size in bytes.
    pub bytes: u64,
    /// Submission time.
    pub issued_at: SimTime,
    /// Completion time.
    pub completed_at: SimTime,
}

impl FlowCompletion {
    /// End-to-end duration (latency + transfer), in seconds.
    #[inline]
    pub fn duration(&self) -> f64 {
        self.completed_at - self.issued_at
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_builder_sets_latency() {
        let s = FlowSpec::new(64, vec![], 7).with_latency(0.5);
        assert_eq!(s.latency, 0.5);
        assert_eq!(s.token, 7);
    }

    #[test]
    fn state_dedups_path() {
        let spec = FlowSpec::new(10, vec![ResourceId(2), ResourceId(1), ResourceId(2)], 0);
        let st = FlowState::new(spec, SimTime::ZERO);
        assert_eq!(st.resources, vec![1, 2]);
    }

    #[test]
    fn completion_duration() {
        let c = FlowCompletion {
            flow: FlowId(0),
            token: 0,
            bytes: 1,
            issued_at: SimTime::from_secs(1.0),
            completed_at: SimTime::from_secs(3.5),
        };
        assert!((c.duration() - 2.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "latency must be finite")]
    fn rejects_bad_latency() {
        let _ = FlowSpec::new(1, vec![], 0).with_latency(-0.1);
    }
}
