//! Structured event recording for the simulator.
//!
//! Every layer of the stack can narrate what it is doing through a
//! [`Recorder`]: the engine reports fair-share rate recomputations and flow
//! completions, [`crate::ClusterIo`] reports read/write submissions with
//! their endpoints, and the `opass-runtime` executor adds task dispatch,
//! per-read locality context, barrier crossings, and steal decisions. The
//! default is [`NoopRecorder`]: recording costs one branch per emit site,
//! and a run without a recorder is bit-identical to one that never heard of
//! this module — events observe the simulation, they never perturb it.
//!
//! Events are plain data (`f64` timestamps, `usize` node/process indices)
//! so downstream crates can aggregate or serialize them without pulling in
//! simulator types.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

/// One structured simulation event. Timestamps (`at`) are simulated
/// seconds; node and process identifiers are raw indices.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A chunk read was submitted to the cluster.
    ReadIssued {
        /// Simulated time of submission.
        at: f64,
        /// Caller token (the executor uses the process rank).
        token: u64,
        /// Node the reader runs on.
        reader: usize,
        /// Node serving the data.
        source: usize,
        /// Payload size in bytes.
        bytes: u64,
        /// Whether the read is served from the reader's own disk.
        local: bool,
    },
    /// A replicated write was submitted to the cluster.
    WriteIssued {
        /// Simulated time of submission.
        at: f64,
        /// Caller token.
        token: u64,
        /// Node the writer runs on.
        writer: usize,
        /// Number of replica targets.
        targets: usize,
        /// Payload size in bytes.
        bytes: u64,
    },
    /// A flow finished transferring all its bytes (engine level).
    FlowFinished {
        /// Completion time.
        at: f64,
        /// Caller token.
        token: u64,
        /// Payload size in bytes.
        bytes: u64,
    },
    /// Max-min fair rates were recomputed because a flow started or
    /// finished — the paper's contention dynamics in the raw.
    RatesRecomputed {
        /// Time of the recompute.
        at: f64,
        /// Flows actively transferring after the recompute.
        active_flows: usize,
        /// Slowest allocated rate (0 when no flows are active).
        min_rate: f64,
        /// Fastest allocated rate (0 when no flows are active).
        max_rate: f64,
    },
    /// The executor handed a task to a process.
    TaskStarted {
        /// Dispatch time.
        at: f64,
        /// Process rank.
        proc: usize,
        /// Task index within the workload.
        task: usize,
    },
    /// A chunk read completed, with full executor context.
    ReadFinished {
        /// Completion time.
        at: f64,
        /// Process rank.
        proc: usize,
        /// Task index within the workload.
        task: usize,
        /// Chunk identifier (raw).
        chunk: u64,
        /// Node that served the data.
        source: usize,
        /// Node the reader ran on.
        reader: usize,
        /// Payload size in bytes.
        bytes: u64,
        /// Whether the read was served locally.
        local: bool,
        /// Degraded-mode read: remote *and* no replica existed on the
        /// reader's node, so no policy could have served it locally.
        degraded: bool,
    },
    /// A compute/render phase began.
    ComputeStarted {
        /// Start time.
        at: f64,
        /// Process rank.
        proc: usize,
        /// Modelled compute duration in seconds.
        seconds: f64,
    },
    /// A process ran out of work.
    ProcFinished {
        /// Time the process went permanently idle.
        at: f64,
        /// Process rank.
        proc: usize,
    },
    /// A process reached the barrier ending a bulk-synchronous round.
    BarrierEntered {
        /// Time the process arrived at the barrier.
        at: f64,
        /// Round index.
        round: usize,
        /// Process rank.
        proc: usize,
    },
    /// All processes crossed the barrier; the next round may start.
    BarrierReleased {
        /// Release time (the slowest process's arrival).
        at: f64,
        /// Round index.
        round: usize,
    },
    /// The dynamic scheduler stole a task from another worker's list.
    TaskStolen {
        /// Time of the steal decision.
        at: f64,
        /// Worker that went idle and stole.
        thief: usize,
        /// Worker whose list the task came from.
        victim: usize,
        /// Task index within the workload.
        task: usize,
    },
}

impl TraceEvent {
    /// The event's timestamp in simulated seconds.
    pub fn at(&self) -> f64 {
        match *self {
            TraceEvent::ReadIssued { at, .. }
            | TraceEvent::WriteIssued { at, .. }
            | TraceEvent::FlowFinished { at, .. }
            | TraceEvent::RatesRecomputed { at, .. }
            | TraceEvent::TaskStarted { at, .. }
            | TraceEvent::ReadFinished { at, .. }
            | TraceEvent::ComputeStarted { at, .. }
            | TraceEvent::ProcFinished { at, .. }
            | TraceEvent::BarrierEntered { at, .. }
            | TraceEvent::BarrierReleased { at, .. }
            | TraceEvent::TaskStolen { at, .. } => at,
        }
    }

    /// Shifts the event's timestamp by `offset` seconds — used when runs
    /// are chained end-to-end (bulk-synchronous rounds, render loops) and
    /// their event streams must live on one clock.
    pub fn shift_at(&mut self, offset: f64) {
        match self {
            TraceEvent::ReadIssued { at, .. }
            | TraceEvent::WriteIssued { at, .. }
            | TraceEvent::FlowFinished { at, .. }
            | TraceEvent::RatesRecomputed { at, .. }
            | TraceEvent::TaskStarted { at, .. }
            | TraceEvent::ReadFinished { at, .. }
            | TraceEvent::ComputeStarted { at, .. }
            | TraceEvent::ProcFinished { at, .. }
            | TraceEvent::BarrierEntered { at, .. }
            | TraceEvent::BarrierReleased { at, .. }
            | TraceEvent::TaskStolen { at, .. } => *at += offset,
        }
    }

    /// A stable snake_case tag naming the event kind (used by exporters).
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::ReadIssued { .. } => "read_issued",
            TraceEvent::WriteIssued { .. } => "write_issued",
            TraceEvent::FlowFinished { .. } => "flow_finished",
            TraceEvent::RatesRecomputed { .. } => "rates_recomputed",
            TraceEvent::TaskStarted { .. } => "task_started",
            TraceEvent::ReadFinished { .. } => "read_finished",
            TraceEvent::ComputeStarted { .. } => "compute_started",
            TraceEvent::ProcFinished { .. } => "proc_finished",
            TraceEvent::BarrierEntered { .. } => "barrier_entered",
            TraceEvent::BarrierReleased { .. } => "barrier_released",
            TraceEvent::TaskStolen { .. } => "task_stolen",
        }
    }
}

/// A sink for [`TraceEvent`]s.
///
/// Implementations must be passive observers: recording an event must not
/// change simulation behaviour. The engine only constructs events when a
/// recorder is installed, so the disabled path stays allocation-free.
pub trait Recorder {
    /// Consumes one event.
    fn record(&mut self, event: TraceEvent);
}

/// Discards every event — the default, zero-cost sink.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn record(&mut self, _event: TraceEvent) {}
}

/// Collects events in memory behind a shared, cloneable handle.
///
/// Clone the recorder, install one clone on the engine, and keep the other
/// to read the log back after the run (the simulator is single-threaded, so
/// an `Rc<RefCell<_>>` suffices).
///
/// # Example
///
/// ```
/// use opass_simio::{ClusterIo, IoParams, MemoryRecorder, MB_U64};
///
/// let log = MemoryRecorder::new();
/// let mut cluster = ClusterIo::new(2, IoParams::marmot());
/// cluster.set_recorder(Box::new(log.clone()));
/// cluster.start_read(1, 0, 64 * MB_U64, 7);
/// while cluster.next_event().is_some() {}
/// assert!(!log.snapshot().is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct MemoryRecorder {
    log: Rc<RefCell<Vec<TraceEvent>>>,
}

impl MemoryRecorder {
    /// Creates an empty shared log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.log.borrow().len()
    }

    /// Whether no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.log.borrow().is_empty()
    }

    /// Copies the current log.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.log.borrow().clone()
    }

    /// Removes and returns the current log, leaving it empty.
    pub fn take_events(&self) -> Vec<TraceEvent> {
        self.log.take()
    }
}

impl Recorder for MemoryRecorder {
    fn record(&mut self, event: TraceEvent) {
        self.log.borrow_mut().push(event);
    }
}

/// The engine's recorder slot: `Debug` even though recorders aren't, and
/// `None` by default so recording stays strictly opt-in.
#[derive(Default)]
pub struct RecorderSlot(Option<Box<dyn Recorder>>);

impl RecorderSlot {
    /// An empty (disabled) slot.
    pub fn empty() -> Self {
        RecorderSlot(None)
    }

    /// Installs a recorder, replacing any previous one.
    pub fn install(&mut self, recorder: Box<dyn Recorder>) {
        self.0 = Some(recorder);
    }

    /// Whether a recorder is installed.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Builds the event lazily and records it if a recorder is installed.
    #[inline]
    pub fn emit_with(&mut self, make: impl FnOnce() -> TraceEvent) {
        if let Some(r) = self.0.as_mut() {
            r.record(make());
        }
    }

    /// Records an already-built event if a recorder is installed.
    #[inline]
    pub fn emit(&mut self, event: TraceEvent) {
        if let Some(r) = self.0.as_mut() {
            r.record(event);
        }
    }
}

impl fmt::Debug for RecorderSlot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("RecorderSlot")
            .field(&if self.0.is_some() {
                "installed"
            } else {
                "none"
            })
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_recorder_shares_its_log() {
        let handle = MemoryRecorder::new();
        let mut writer = handle.clone();
        writer.record(TraceEvent::ProcFinished { at: 1.0, proc: 3 });
        assert_eq!(handle.len(), 1);
        assert_eq!(
            handle.snapshot(),
            vec![TraceEvent::ProcFinished { at: 1.0, proc: 3 }]
        );
        let taken = handle.take_events();
        assert_eq!(taken.len(), 1);
        assert!(handle.is_empty());
    }

    #[test]
    fn slot_skips_event_construction_when_empty() {
        let mut slot = RecorderSlot::empty();
        assert!(!slot.enabled());
        let mut built = false;
        slot.emit_with(|| {
            built = true;
            TraceEvent::ProcFinished { at: 0.0, proc: 0 }
        });
        assert!(!built, "no recorder, so the closure must not run");

        let log = MemoryRecorder::new();
        slot.install(Box::new(log.clone()));
        assert!(slot.enabled());
        slot.emit_with(|| TraceEvent::BarrierReleased { at: 2.0, round: 1 });
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn event_accessors_are_consistent() {
        let ev = TraceEvent::ReadIssued {
            at: 4.5,
            token: 9,
            reader: 1,
            source: 2,
            bytes: 64,
            local: false,
        };
        assert_eq!(ev.at(), 4.5);
        assert_eq!(ev.kind(), "read_issued");
        assert_eq!(
            TraceEvent::RatesRecomputed {
                at: 0.0,
                active_flows: 0,
                min_rate: 0.0,
                max_rate: 0.0
            }
            .kind(),
            "rates_recomputed"
        );
    }
}
