//! Shared I/O resources: disks and network interfaces.
//!
//! A [`Resource`] is anything with a finite aggregate bandwidth that
//! concurrent flows must share: a disk spindle, the transmit side of a NIC,
//! the receive side of a NIC. Aggregate capacity may *degrade* as the number
//! of concurrent streams grows — the dominant effect on rotating media, where
//! interleaved streams force the head to seek between file extents. This
//! degradation is what turns the imbalanced access patterns of the paper's
//! Section III into the long I/O-time tails of its Figure 7.

/// Identifies a resource registered with an [`crate::Engine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ResourceId(pub(crate) u32);

impl ResourceId {
    /// Returns the raw index of this resource.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// How a resource's aggregate capacity responds to concurrent streams.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Degradation {
    /// Aggregate capacity is constant regardless of concurrency.
    ///
    /// Appropriate for switched network links and idealized storage.
    None,
    /// Seek-style degradation for rotating disks.
    ///
    /// With `n` concurrent streams the aggregate capacity is
    /// `base * (floor + (1 - floor) / (1 + alpha * (n - 1)))`:
    /// one stream gets the full streaming bandwidth, and additional
    /// streams interleave seeks, asymptotically approaching
    /// `floor * base`.
    Seek {
        /// Per-extra-stream seek penalty factor (typical: 0.2–0.4).
        alpha: f64,
        /// Fraction of base bandwidth retained under unbounded
        /// concurrency (typical: 0.15–0.3).
        floor: f64,
    },
}

impl Degradation {
    /// Multiplier applied to the base capacity for `n` concurrent streams.
    ///
    /// Returns 1.0 for `n <= 1` under every model.
    #[inline]
    pub fn factor(&self, n: usize) -> f64 {
        if n <= 1 {
            return 1.0;
        }
        match *self {
            Degradation::None => 1.0,
            Degradation::Seek { alpha, floor } => {
                debug_assert!((0.0..=1.0).contains(&floor), "floor must be in [0,1]");
                debug_assert!(alpha >= 0.0, "alpha must be non-negative");
                floor + (1.0 - floor) / (1.0 + alpha * (n as f64 - 1.0))
            }
        }
    }
}

/// A bandwidth-shared resource.
#[derive(Debug, Clone, PartialEq)]
pub struct Resource {
    /// Human-readable label, used in traces and error messages.
    pub name: String,
    /// Aggregate capacity with a single stream, in bytes/second.
    pub base_capacity: f64,
    /// Concurrency-degradation model.
    pub degradation: Degradation,
}

impl Resource {
    /// Creates a constant-capacity resource (e.g. a NIC direction).
    pub fn constant(name: impl Into<String>, capacity_bps: f64) -> Self {
        assert!(
            capacity_bps.is_finite() && capacity_bps > 0.0,
            "resource capacity must be positive and finite"
        );
        Resource {
            name: name.into(),
            base_capacity: capacity_bps,
            degradation: Degradation::None,
        }
    }

    /// Creates a rotating-disk resource with seek degradation.
    pub fn disk(name: impl Into<String>, capacity_bps: f64, alpha: f64, floor: f64) -> Self {
        assert!(
            capacity_bps.is_finite() && capacity_bps > 0.0,
            "resource capacity must be positive and finite"
        );
        assert!(alpha >= 0.0, "seek alpha must be non-negative");
        assert!((0.0..=1.0).contains(&floor), "seek floor must be in [0,1]");
        Resource {
            name: name.into(),
            base_capacity: capacity_bps,
            degradation: Degradation::Seek { alpha, floor },
        }
    }

    /// Aggregate capacity (bytes/second) available to `n` concurrent streams.
    #[inline]
    pub fn capacity(&self, n: usize) -> f64 {
        self.base_capacity * self.degradation.factor(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_resource_ignores_concurrency() {
        let r = Resource::constant("nic", 117e6);
        assert_eq!(r.capacity(1), 117e6);
        assert_eq!(r.capacity(64), 117e6);
    }

    #[test]
    fn single_stream_gets_full_bandwidth() {
        let r = Resource::disk("sda", 72e6, 0.25, 0.2);
        assert!((r.capacity(1) - 72e6).abs() < 1e-9);
        assert_eq!(r.capacity(0), 72e6);
    }

    #[test]
    fn seek_degradation_is_monotone_decreasing() {
        let r = Resource::disk("sda", 72e6, 0.25, 0.2);
        let mut prev = r.capacity(1);
        for n in 2..64 {
            let cap = r.capacity(n);
            assert!(cap < prev, "capacity must strictly decrease, n={n}");
            assert!(cap > 72e6 * 0.2, "capacity must stay above the floor");
            prev = cap;
        }
    }

    #[test]
    fn seek_degradation_approaches_floor() {
        let r = Resource::disk("sda", 100.0, 0.5, 0.25);
        let cap = r.capacity(100_000);
        assert!((cap - 25.0).abs() < 0.1, "cap={cap}");
    }

    #[test]
    fn degradation_factor_matches_formula() {
        let d = Degradation::Seek {
            alpha: 0.25,
            floor: 0.2,
        };
        // n = 6 -> 0.2 + 0.8 / (1 + 1.25) = 0.5555...
        let f = d.factor(6);
        assert!((f - (0.2 + 0.8 / 2.25)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn rejects_zero_capacity() {
        let _ = Resource::constant("bad", 0.0);
    }
}
