//! Cluster-level I/O model: one disk and one full-duplex NIC per node.
//!
//! [`ClusterIo`] wraps an [`Engine`] with the resource topology of the
//! paper's testbed — PRObE's *Marmot*, where every node has a single SATA
//! disk and a Gigabit Ethernet port, and all nodes hang off one switch.
//! A **local** read touches only the source disk. A **remote** read streams
//! through the source disk, the source NIC transmit side, and the reader
//! NIC receive side (the switch is non-blocking and is not modelled as a
//! shared resource).

use crate::engine::{Engine, Event};
use crate::flow::{FlowId, FlowSpec};
use crate::record::{Recorder, TraceEvent};
use crate::resource::{Resource, ResourceId};
use crate::time::SimTime;
use crate::topology::Topology;

/// Calibration parameters for the per-node I/O model.
///
/// Defaults are calibrated so that the simulator reproduces the absolute
/// numbers the paper reports for Marmot: a lone local 64 MB chunk read takes
/// ≈0.9 s (Fig. 7b), and contended remote reads span roughly 2–12 s
/// (Section V-C2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IoParams {
    /// Streaming bandwidth of a node's disk, bytes/second.
    pub disk_bandwidth: f64,
    /// Seek-degradation slope of the disk (see [`Resource::disk`]).
    pub disk_seek_alpha: f64,
    /// Seek-degradation floor of the disk.
    pub disk_seek_floor: f64,
    /// Effective bandwidth of each NIC direction, bytes/second.
    pub nic_bandwidth: f64,
    /// Per-stream ceiling of a single remote read, bytes/second. The
    /// paper observes that reading one 64 MB chunk remotely takes ~2 s
    /// even uncontended (Section V-C2): the HDFS/TCP stream itself tops
    /// out near 32 MB/s on that hardware. `f64::INFINITY` disables it.
    pub remote_stream_bandwidth: f64,
    /// Fixed request latency for a local read, seconds.
    pub local_latency: f64,
    /// Fixed request latency for a remote read (adds protocol round trips).
    pub remote_latency: f64,
}

impl Default for IoParams {
    fn default() -> Self {
        IoParams::marmot()
    }
}

impl IoParams {
    /// Parameters modelling a Marmot node: ~72 MB/s SATA disk with seek
    /// degradation, Gigabit Ethernet at ~117 MB/s effective.
    pub fn marmot() -> Self {
        IoParams {
            disk_bandwidth: 72.0 * MB,
            disk_seek_alpha: 0.35,
            disk_seek_floor: 0.15,
            nic_bandwidth: 117.0 * MB,
            remote_stream_bandwidth: 34.0 * MB,
            local_latency: 0.01,
            remote_latency: 0.06,
        }
    }

    /// An idealized cluster without seek degradation; used by the ablation
    /// study to show the contention tail is driven by the seek model.
    pub fn no_seek_degradation(mut self) -> Self {
        self.disk_seek_alpha = 0.0;
        self.disk_seek_floor = 1.0;
        self
    }

    /// Validates the parameters.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.disk_bandwidth.is_finite() && self.disk_bandwidth > 0.0) {
            return Err(format!(
                "disk_bandwidth must be positive: {}",
                self.disk_bandwidth
            ));
        }
        if !(self.nic_bandwidth.is_finite() && self.nic_bandwidth > 0.0) {
            return Err(format!(
                "nic_bandwidth must be positive: {}",
                self.nic_bandwidth
            ));
        }
        if self.remote_stream_bandwidth <= 0.0 {
            return Err(format!(
                "remote_stream_bandwidth must be positive: {}",
                self.remote_stream_bandwidth
            ));
        }
        if !(0.0..=1.0).contains(&self.disk_seek_floor) {
            return Err(format!(
                "disk_seek_floor must be in [0,1]: {}",
                self.disk_seek_floor
            ));
        }
        if self.disk_seek_alpha < 0.0 {
            return Err(format!(
                "disk_seek_alpha must be >= 0: {}",
                self.disk_seek_alpha
            ));
        }
        if self.local_latency < 0.0 || self.remote_latency < 0.0 {
            return Err("latencies must be non-negative".into());
        }
        Ok(())
    }
}

/// One megabyte, in bytes, as an `f64` (for bandwidth expressions).
pub const MB: f64 = 1024.0 * 1024.0;

/// One megabyte, in bytes, as a `u64` (for payload sizes).
pub const MB_U64: u64 = 1024 * 1024;

/// Per-node resource handles.
#[derive(Debug, Clone, Copy)]
struct NodeResources {
    disk: ResourceId,
    nic_out: ResourceId,
    nic_in: ResourceId,
}

/// Per-rack uplink handles (racked topologies only).
#[derive(Debug, Clone, Copy)]
struct RackResources {
    uplink_out: ResourceId,
    uplink_in: ResourceId,
}

/// A simulated cluster: engine plus per-node disk/NIC resources and,
/// under a racked topology, per-rack uplinks.
#[derive(Debug)]
pub struct ClusterIo {
    engine: Engine,
    nodes: Vec<NodeResources>,
    racks: Vec<RackResources>,
    topology: Topology,
    params: IoParams,
}

impl ClusterIo {
    /// Builds a cluster of `n_nodes` identical nodes on one flat switch
    /// (the paper's Marmot setup).
    ///
    /// # Panics
    ///
    /// Panics if `n_nodes` is zero or `params` fail validation.
    pub fn new(n_nodes: usize, params: IoParams) -> Self {
        Self::with_topology(n_nodes, params, Topology::Flat)
    }

    /// Builds a cluster under an explicit network [`Topology`].
    ///
    /// # Panics
    ///
    /// Panics if `n_nodes` is zero or parameters fail validation.
    pub fn with_topology(n_nodes: usize, params: IoParams, topology: Topology) -> Self {
        Self::with_disk_factors(params, topology, &vec![1.0; n_nodes])
    }

    /// Builds a *heterogeneous* cluster: node `i`'s disk runs at
    /// `disk_factors[i] × params.disk_bandwidth` (NICs stay uniform). One
    /// entry per node; factors must be positive and finite.
    ///
    /// # Panics
    ///
    /// Panics if `disk_factors` is empty, contains a non-positive factor,
    /// or parameters fail validation.
    pub fn with_disk_factors(params: IoParams, topology: Topology, disk_factors: &[f64]) -> Self {
        let n_nodes = disk_factors.len();
        assert!(n_nodes > 0, "cluster must have at least one node");
        assert!(
            disk_factors.iter().all(|f| f.is_finite() && *f > 0.0),
            "disk factors must be positive and finite"
        );
        params.validate().expect("invalid IoParams");
        topology.validate().expect("invalid Topology");
        let mut engine = Engine::new();
        let nodes = (0..n_nodes)
            .map(|i| NodeResources {
                disk: engine.add_resource(Resource::disk(
                    format!("node{i}.disk"),
                    params.disk_bandwidth * disk_factors[i],
                    params.disk_seek_alpha,
                    params.disk_seek_floor,
                )),
                nic_out: engine.add_resource(Resource::constant(
                    format!("node{i}.nic_out"),
                    params.nic_bandwidth,
                )),
                nic_in: engine.add_resource(Resource::constant(
                    format!("node{i}.nic_in"),
                    params.nic_bandwidth,
                )),
            })
            .collect();
        let racks = match topology {
            Topology::Flat => Vec::new(),
            Topology::Racked {
                uplink_bandwidth, ..
            } => (0..topology.rack_count(n_nodes).expect("racked"))
                .map(|r| RackResources {
                    uplink_out: engine.add_resource(Resource::constant(
                        format!("rack{r}.uplink_out"),
                        uplink_bandwidth,
                    )),
                    uplink_in: engine.add_resource(Resource::constant(
                        format!("rack{r}.uplink_in"),
                        uplink_bandwidth,
                    )),
                })
                .collect(),
        };
        ClusterIo {
            engine,
            nodes,
            racks,
            topology,
            params,
        }
    }

    /// The network topology in use.
    pub fn topology(&self) -> Topology {
        self.topology
    }

    /// Appends the rack-uplink hops a `from -> to` transfer crosses.
    fn push_uplinks(&self, from: usize, to: usize, path: &mut Vec<ResourceId>) {
        if let (Some(ra), Some(rb)) = (self.topology.rack_of(from), self.topology.rack_of(to)) {
            if ra != rb {
                path.push(self.racks[ra].uplink_out);
                path.push(self.racks[rb].uplink_in);
            }
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The calibration parameters in use.
    pub fn params(&self) -> &IoParams {
        &self.params
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.engine.now()
    }

    /// Issues a chunk read: `reader` (node index) pulls `bytes` from
    /// `source` (node index). Local when `reader == source`.
    ///
    /// # Panics
    ///
    /// Panics if either node index is out of range.
    pub fn start_read(&mut self, reader: usize, source: usize, bytes: u64, token: u64) -> FlowId {
        assert!(
            reader < self.nodes.len(),
            "reader node {reader} out of range"
        );
        assert!(
            source < self.nodes.len(),
            "source node {source} out of range"
        );
        if self.engine.recording() {
            self.engine.emit(TraceEvent::ReadIssued {
                at: self.engine.now().as_secs(),
                token,
                reader,
                source,
                bytes,
                local: reader == source,
            });
        }
        let spec = if reader == source {
            FlowSpec::new(bytes, vec![self.nodes[source].disk], token)
                .with_latency(self.params.local_latency)
        } else {
            let mut path = vec![
                self.nodes[source].disk,
                self.nodes[source].nic_out,
                self.nodes[reader].nic_in,
            ];
            self.push_uplinks(source, reader, &mut path);
            let spec = FlowSpec::new(bytes, path, token).with_latency(self.params.remote_latency);
            if self.params.remote_stream_bandwidth.is_finite() {
                spec.with_rate_cap(self.params.remote_stream_bandwidth)
            } else {
                spec
            }
        };
        self.engine.start_flow(spec)
    }

    /// Issues a pipelined replicated write: `writer` streams `bytes` to
    /// every node in `targets` (HDFS write pipeline). The fluid model
    /// routes one flow through the writer's NIC transmit side and every
    /// replica's NIC receive side and disk (a target equal to `writer`
    /// only contributes its disk), plus any rack uplinks crossed; the
    /// pipeline runs at the minimum hop rate.
    ///
    /// # Panics
    ///
    /// Panics if any node index is out of range or `targets` is empty.
    pub fn start_write(
        &mut self,
        writer: usize,
        targets: &[usize],
        bytes: u64,
        token: u64,
    ) -> FlowId {
        assert!(
            writer < self.nodes.len(),
            "writer node {writer} out of range"
        );
        assert!(!targets.is_empty(), "write needs at least one target");
        if self.engine.recording() {
            self.engine.emit(TraceEvent::WriteIssued {
                at: self.engine.now().as_secs(),
                token,
                writer,
                targets: targets.len(),
                bytes,
            });
        }
        let mut path = Vec::with_capacity(2 + 3 * targets.len());
        let mut any_remote = false;
        for &t in targets {
            assert!(t < self.nodes.len(), "target node {t} out of range");
            path.push(self.nodes[t].disk);
            if t != writer {
                any_remote = true;
                path.push(self.nodes[t].nic_in);
                self.push_uplinks(writer, t, &mut path);
            }
        }
        if any_remote {
            path.push(self.nodes[writer].nic_out);
        }
        let spec = FlowSpec::new(bytes, path, token).with_latency(self.params.remote_latency);
        self.engine.start_flow(spec)
    }

    /// Schedules a compute/render delay as a user timer.
    pub fn start_compute(&mut self, seconds: f64, token: u64) {
        self.engine.set_timer(seconds, token);
    }

    /// Advances to the next event. See [`Engine::next_event`].
    pub fn next_event(&mut self) -> Option<Event> {
        self.engine.next_event()
    }

    /// Bytes streamed by a node's disk so far (both local and remote
    /// serving) — per-device utilization accounting.
    pub fn disk_bytes(&self, node: usize) -> f64 {
        self.engine.bytes_through(self.nodes[node].disk)
    }

    /// Bytes carried by a rack's uplink (both directions summed); 0 under
    /// a flat topology.
    pub fn uplink_bytes(&self, rack: usize) -> f64 {
        match self.racks.get(rack) {
            Some(r) => {
                self.engine.bytes_through(r.uplink_out) + self.engine.bytes_through(r.uplink_in)
            }
            None => 0.0,
        }
    }

    /// Installs a structured-event [`Recorder`] on the underlying engine.
    pub fn set_recorder(&mut self, recorder: Box<dyn Recorder>) {
        self.engine.set_recorder(recorder);
    }

    /// Whether a recorder is installed.
    pub fn recording(&self) -> bool {
        self.engine.recording()
    }

    /// Emits an event into the recorder stream (no-op without a recorder).
    /// Lets callers above the I/O layer (the executor) interleave their
    /// own events with the simulator's.
    #[inline]
    pub fn emit(&mut self, event: TraceEvent) {
        self.engine.emit(event);
    }

    /// Work counters of the underlying engine (recompute passes, rerated
    /// flows, ETA churn) — see [`crate::EngineStats`].
    #[inline]
    pub fn engine_stats(&self) -> crate::EngineStats {
        self.engine.stats()
    }

    /// Direct access to the underlying engine (for custom resource use).
    pub fn engine_mut(&mut self) -> &mut Engine {
        &mut self.engine
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Event;

    const CHUNK: u64 = 64 * MB_U64;

    fn drain_durations(cluster: &mut ClusterIo) -> Vec<(u64, f64)> {
        let mut out = Vec::new();
        while let Some(ev) = cluster.next_event() {
            if let Event::FlowCompleted(c) = ev {
                out.push((c.token, c.duration()));
            }
        }
        out
    }

    #[test]
    fn lone_local_read_is_about_point_nine_seconds() {
        let mut c = ClusterIo::new(4, IoParams::marmot());
        c.start_read(0, 0, CHUNK, 0);
        let d = drain_durations(&mut c)[0].1;
        // 64 MB / 72 MB/s + 0.01 s latency = 0.899 s
        assert!((d - 0.899).abs() < 0.01, "duration={d}");
    }

    #[test]
    fn lone_remote_read_takes_about_two_seconds() {
        // Paper Section V-C2: "reading a single chunk file remotely could
        // take more than 2 seconds" even uncontended — the per-stream
        // remote ceiling binds, not the disk.
        let mut c = ClusterIo::new(4, IoParams::marmot());
        c.start_read(0, 1, CHUNK, 0);
        let d = drain_durations(&mut c)[0].1;
        assert!(d > 1.8 && d < 2.3, "duration={d}");
    }

    #[test]
    fn uncapped_remote_read_is_disk_bound() {
        let mut params = IoParams::marmot();
        params.remote_stream_bandwidth = f64::INFINITY;
        let mut c = ClusterIo::new(4, params);
        c.start_read(0, 1, CHUNK, 0);
        let d = drain_durations(&mut c)[0].1;
        assert!(d > 0.90 && d < 1.05, "duration={d}");
    }

    #[test]
    fn contended_source_node_slows_remote_readers() {
        // Six readers all pulling distinct chunks from node 0's disk —
        // the pattern the paper's Figure 1 exhibits on over-loaded nodes.
        let mut c = ClusterIo::new(8, IoParams::marmot());
        for reader in 1..7 {
            c.start_read(reader, 0, CHUNK, reader as u64);
        }
        let durations = drain_durations(&mut c);
        let worst = durations.iter().map(|&(_, d)| d).fold(0.0, f64::max);
        // Degraded aggregate ~28 MB/s shared six ways: many seconds, at
        // the top of the 2–12 s band the paper reports for contended reads.
        assert!(worst > 4.0 && worst < 15.0, "worst={worst}");
    }

    #[test]
    fn balanced_local_reads_stay_fast() {
        let mut c = ClusterIo::new(8, IoParams::marmot());
        for node in 0..8 {
            c.start_read(node, node, CHUNK, node as u64);
        }
        let durations = drain_durations(&mut c);
        for (_, d) in durations {
            assert!(d < 1.0, "local read should stay ~0.9 s, got {d}");
        }
    }

    #[test]
    fn nic_limits_fan_in() {
        // Many sources to one reader: reader's NIC-in is the bottleneck.
        let mut c = ClusterIo::new(9, IoParams::marmot());
        for src in 1..9 {
            c.start_read(0, src, CHUNK, src as u64);
        }
        let durations = drain_durations(&mut c);
        let worst = durations.iter().map(|&(_, d)| d).fold(0.0, f64::max);
        // 8 chunks through a 117 MB/s NIC ≈ 4.4 s minimum.
        assert!(worst > 4.0, "worst={worst}");
    }

    #[test]
    fn no_seek_ablation_removes_degradation() {
        let params = IoParams::marmot().no_seek_degradation();
        let mut c = ClusterIo::new(8, params);
        for reader in 1..7 {
            c.start_read(reader, 0, CHUNK, reader as u64);
        }
        let worst = drain_durations(&mut c)
            .iter()
            .map(|&(_, d)| d)
            .fold(0.0, f64::max);
        // 6 chunks at full 72 MB/s aggregate ≈ 5.3 s; with degradation it
        // would be ~9.7 s.
        assert!(worst < 6.0, "worst={worst}");
    }

    #[test]
    fn validate_rejects_bad_params() {
        let mut p = IoParams::marmot();
        p.disk_bandwidth = -1.0;
        assert!(p.validate().is_err());
        let mut p = IoParams::marmot();
        p.disk_seek_floor = 2.0;
        assert!(p.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn read_from_unknown_node_panics() {
        let mut c = ClusterIo::new(2, IoParams::marmot());
        c.start_read(0, 5, 1, 0);
    }

    fn racked(nodes: usize, per_rack: usize, uplink: f64) -> ClusterIo {
        ClusterIo::with_topology(
            nodes,
            IoParams::marmot(),
            crate::topology::Topology::Racked {
                nodes_per_rack: per_rack,
                uplink_bandwidth: uplink,
            },
        )
    }

    #[test]
    fn intra_rack_reads_skip_the_uplink() {
        // Tiny uplink; same-rack remote read must be unaffected by it.
        let mut c = racked(8, 4, 1.0 * MB);
        c.start_read(0, 1, CHUNK, 0); // nodes 0,1 share rack 0
        let d = drain_durations(&mut c)[0].1;
        assert!(d < 2.5, "intra-rack read throttled by uplink: {d}");
    }

    #[test]
    fn cross_rack_reads_share_the_uplink() {
        // Four cross-rack readers from distinct sources: the 30 MB/s rack-0
        // uplink is the bottleneck (4 x 64 MB through 30 MB/s ~ 8.5 s),
        // slower than the same fan-out on a flat switch.
        let mut c = racked(8, 4, 30.0 * MB);
        for (i, reader) in (4..8).enumerate() {
            c.start_read(reader, i, CHUNK, reader as u64);
        }
        let worst_racked = drain_durations(&mut c)
            .iter()
            .map(|&(_, d)| d)
            .fold(0.0, f64::max);

        let mut flat = ClusterIo::new(8, IoParams::marmot());
        for (i, reader) in (4..8).enumerate() {
            flat.start_read(reader, i, CHUNK, reader as u64);
        }
        let worst_flat = drain_durations(&mut flat)
            .iter()
            .map(|&(_, d)| d)
            .fold(0.0, f64::max);
        assert!(
            worst_racked > worst_flat * 2.0,
            "racked {worst_racked} vs flat {worst_flat}"
        );
    }

    #[test]
    fn pipelined_write_is_min_hop_bound() {
        // Writer-local first replica plus two remote replicas: the pipeline
        // runs at the slowest disk (all idle, so ~disk speed).
        let mut c = ClusterIo::new(4, IoParams::marmot());
        c.start_write(0, &[0, 1, 2], CHUNK, 9);
        let d = drain_durations(&mut c)[0].1;
        // 64 MB at 72 MB/s + latency ~ 0.95 s.
        assert!(d > 0.85 && d < 1.1, "write duration {d}");
    }

    #[test]
    fn concurrent_writes_contend_on_target_disks() {
        // Two writers replicating onto the same pair of disks halve their
        // throughput.
        let mut c = ClusterIo::new(4, IoParams::marmot());
        c.start_write(0, &[2, 3], CHUNK, 0);
        c.start_write(1, &[2, 3], CHUNK, 1);
        let durations = drain_durations(&mut c);
        for (_, d) in durations {
            assert!(d > 1.6, "contended write too fast: {d}");
        }
    }

    #[test]
    fn local_only_write_skips_the_nic() {
        let mut c = ClusterIo::new(2, IoParams::marmot());
        c.start_write(0, &[0], CHUNK, 0);
        let d = drain_durations(&mut c)[0].1;
        assert!(d < 1.0, "local write should be disk-bound: {d}");
    }

    #[test]
    fn disk_byte_accounting_matches_reads() {
        let mut c = ClusterIo::new(4, IoParams::marmot());
        c.start_read(1, 0, CHUNK, 0); // remote: disk 0 streams the chunk
        c.start_read(2, 2, CHUNK, 1); // local on node 2
        drain_durations(&mut c);
        assert!((c.disk_bytes(0) - CHUNK as f64).abs() < 1.0);
        assert!((c.disk_bytes(2) - CHUNK as f64).abs() < 1.0);
        assert!(c.disk_bytes(3) < 1.0);
    }

    #[test]
    fn uplink_bytes_counted_only_cross_rack() {
        let mut c = racked(8, 4, 100.0 * MB);
        c.start_read(1, 0, CHUNK, 0); // intra-rack
        c.start_read(5, 0, CHUNK, 1); // cross-rack: rack0 -> rack1
        drain_durations(&mut c);
        assert!((c.uplink_bytes(0) - CHUNK as f64).abs() < 1.0, "rack0 out");
        assert!((c.uplink_bytes(1) - CHUNK as f64).abs() < 1.0, "rack1 in");
        // Flat clusters report zero.
        let mut flat = ClusterIo::new(2, IoParams::marmot());
        flat.start_read(0, 1, CHUNK, 0);
        drain_durations(&mut flat);
        assert_eq!(flat.uplink_bytes(0), 0.0);
    }

    #[test]
    fn heterogeneous_disks_differ_in_speed() {
        let factors = [1.0, 0.5];
        let mut c = ClusterIo::with_disk_factors(
            IoParams::marmot(),
            crate::topology::Topology::Flat,
            &factors,
        );
        c.start_read(0, 0, CHUNK, 0);
        c.start_read(1, 1, CHUNK, 1);
        let durations = drain_durations(&mut c);
        let fast = durations.iter().find(|&&(t, _)| t == 0).unwrap().1;
        let slow = durations.iter().find(|&&(t, _)| t == 1).unwrap().1;
        assert!(
            (slow / fast - 2.0).abs() < 0.1,
            "slow {slow} should be ~2x fast {fast}"
        );
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn rejects_bad_disk_factor() {
        let _ = ClusterIo::with_disk_factors(
            IoParams::marmot(),
            crate::topology::Topology::Flat,
            &[1.0, 0.0],
        );
    }

    #[test]
    #[should_panic(expected = "at least one target")]
    fn write_requires_targets() {
        let mut c = ClusterIo::new(2, IoParams::marmot());
        c.start_write(0, &[], 1, 0);
    }
}
