//! The retained dense reference engine.
//!
//! This is the original O(events × flows) implementation: global rate
//! recomputation with fresh allocations on every activation/completion, and
//! a linear scan over all active flows to find the next completion. It is
//! kept verbatim as the behavioral oracle for the incremental engine —
//! property tests assert both produce the same event streams — and as the
//! baseline the `bench_sim` binary measures speedups against.
//!
//! Compiled only for tests and under the `reference-engine` feature; it is
//! not part of the production event loop.

use super::{Event, BYTES_EPS};
use crate::fairshare::{allocate_rates, FlowPath};
use crate::flow::{FlowCompletion, FlowId, FlowPhase, FlowSpec, FlowState};
use crate::record::{Recorder, RecorderSlot, TraceEvent};
use crate::resource::{Resource, ResourceId};
use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TimerKind {
    User { token: u64 },
    Activate(FlowId),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct TimerEntry {
    at: SimTime,
    seq: u64,
    kind: TimerKind,
}

impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Dense-recompute discrete-event simulator: same public surface and same
/// event semantics as [`crate::Engine`], quadratic behavior.
#[derive(Debug)]
pub struct ReferenceEngine {
    now: SimTime,
    resources: Vec<Resource>,
    flows: Vec<FlowState>,
    /// Indices (into `flows`) of flows in the `Active` phase, kept sorted
    /// for deterministic iteration and tie-breaking.
    active: Vec<usize>,
    timers: BinaryHeap<Reverse<TimerEntry>>,
    timer_seq: u64,
    rates_dirty: bool,
    /// Bytes that have traversed each resource (utilization accounting).
    delivered: Vec<f64>,
    /// Optional structured-event sink (observability; disabled by default).
    recorder: RecorderSlot,
}

impl Default for ReferenceEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl ReferenceEngine {
    /// Creates an empty engine at time zero.
    pub fn new() -> Self {
        ReferenceEngine {
            now: SimTime::ZERO,
            resources: Vec::new(),
            flows: Vec::new(),
            active: Vec::new(),
            timers: BinaryHeap::new(),
            timer_seq: 0,
            rates_dirty: false,
            delivered: Vec::new(),
            recorder: RecorderSlot::empty(),
        }
    }

    /// Installs a structured-event [`Recorder`].
    pub fn set_recorder(&mut self, recorder: Box<dyn Recorder>) {
        self.recorder.install(recorder);
    }

    /// Whether a recorder is installed.
    pub fn recording(&self) -> bool {
        self.recorder.enabled()
    }

    /// Emits an event to the installed recorder (no-op without one).
    #[inline]
    pub fn emit(&mut self, event: TraceEvent) {
        self.recorder.emit(event);
    }

    /// Registers a resource and returns its id.
    pub fn add_resource(&mut self, resource: Resource) -> ResourceId {
        let id = ResourceId(u32::try_from(self.resources.len()).expect("too many resources"));
        self.resources.push(resource);
        self.delivered.push(0.0);
        id
    }

    /// Returns the resource behind an id.
    pub fn resource(&self, id: ResourceId) -> &Resource {
        &self.resources[id.index()]
    }

    /// Number of registered resources.
    pub fn resource_count(&self) -> usize {
        self.resources.len()
    }

    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of flows currently transferring (excludes latent ones).
    pub fn active_flow_count(&self) -> usize {
        self.active.len()
    }

    /// Total bytes that have traversed `resource` so far.
    pub fn bytes_through(&self, resource: ResourceId) -> f64 {
        self.delivered[resource.index()]
    }

    /// Mean utilization of `resource` since time zero.
    pub fn utilization(&self, resource: ResourceId) -> f64 {
        let elapsed = self.now.as_secs();
        if elapsed <= 0.0 {
            return 0.0;
        }
        let possible = self.resources[resource.index()].base_capacity * elapsed;
        self.delivered[resource.index()] / possible
    }

    /// Submits a flow. It starts transferring after its startup latency.
    ///
    /// # Panics
    ///
    /// Panics if the spec references an unknown resource.
    pub fn start_flow(&mut self, spec: FlowSpec) -> FlowId {
        for r in &spec.path {
            assert!(
                r.index() < self.resources.len(),
                "flow references unknown resource {:?}",
                r
            );
        }
        let id = FlowId(self.flows.len() as u64);
        let latency = spec.latency;
        let state = FlowState::new(spec, self.now);
        self.flows.push(state);
        if latency > 0.0 {
            self.push_timer(self.now + latency, TimerKind::Activate(id));
        } else {
            self.activate(id);
        }
        id
    }

    /// Schedules a user timer `delay` seconds from now.
    pub fn set_timer(&mut self, delay: f64, token: u64) {
        assert!(
            delay.is_finite() && delay >= 0.0,
            "timer delay must be finite and non-negative"
        );
        self.push_timer(self.now + delay, TimerKind::User { token });
    }

    fn push_timer(&mut self, at: SimTime, kind: TimerKind) {
        let entry = TimerEntry {
            at,
            seq: self.timer_seq,
            kind,
        };
        self.timer_seq += 1;
        self.timers.push(Reverse(entry));
    }

    fn activate(&mut self, id: FlowId) {
        let idx = id.index();
        let flow = &mut self.flows[idx];
        debug_assert_eq!(flow.phase, FlowPhase::Latent);
        flow.phase = FlowPhase::Active;
        flow.active_at = Some(self.now);
        // Keep `active` sorted; flow indices are monotonically increasing so
        // a push preserves order, but activation can happen out of submission
        // order when latencies differ.
        let pos = self.active.partition_point(|&x| x < idx);
        self.active.insert(pos, idx);
        self.rates_dirty = true;
    }

    fn recompute_rates(&mut self) {
        // Aggregate capacities depend on per-resource concurrency.
        let mut counts = vec![0usize; self.resources.len()];
        for &fi in &self.active {
            for &r in &self.flows[fi].resources {
                counts[r] += 1;
            }
        }
        let capacities: Vec<f64> = self
            .resources
            .iter()
            .zip(&counts)
            .map(|(res, &n)| res.capacity(n))
            .collect();
        let paths: Vec<FlowPath> = self
            .active
            .iter()
            .map(|&fi| FlowPath {
                resources: self.flows[fi].resources.clone(),
                rate_cap: self.flows[fi].spec.rate_cap,
            })
            .collect();
        let rates = allocate_rates(&paths, &capacities);
        for (&fi, rate) in self.active.iter().zip(rates) {
            self.flows[fi].rate = rate;
        }
        self.rates_dirty = false;
        if self.recorder.enabled() {
            let (mut min_rate, mut max_rate) = (f64::INFINITY, 0.0f64);
            for &fi in &self.active {
                let r = self.flows[fi].rate;
                min_rate = min_rate.min(r);
                max_rate = max_rate.max(r);
            }
            if self.active.is_empty() {
                min_rate = 0.0;
            }
            self.recorder.emit(TraceEvent::RatesRecomputed {
                at: self.now.as_secs(),
                active_flows: self.active.len(),
                min_rate,
                max_rate,
            });
        }
    }

    /// Earliest completion among active flows: `(time, flow index)`.
    fn next_completion(&self) -> Option<(SimTime, usize)> {
        let mut best: Option<(SimTime, usize)> = None;
        for &fi in &self.active {
            let flow = &self.flows[fi];
            let eta = if flow.remaining <= BYTES_EPS || flow.rate.is_infinite() {
                self.now
            } else {
                debug_assert!(
                    flow.rate > 0.0,
                    "active flow {fi} has zero rate; resources saturated to zero?"
                );
                if flow.rate <= 0.0 {
                    continue; // defensive: skip stuck flows in release builds
                }
                self.now + flow.remaining / flow.rate
            };
            match best {
                Some((t, _)) if eta >= t => {}
                _ => best = Some((eta, fi)),
            }
        }
        best
    }

    /// Advances all active flows by `dt` seconds of transfer progress.
    fn advance(&mut self, to: SimTime) {
        let dt = to - self.now;
        debug_assert!(dt >= -1e-12, "time must not move backwards (dt={dt})");
        if dt > 0.0 {
            for &fi in &self.active {
                let flow = &mut self.flows[fi];
                if flow.rate.is_finite() {
                    let moved = (flow.rate * dt).min(flow.remaining);
                    flow.remaining -= moved;
                    for &r in &flow.resources {
                        self.delivered[r] += moved;
                    }
                } else {
                    flow.remaining = 0.0;
                }
            }
        }
        self.now = self.now.max(to);
    }

    /// Advances the clock to the next event and returns it, or `None` when
    /// no flows or timers remain.
    pub fn next_event(&mut self) -> Option<Event> {
        loop {
            if self.rates_dirty {
                self.recompute_rates();
            }
            let completion = self.next_completion();
            let timer_at = self.timers.peek().map(|Reverse(e)| e.at);

            let take_timer = match (completion, timer_at) {
                (None, None) => return None,
                (None, Some(_)) => true,
                (Some(_), None) => false,
                // Prefer timers on ties so latent flows activate before
                // concurrent completions are delivered.
                (Some((ct, _)), Some(tt)) => tt <= ct,
            };

            if take_timer {
                let Reverse(entry) = self.timers.pop().expect("peeked timer must exist");
                self.advance(entry.at);
                match entry.kind {
                    TimerKind::Activate(id) => {
                        self.activate(id);
                        continue;
                    }
                    TimerKind::User { token } => {
                        return Some(Event::TimerFired {
                            token,
                            at: self.now,
                        });
                    }
                }
            } else {
                let (at, fi) = completion.expect("completion must exist");
                self.advance(at);
                let flow = &mut self.flows[fi];
                flow.remaining = 0.0;
                flow.phase = FlowPhase::Completed;
                let completion = FlowCompletion {
                    flow: FlowId(fi as u64),
                    token: flow.spec.token,
                    bytes: flow.spec.bytes,
                    issued_at: flow.issued_at,
                    completed_at: self.now,
                };
                let pos = self
                    .active
                    .iter()
                    .position(|&a| a == fi)
                    .expect("completed flow must be active");
                self.active.remove(pos);
                self.rates_dirty = true;
                self.recorder.emit_with(|| TraceEvent::FlowFinished {
                    at: completion.completed_at.as_secs(),
                    token: completion.token,
                    bytes: completion.bytes,
                });
                return Some(Event::FlowCompleted(completion));
            }
        }
    }

    /// Runs the engine to exhaustion, collecting all flow completions.
    pub fn drain(&mut self) -> Vec<FlowCompletion> {
        let mut out = Vec::new();
        while let Some(ev) = self.next_event() {
            if let Event::FlowCompleted(c) = ev {
                out.push(c);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_flow_duration_is_size_over_capacity() {
        let mut e = ReferenceEngine::new();
        let r = e.add_resource(Resource::constant("r", 100.0));
        e.start_flow(FlowSpec::new(250, vec![r], 9));
        match e.next_event() {
            Some(Event::FlowCompleted(c)) => {
                assert_eq!(c.token, 9);
                assert!((c.completed_at.as_secs() - 2.5).abs() < 1e-9);
            }
            other => panic!("unexpected event {other:?}"),
        }
        assert_eq!(e.next_event(), None);
    }

    #[test]
    fn two_flows_share_then_speed_up() {
        let mut e = ReferenceEngine::new();
        let r = e.add_resource(Resource::constant("r", 100.0));
        e.start_flow(FlowSpec::new(100, vec![r], 1));
        e.start_flow(FlowSpec::new(300, vec![r], 2));
        let done = e.drain();
        assert_eq!(done.len(), 2);
        assert!((done[0].completed_at.as_secs() - 2.0).abs() < 1e-9);
        assert!((done[1].completed_at.as_secs() - 4.0).abs() < 1e-9);
    }
}
