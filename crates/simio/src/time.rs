//! Simulation time.
//!
//! Time is modelled as seconds since the start of the simulation, stored in
//! an `f64`. The newtype guarantees the value is finite and non-negative,
//! which gives us a total order ([`Ord`]) that the event queue relies on.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in seconds since simulation start.
///
/// Construction is checked: `SimTime` values are always finite and
/// non-negative, so they form a total order and can be used as binary-heap
/// keys without `PartialOrd` escape hatches.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimTime(f64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates a time point from seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative, NaN, or infinite.
    #[inline]
    pub fn from_secs(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "SimTime must be finite and non-negative, got {secs}"
        );
        SimTime(secs)
    }

    /// Returns the time as seconds.
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// Duration from `earlier` to `self`, saturating at zero.
    #[inline]
    pub fn duration_since(self, earlier: SimTime) -> f64 {
        (self.0 - earlier.0).max(0.0)
    }

    /// The later of two time points.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The earlier of two time points.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl Eq for SimTime {}

impl PartialOrd for SimTime {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SimTime {
    #[inline]
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Values are guaranteed finite, so total_cmp agrees with the
        // arithmetic order.
        self.0.total_cmp(&other.0)
    }
}

impl Add<f64> for SimTime {
    type Output = SimTime;

    #[inline]
    fn add(self, rhs: f64) -> SimTime {
        SimTime::from_secs(self.0 + rhs)
    }
}

impl AddAssign<f64> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: f64) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = f64;

    #[inline]
    fn sub(self, rhs: SimTime) -> f64 {
        self.0 - rhs.0
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.0)
    }
}

impl Default for SimTime {
    fn default() -> Self {
        SimTime::ZERO
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_default() {
        assert_eq!(SimTime::default(), SimTime::ZERO);
        assert_eq!(SimTime::ZERO.as_secs(), 0.0);
    }

    #[test]
    fn ordering_is_total() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(2.0);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(1.5) + 0.5;
        assert_eq!(t.as_secs(), 2.0);
        assert_eq!(t - SimTime::from_secs(0.5), 1.5);
        assert_eq!(t.duration_since(SimTime::from_secs(3.0)), 0.0);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn rejects_negative() {
        let _ = SimTime::from_secs(-1.0);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn rejects_nan() {
        let _ = SimTime::from_secs(f64::NAN);
    }

    #[test]
    fn add_assign_advances() {
        let mut t = SimTime::ZERO;
        t += 2.5;
        assert_eq!(t.as_secs(), 2.5);
    }
}
