//! # opass-simio — discrete-event cluster I/O simulator
//!
//! This crate is the hardware substrate of the Opass reproduction. The
//! original paper evaluated on PRObE's 128-node *Marmot* cluster; here the
//! cluster is a deterministic fluid-flow simulation:
//!
//! * every node has a **disk** (streaming bandwidth that degrades under
//!   concurrent streams, modelling seek interference) and a full-duplex
//!   **NIC** (constant bandwidth per direction);
//! * a **flow** is a chunk read traversing the source disk and, when remote,
//!   both NIC directions;
//! * concurrent flows share resources with **max-min fairness** (progressive
//!   filling), recomputed whenever a flow starts or finishes;
//! * the [`Engine`] exposes a pull-based event loop so callers can schedule
//!   reactively (submit a read when a simulated process becomes idle).
//!
//! The calibration in [`IoParams::marmot`] reproduces the absolute numbers
//! the paper reports: a lone local 64 MB read ≈ 0.9 s, contended remote
//! reads 2–12 s.
//!
//! ## Quick start
//!
//! ```
//! use opass_simio::{ClusterIo, IoParams, Event, MB_U64};
//!
//! let mut cluster = ClusterIo::new(4, IoParams::marmot());
//! // Node 1 reads a 64 MB chunk stored on node 0 (remote read).
//! cluster.start_read(1, 0, 64 * MB_U64, 42);
//! while let Some(ev) = cluster.next_event() {
//!     if let Event::FlowCompleted(c) = ev {
//!         assert_eq!(c.token, 42);
//!         assert!(c.duration() > 0.9);
//!     }
//! }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cluster;
mod components;
pub mod engine;
pub mod fairshare;
pub mod flow;
pub mod record;
pub mod resource;
pub mod stats;
pub mod time;
pub mod topology;

pub use cluster::{ClusterIo, IoParams, MB, MB_U64};
pub use engine::{Engine, EngineStats, Event};
pub use flow::{FlowCompletion, FlowId, FlowSpec};
pub use record::{MemoryRecorder, NoopRecorder, Recorder, TraceEvent};
pub use resource::{Degradation, Resource, ResourceId};
pub use stats::{empirical_cdf, quantile, CdfPoint, Summary};
pub use time::SimTime;
pub use topology::Topology;
