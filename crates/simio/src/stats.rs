//! Small descriptive-statistics helpers shared by traces and reports.
//!
//! The evaluation figures all reduce to the same handful of summaries —
//! average/max/min, standard deviation, and empirical CDFs — so they live
//! here once rather than in each experiment.

/// Summary statistics over a set of samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean (0 when empty).
    pub mean: f64,
    /// Smallest sample (0 when empty).
    pub min: f64,
    /// Largest sample (0 when empty).
    pub max: f64,
    /// Population standard deviation (0 when empty).
    pub stddev: f64,
}

impl Summary {
    /// Computes a summary over `samples`.
    pub fn of(samples: &[f64]) -> Summary {
        if samples.is_empty() {
            return Summary {
                count: 0,
                mean: 0.0,
                min: 0.0,
                max: 0.0,
                stddev: 0.0,
            };
        }
        let count = samples.len();
        let mean = samples.iter().sum::<f64>() / count as f64;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut var = 0.0;
        for &s in samples {
            min = min.min(s);
            max = max.max(s);
            var += (s - mean) * (s - mean);
        }
        Summary {
            count,
            mean,
            min,
            max,
            stddev: (var / count as f64).sqrt(),
        }
    }

    /// Ratio of the largest to the smallest sample (`inf` when min is 0).
    pub fn max_over_min(&self) -> f64 {
        if self.min > 0.0 {
            self.max / self.min
        } else {
            f64::INFINITY
        }
    }
}

/// One point of an empirical CDF: `fraction` of samples are `<= value`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CdfPoint {
    /// Sample value.
    pub value: f64,
    /// Cumulative fraction in `[0, 1]`.
    pub fraction: f64,
}

/// Builds the empirical CDF of `samples` (sorted, one point per sample).
pub fn empirical_cdf(samples: &[f64]) -> Vec<CdfPoint> {
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let n = sorted.len();
    sorted
        .into_iter()
        .enumerate()
        .map(|(i, value)| CdfPoint {
            value,
            fraction: (i + 1) as f64 / n as f64,
        })
        .collect()
}

/// Returns the `q`-quantile (0 ≤ q ≤ 1) of `samples` by nearest-rank.
///
/// Returns 0 for an empty slice.
pub fn quantile(samples: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_empty_is_zero() {
        let s = Summary::of(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn summary_basics() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.count, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        // population stddev of 1..4 = sqrt(1.25)
        assert!((s.stddev - 1.25_f64.sqrt()).abs() < 1e-12);
        assert!((s.max_over_min() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn max_over_min_handles_zero() {
        let s = Summary::of(&[0.0, 5.0]);
        assert!(s.max_over_min().is_infinite());
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let cdf = empirical_cdf(&[3.0, 1.0, 2.0, 2.0]);
        assert_eq!(cdf.len(), 4);
        assert_eq!(cdf[0].value, 1.0);
        assert!((cdf.last().unwrap().fraction - 1.0).abs() < 1e-12);
        for w in cdf.windows(2) {
            assert!(w[0].value <= w[1].value);
            assert!(w[0].fraction <= w[1].fraction);
        }
    }

    #[test]
    fn quantiles() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 0.5), 3.0);
        assert_eq!(quantile(&xs, 1.0), 5.0);
        assert_eq!(quantile(&[], 0.5), 0.0);
    }
}
