//! Randomized property tests for the discrete-event simulator.
//!
//! Invariants on randomized flow sets (seeded `StdRng` loops, so every run
//! exercises the same cases deterministically):
//! * every submitted flow completes exactly once, never before
//!   `latency + bytes / fastest_possible_rate`;
//! * the clock never runs backwards and completions are delivered in time
//!   order;
//! * per-resource byte accounting conserves payload bytes;
//! * max-min allocations never violate capacities or rate caps;
//! * identical submissions replay identically.

use opass_simio::fairshare::{allocate_rates, respects_capacities, FlowPath};
use opass_simio::{Engine, Event, FlowSpec, Resource};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A small resource pool (capacities in B/s).
fn random_resources(rng: &mut StdRng) -> Vec<f64> {
    (0..rng.gen_range(1usize..6))
        .map(|_| rng.gen_range(10.0f64..1000.0))
        .collect()
}

/// Flows over `nr` resources: (bytes, path indices, latency).
fn random_flows(rng: &mut StdRng, nr: usize) -> Vec<(u64, Vec<usize>, f64)> {
    (0..rng.gen_range(1usize..20))
        .map(|_| {
            let path = (0..rng.gen_range(1usize..=nr.min(3)))
                .map(|_| rng.gen_range(0..nr))
                .collect();
            (
                rng.gen_range(1u64..100_000),
                path,
                rng.gen_range(0.0f64..2.0),
            )
        })
        .collect()
}

#[test]
fn every_flow_completes_once_and_not_too_early() {
    let mut rng = StdRng::seed_from_u64(0xC1);
    for _ in 0..48 {
        let flows = random_flows(&mut rng, 5);
        let mut engine = Engine::new();
        let ids: Vec<_> = flows_desc_resources(&flows)
            .iter()
            .map(|&cap| engine.add_resource(Resource::constant("r", cap)))
            .collect();
        let max_cap = flows_desc_resources(&flows)
            .iter()
            .cloned()
            .fold(0.0, f64::max);

        for (i, (bytes, path, latency)) in flows.iter().enumerate() {
            let path: Vec<_> = path.iter().map(|&r| ids[r % ids.len()]).collect();
            engine.start_flow(FlowSpec::new(*bytes, path, i as u64).with_latency(*latency));
        }
        let completions = engine.drain();
        assert_eq!(completions.len(), flows.len());
        let mut seen = vec![false; flows.len()];
        let mut last = 0.0f64;
        for c in &completions {
            let i = c.token as usize;
            assert!(!seen[i], "flow {i} completed twice");
            seen[i] = true;
            // Time order.
            assert!(c.completed_at.as_secs() >= last - 1e-9);
            last = c.completed_at.as_secs();
            // Lower bound: latency + bytes / best-possible rate.
            let (bytes, _, latency) = flows[i];
            let min_time = latency + bytes as f64 / max_cap;
            assert!(
                c.duration() >= min_time - 1e-6,
                "flow {} too fast: {} < {}",
                i,
                c.duration(),
                min_time
            );
        }
    }
}

#[test]
fn allocator_respects_caps_and_capacities() {
    let mut rng = StdRng::seed_from_u64(0xC2);
    for _ in 0..48 {
        let caps = random_resources(&mut rng);
        let nr = caps.len();
        let flows: Vec<FlowPath> = (0..rng.gen_range(1usize..25))
            .map(|_| {
                let mut resources: Vec<usize> = (0..rng.gen_range(1usize..4))
                    .map(|_| rng.gen_range(0usize..6) % nr)
                    .collect();
                resources.sort_unstable();
                resources.dedup();
                let capped = rng.gen_bool(0.5);
                FlowPath {
                    resources,
                    rate_cap: if capped {
                        rng.gen_range(1.0f64..500.0)
                    } else {
                        f64::INFINITY
                    },
                }
            })
            .collect();
        let rates = allocate_rates(&flows, &caps);
        assert!(respects_capacities(&flows, &caps, &rates, 1e-6));
        for (f, &r) in flows.iter().zip(&rates) {
            assert!(
                r <= f.rate_cap + 1e-6,
                "rate {} above cap {}",
                r,
                f.rate_cap
            );
            assert!(r >= 0.0);
        }
        // Work conservation on each saturated single-flow path is implied;
        // at minimum no flow with a non-empty path is starved when its
        // resources have capacity.
        for (f, &r) in flows.iter().zip(&rates) {
            if !f.resources.is_empty() {
                assert!(r > 0.0, "flow starved: {:?}", f.resources);
            }
        }
    }
}

#[test]
fn replay_is_bit_identical() {
    let mut rng = StdRng::seed_from_u64(0xC3);
    for _ in 0..48 {
        let flows = random_flows(&mut rng, 3);
        let run = || {
            let mut e = Engine::new();
            let ids = [
                e.add_resource(Resource::disk("d", 100.0, 0.3, 0.2)),
                e.add_resource(Resource::constant("n1", 200.0)),
                e.add_resource(Resource::constant("n2", 150.0)),
            ];
            for (i, (bytes, path, latency)) in flows.iter().enumerate() {
                let p: Vec<_> = path.iter().map(|&r| ids[r % 3]).collect();
                e.start_flow(FlowSpec::new(*bytes, p, i as u64).with_latency(*latency));
            }
            e.drain()
                .iter()
                .map(|c| (c.token, c.completed_at.as_secs()))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}

#[test]
fn timers_fire_in_order() {
    let mut rng = StdRng::seed_from_u64(0xC4);
    for _ in 0..48 {
        let delays: Vec<f64> = (0..rng.gen_range(1usize..20))
            .map(|_| rng.gen_range(0.0f64..100.0))
            .collect();
        let mut e = Engine::new();
        for (i, &d) in delays.iter().enumerate() {
            e.set_timer(d, i as u64);
        }
        let mut last = 0.0f64;
        let mut count = 0;
        while let Some(Event::TimerFired { at, .. }) = e.next_event() {
            assert!(at.as_secs() >= last - 1e-12);
            last = at.as_secs();
            count += 1;
        }
        assert_eq!(count, delays.len());
    }
}

/// Derives a deterministic capacity pool from the flow set so the first
/// test can size resources without a second independent sample.
fn flows_desc_resources(flows: &[(u64, Vec<usize>, f64)]) -> Vec<f64> {
    let nr = flows
        .iter()
        .flat_map(|(_, p, _)| p.iter().copied())
        .max()
        .map(|m| m + 1)
        .unwrap_or(1);
    (0..nr).map(|i| 50.0 + 37.0 * i as f64).collect()
}
