//! Property-based tests for the discrete-event simulator.
//!
//! Invariants on randomized flow sets:
//! * every submitted flow completes exactly once, never before
//!   `latency + bytes / fastest_possible_rate`;
//! * the clock never runs backwards and completions are delivered in time
//!   order;
//! * per-resource byte accounting conserves payload bytes;
//! * max-min allocations never violate capacities or rate caps;
//! * identical submissions replay identically.

use opass_simio::fairshare::{allocate_rates, respects_capacities, FlowPath};
use opass_simio::{Engine, Event, FlowSpec, Resource};
use proptest::prelude::*;

/// Strategy: a small resource pool (capacities in B/s).
fn arb_resources() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(10.0f64..1000.0, 1..6)
}

/// Strategy: flows over `nr` resources: (bytes, path indices, latency).
fn arb_flows(nr: usize) -> impl Strategy<Value = Vec<(u64, Vec<usize>, f64)>> {
    proptest::collection::vec(
        (
            1u64..100_000,
            proptest::collection::vec(0..nr, 1..=nr.min(3)),
            0.0f64..2.0,
        ),
        1..20,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_flow_completes_once_and_not_too_early(flows in arb_flows(5)) {
        let mut engine = Engine::new();
        let ids: Vec<_> = flows_desc_resources(&flows)
            .iter()
            .map(|&cap| engine.add_resource(Resource::constant("r", cap)))
            .collect();
        let max_cap = flows_desc_resources(&flows).iter().cloned().fold(0.0, f64::max);

        for (i, (bytes, path, latency)) in flows.iter().enumerate() {
            let path: Vec<_> = path.iter().map(|&r| ids[r % ids.len()]).collect();
            engine.start_flow(
                FlowSpec::new(*bytes, path, i as u64).with_latency(*latency),
            );
        }
        let completions = engine.drain();
        prop_assert_eq!(completions.len(), flows.len());
        let mut seen = vec![false; flows.len()];
        let mut last = 0.0f64;
        for c in &completions {
            let i = c.token as usize;
            prop_assert!(!seen[i], "flow {} completed twice", i);
            seen[i] = true;
            // Time order.
            prop_assert!(c.completed_at.as_secs() >= last - 1e-9);
            last = c.completed_at.as_secs();
            // Lower bound: latency + bytes / best-possible rate.
            let (bytes, _, latency) = flows[i];
            let min_time = latency + bytes as f64 / max_cap;
            prop_assert!(
                c.duration() >= min_time - 1e-6,
                "flow {} too fast: {} < {}",
                i, c.duration(), min_time
            );
        }
    }

    #[test]
    fn allocator_respects_caps_and_capacities(
        caps in arb_resources(),
        paths in proptest::collection::vec(
            (proptest::collection::vec(0usize..6, 1..4), 1.0f64..500.0, any::<bool>()),
            1..25,
        ),
    ) {
        let nr = caps.len();
        let flows: Vec<FlowPath> = paths
            .iter()
            .map(|(rs, cap, capped)| {
                let mut resources: Vec<usize> = rs.iter().map(|&r| r % nr).collect();
                resources.sort_unstable();
                resources.dedup();
                FlowPath {
                    resources,
                    rate_cap: if *capped { *cap } else { f64::INFINITY },
                }
            })
            .collect();
        let rates = allocate_rates(&flows, &caps);
        prop_assert!(respects_capacities(&flows, &caps, &rates, 1e-6));
        for (f, &r) in flows.iter().zip(&rates) {
            prop_assert!(r <= f.rate_cap + 1e-6, "rate {} above cap {}", r, f.rate_cap);
            prop_assert!(r >= 0.0);
        }
        // Work conservation on each saturated single-flow path is implied;
        // at minimum no flow with a non-empty path is starved when its
        // resources have capacity.
        for (f, &r) in flows.iter().zip(&rates) {
            if !f.resources.is_empty() {
                prop_assert!(r > 0.0, "flow starved: {:?}", f.resources);
            }
        }
    }

    #[test]
    fn replay_is_bit_identical(
        flows in arb_flows(3),
    ) {
        let run = || {
            let mut e = Engine::new();
            let ids = [
                e.add_resource(Resource::disk("d", 100.0, 0.3, 0.2)),
                e.add_resource(Resource::constant("n1", 200.0)),
                e.add_resource(Resource::constant("n2", 150.0)),
            ];
            for (i, (bytes, path, latency)) in flows.iter().enumerate() {
                let p: Vec<_> = path.iter().map(|&r| ids[r % 3]).collect();
                e.start_flow(FlowSpec::new(*bytes, p, i as u64).with_latency(*latency));
            }
            e.drain()
                .iter()
                .map(|c| (c.token, c.completed_at.as_secs()))
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(run(), run());
    }

    #[test]
    fn timers_fire_in_order(delays in proptest::collection::vec(0.0f64..100.0, 1..20)) {
        let mut e = Engine::new();
        for (i, &d) in delays.iter().enumerate() {
            e.set_timer(d, i as u64);
        }
        let mut last = 0.0f64;
        let mut count = 0;
        while let Some(Event::TimerFired { at, .. }) = e.next_event() {
            prop_assert!(at.as_secs() >= last - 1e-12);
            last = at.as_secs();
            count += 1;
        }
        prop_assert_eq!(count, delays.len());
    }
}

/// Derives a deterministic capacity pool from the flow set so the first
/// proptest can size resources without a second independent sample.
fn flows_desc_resources(flows: &[(u64, Vec<usize>, f64)]) -> Vec<f64> {
    let nr = flows
        .iter()
        .flat_map(|(_, p, _)| p.iter().copied())
        .max()
        .map(|m| m + 1)
        .unwrap_or(1);
    (0..nr).map(|i| 50.0 + 37.0 * i as f64).collect()
}
