#!/usr/bin/env bash
# Repo-wide hygiene gate: formatting, determinism linter, lints, build, tests.
# Offline-friendly: everything runs with --offline against the vendored
# dependencies, so it works without network access.
#
# Modes:
#   check.sh                 full gate (fmt, opass-lint, clippy, build, tests)
#   check.sh --lint          determinism & invariant linter only: runs
#                            opass-lint over the workspace (config in
#                            lint.toml) and fails on any unsuppressed
#                            finding — including deny findings from the
#                            transitive call-graph pass — printing fix
#                            hints and archiving lint.sarif for CI diffing
#   check.sh --lint-timing   lint-throughput smoke: full-workspace lint
#                            (8 threads) must finish under the committed
#                            wall-time budget below
#   check.sh --bench-smoke   engine-throughput smoke: runs the bench_sim
#                            smoke scenario in release and fails if
#                            events/sec regressed >30% vs the committed
#                            BENCH_sim.json baseline
#   check.sh --serve-smoke   planning-service smoke: runs the bench_serve
#                            smoke scenarios in release — including the
#                            100k-stream multiplexed loadgen, which on a
#                            multi-core host asserts the sharded reactor
#                            sustains >=1.5x the 1-shard rate (on a
#                            single hardware thread the scaling curve is
#                            recorded informationally) — and fails if
#                            plans/sec regressed >30% vs the committed
#                            BENCH_serve.json baseline
#   check.sh --replan-smoke  incremental re-planning smoke: runs the
#                            bench_replan smoke scenarios in release —
#                            the 1% churn scenario (which itself asserts
#                            repair is >=5x faster than from-scratch) and
#                            the 10^5-chunk arena scenario (which asserts
#                            per-step repair is >=5x faster than the
#                            committed pre-arena sequential measurement)
#                            — and fails if steps/sec regressed >50% vs
#                            the committed BENCH_replan.json baseline
#   check.sh --place-smoke   placement-loop smoke: runs the bench_place
#                            smoke scenario in release (which itself
#                            asserts the closed loop buys a >=1.5x p99
#                            I/O improvement on a hot-spotted layout and
#                            that every round's delta replays cleanly)
#                            and fails if the p99 speedup regressed >10%
#                            vs the committed BENCH_place.json baseline
#   check.sh --trace-smoke   trace-pipeline smoke: runs the bench_trace
#                            smoke scenario in release (which itself
#                            asserts the 1BRC-style parallel parse is
#                            bit-identical at 1/2/8 threads and that
#                            replay-through-planner is deterministic) and
#                            fails if parse or replay records/sec
#                            regressed >50% vs the committed
#                            BENCH_trace.json baseline
set -euo pipefail
cd "$(dirname "$0")/.."

run() {
    echo "==> $*"
    "$@"
}

lint() {
    run cargo build --release -p opass-lint --offline
    # SARIF artifact first (always written, even when the gate then
    # fails) so CI can archive and diff findings across commits. The
    # renderers are byte-stable, so this file only changes when findings
    # do. A deny finding makes opass-lint exit 1, which would abort under
    # `set -e` before the human-readable run — tolerate it here and let
    # the strict run below do the failing with readable output.
    echo "==> ./target/release/opass-lint --root . --format sarif > lint.sarif"
    ./target/release/opass-lint --root . --format sarif > lint.sarif || true
    # --strict: warn-level findings (panic-in-lib) also fail the gate, so
    # "clean" means zero unsuppressed findings of any severity — per-site
    # and graph rules (transitive-determinism, unused-suppression) alike.
    run ./target/release/opass-lint --root . --strict --fix-hints
}

if [[ "${1:-}" == "--lint" ]]; then
    lint
    echo "Lint passed (lint.sarif written)."
    exit 0
fi

if [[ "${1:-}" == "--lint-timing" ]]; then
    # Committed budget for a full-workspace lint, graph pass included.
    # Generous vs the observed time so host-load noise does not flake the
    # gate, but tight enough to catch an accidentally quadratic pass.
    LINT_BUDGET_SECONDS=20
    run cargo build --release -p opass-lint --offline
    start=$(date +%s)
    run ./target/release/opass-lint --root . --strict --threads 8
    elapsed=$(( $(date +%s) - start ))
    echo "full-workspace lint took ${elapsed}s (budget ${LINT_BUDGET_SECONDS}s)"
    if (( elapsed > LINT_BUDGET_SECONDS )); then
        echo "error: lint exceeded its wall-time budget" >&2
        exit 1
    fi
    echo "Lint timing smoke passed."
    exit 0
fi

if [[ "${1:-}" == "--bench-smoke" ]]; then
    if [[ ! -f BENCH_sim.json ]]; then
        echo "error: BENCH_sim.json baseline missing; run" >&2
        echo "  cargo run --release -p opass-bench --bin bench_sim --offline" >&2
        exit 1
    fi
    run cargo build --release -p opass-bench --bin bench_sim --offline
    run ./target/release/bench_sim --smoke --out - \
        --check-against BENCH_sim.json --max-regression 0.30
    echo "Bench smoke passed."
    exit 0
fi

if [[ "${1:-}" == "--serve-smoke" ]]; then
    if [[ ! -f BENCH_serve.json ]]; then
        echo "error: BENCH_serve.json baseline missing; run" >&2
        echo "  cargo run --release -p opass-bench --bin bench_serve --offline" >&2
        exit 1
    fi
    run cargo build --release -p opass-bench --bin bench_serve --offline
    run ./target/release/bench_serve --smoke --out - \
        --check-against BENCH_serve.json --max-regression 0.30
    echo "Serve smoke passed."
    exit 0
fi

if [[ "${1:-}" == "--replan-smoke" ]]; then
    if [[ ! -f BENCH_replan.json ]]; then
        echo "error: BENCH_replan.json baseline missing; run" >&2
        echo "  cargo run --release -p opass-bench --bin bench_replan --offline" >&2
        exit 1
    fi
    run cargo build --release -p opass-bench --bin bench_replan --offline
    # Wider margin than the other smokes: the repair arm's absolute wall
    # time is milliseconds and swings with host load; the binary's own
    # repair-vs-scratch and arena-vs-pre-arena speedup assertions are the
    # load-independent guarantees.
    run ./target/release/bench_replan --smoke --out - \
        --check-against BENCH_replan.json --max-regression 0.50
    echo "Replan smoke passed."
    exit 0
fi

if [[ "${1:-}" == "--place-smoke" ]]; then
    if [[ ! -f BENCH_place.json ]]; then
        echo "error: BENCH_place.json baseline missing; run" >&2
        echo "  cargo run --release -p opass-bench --bin bench_place --offline" >&2
        exit 1
    fi
    run cargo build --release -p opass-bench --bin bench_place --offline
    # Tight margin: the gated metric is the simulated-I/O p99 speedup,
    # which is deterministic for fixed seeds — any drift is a real
    # behavior change in the placement loop, not host-load noise.
    run ./target/release/bench_place --smoke --out - \
        --check-against BENCH_place.json --max-regression 0.10
    echo "Place smoke passed."
    exit 0
fi

if [[ "${1:-}" == "--trace-smoke" ]]; then
    if [[ ! -f BENCH_trace.json ]]; then
        echo "error: BENCH_trace.json baseline missing; run" >&2
        echo "  cargo run --release -p opass-bench --bin bench_trace --offline" >&2
        exit 1
    fi
    run cargo build --release -p opass-bench --bin bench_trace --offline
    # Wide margin: throughput swings with host load, while the load-
    # independent guarantees (parse bit-identity across thread counts,
    # replay fingerprint reproducibility) are asserted inside the binary
    # and never waived.
    run ./target/release/bench_trace --smoke --out - \
        --check-against BENCH_trace.json --max-regression 0.50
    echo "Trace smoke passed."
    exit 0
fi

run cargo fmt --all -- --check
lint
run cargo clippy --workspace --all-targets --offline -- -D warnings
run cargo build --workspace --release --offline
run cargo build --workspace --all-targets --offline
run cargo test --workspace --quiet --offline
# The retired thread-per-connection frontend only builds behind its
# feature gate; keep it honest (it A/B-checks itself against the reactor).
run cargo test -p opass-serve --features blocking-server --quiet --offline

echo "All checks passed."
