#!/usr/bin/env bash
# Repo-wide hygiene gate: formatting, lints, build, tests.
# Offline-friendly: everything runs with --offline against the vendored
# dependencies, so it works without network access.
#
# Modes:
#   check.sh                 full gate (fmt, clippy, build, tests)
#   check.sh --bench-smoke   engine-throughput smoke: runs the bench_sim
#                            smoke scenario in release and fails if
#                            events/sec regressed >30% vs the committed
#                            BENCH_sim.json baseline
set -euo pipefail
cd "$(dirname "$0")/.."

run() {
    echo "==> $*"
    "$@"
}

if [[ "${1:-}" == "--bench-smoke" ]]; then
    if [[ ! -f BENCH_sim.json ]]; then
        echo "error: BENCH_sim.json baseline missing; run" >&2
        echo "  cargo run --release -p opass-bench --bin bench_sim --offline" >&2
        exit 1
    fi
    run cargo build --release -p opass-bench --bin bench_sim --offline
    run ./target/release/bench_sim --smoke --out - \
        --check-against BENCH_sim.json --max-regression 0.30
    echo "Bench smoke passed."
    exit 0
fi

run cargo fmt --all -- --check
run cargo clippy --workspace --all-targets --offline -- -D warnings
run cargo build --workspace --release --offline
run cargo test --workspace --quiet --offline

echo "All checks passed."
