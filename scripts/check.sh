#!/usr/bin/env bash
# Repo-wide hygiene gate: formatting, lints, build, tests.
# Offline-friendly: everything runs with --offline against the vendored
# dependencies, so it works without network access.
set -euo pipefail
cd "$(dirname "$0")/.."

run() {
    echo "==> $*"
    "$@"
}

run cargo fmt --all -- --check
run cargo clippy --workspace --all-targets --offline -- -D warnings
run cargo build --workspace --release --offline
run cargo test --workspace --quiet --offline

echo "All checks passed."
