//! Quickstart: see Opass beat the default assignment in ~30 lines.
//!
//! Builds a 16-node simulated HDFS cluster holding 64 chunks of 64 MB,
//! reads the dataset with ParaView-style rank-interval assignment and then
//! with the Opass max-flow matching, and prints the comparison.
//!
//! Run with:
//! ```text
//! cargo run --release -p opass-examples --example quickstart
//! ```

// Printing is this binary's user interface.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use opass_core::{ClusterSpec, Experiment, SingleData, Strategy};

fn main() {
    let experiment = SingleData {
        cluster: ClusterSpec {
            n_nodes: 16,
            seed: 42,
            ..Default::default()
        },
        chunks_per_process: 4,
    };

    println!("Opass quickstart: 16 nodes, 64 chunks x 64 MB, 3-way replication\n");
    for (label, strategy) in [
        ("rank-interval (ParaView default)", Strategy::RankInterval),
        ("random balanced assignment", Strategy::RandomAssign),
        ("Opass max-flow matching", Strategy::Opass),
    ] {
        let run = experiment.run(strategy).expect("single-data strategy");
        let io = run.result.io_summary();
        println!("{label}:");
        println!(
            "  local reads    {:5.1}%",
            run.result.local_fraction() * 100.0
        );
        println!(
            "  I/O time       avg {:.2}s  max {:.2}s  min {:.2}s",
            io.mean, io.max, io.min
        );
        println!("  makespan       {:.2}s", run.result.makespan);
        println!("  planning cost  {:.2} ms\n", run.planning_seconds * 1e3);
    }

    println!("Opass serves (nearly) every read from the reader's own disk, so");
    println!("per-read times stay at the ~0.9 s a lone local 64 MB read costs,");
    println!("and no storage node becomes a contended hot spot.");
}
