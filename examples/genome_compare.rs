//! Multi-input gene comparison (paper Figure 2 right, Section V-A2).
//!
//! Each task compares genome subsets of three species, reading a 30 MB
//! human chunk, a 20 MB mouse chunk and a 10 MB chimpanzee chunk that live
//! in three different datasets. Opass Algorithm 1 assigns tasks so the
//! largest possible share of each task's input is on its process's node.
//! The example also verifies end-to-end data integrity using the synthetic
//! datanode payloads.
//!
//! Run with:
//! ```text
//! cargo run --release -p opass-examples --example genome_compare
//! ```

// Printing is this binary's user interface.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use opass_core::planner::OpassPlanner;
use opass_core::request::PlanRequest;
use opass_dfs::datanode::{checksum_of, chunk_payload};
use opass_dfs::{DfsConfig, Namenode, Placement, ReplicaChoice};
use opass_runtime::baseline;
use opass_runtime::{execute, ExecConfig, ProcessPlacement, TaskSource};
use opass_workloads::{multi, MultiDataConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n_nodes = 32;
    let mut namenode = Namenode::new(n_nodes, DfsConfig::default());
    let mut rng = StdRng::seed_from_u64(2026);

    let config = MultiDataConfig {
        n_tasks: n_nodes * 8,
        ..Default::default() // 30 / 20 / 10 MB inputs
    };
    let (datasets, workload) =
        multi::generate(&mut namenode, &config, &Placement::Random, &mut rng);
    println!(
        "gene comparison: {} tasks x 3 inputs over datasets {:?} on {n_nodes} nodes\n",
        workload.len(),
        datasets
    );

    let placement = ProcessPlacement::one_per_node(n_nodes);
    let plan = OpassPlanner::default()
        .plan(&PlanRequest::multi(&namenode, &workload, &placement))
        .into_multi()
        .expect("multi plan");
    println!(
        "Algorithm 1: {} of {} MB co-located ({:.0}%), {} trade-up reassignments",
        plan.matched_bytes >> 20,
        plan.total_bytes >> 20,
        plan.local_byte_fraction() * 100.0,
        plan.reassignments
    );

    // Execute baseline and Opass on the same layout.
    let exec_config = ExecConfig {
        replica_choice: ReplicaChoice::PreferLocalRandom,
        seed: 99,
        ..Default::default()
    };
    let base = execute(
        &namenode,
        &workload,
        &placement,
        TaskSource::Static(baseline::rank_interval(workload.len(), n_nodes)),
        &exec_config,
    );
    let opass = execute(
        &namenode,
        &workload,
        &placement,
        TaskSource::Static(plan.assignment),
        &exec_config,
    );
    println!(
        "\navg input read time: default {:.2}s vs opass {:.2}s ({:.1}x)",
        base.io_summary().mean,
        opass.io_summary().mean,
        base.io_summary().mean / opass.io_summary().mean
    );
    println!(
        "local bytes: default {:.0}% vs opass {:.0}%",
        base.local_byte_fraction() * 100.0,
        opass.local_byte_fraction() * 100.0
    );

    // Integrity check: whichever replica served each read, the payload the
    // reader observes must checksum to the chunk's canonical content.
    let mut verified = 0usize;
    for record in opass.records.iter().take(50) {
        let size = namenode.chunk(record.chunk).expect("chunk exists").size as usize;
        let sample = size.min(4096);
        let payload = chunk_payload(record.chunk, sample);
        assert_eq!(
            checksum_of(&payload),
            opass_dfs::datanode::chunk_checksum(record.chunk, sample),
            "corrupted read of {}",
            record.chunk
        );
        verified += 1;
    }
    println!("\nverified payload checksums for {verified} reads — data integrity holds");
}
