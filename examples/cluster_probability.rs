//! The Section III analysis, interactively (paper Figure 3 + Section III-B).
//!
//! Prints the probability that parallel reads are served locally as the
//! cluster grows, and the expected imbalance across serving nodes —
//! both in closed form and cross-checked by Monte-Carlo simulation of the
//! actual placement/assignment/replica-selection protocol.
//!
//! Run with:
//! ```text
//! cargo run --release -p opass-examples --example cluster_probability
//! ```

// Printing is this binary's user interface.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use opass_analysis::{
    run_montecarlo, ClusterParams, ImbalanceModel, LocalityModel, MonteCarloConfig,
};

fn main() {
    println!("Remote access analysis: 512 chunks, 3-way replication (paper Section III-A)\n");
    println!("  m     P(X>5) closed   P(X>5) simulated   expected local reads");
    for m in [64u32, 128, 256, 512] {
        let params = ClusterParams::paper_with_cluster(m);
        let model = LocalityModel::new(params);
        let mc = run_montecarlo(&MonteCarloConfig {
            params,
            trials: 30,
            seed: u64::from(m),
        });
        // The published Figure 3 calibration (see crate docs for the
        // formula-as-written variant). It coincides with the served-chunk
        // marginal Bin(n, 1/m), which is what the protocol simulation
        // measures directly.
        let closed = model.published_p_more_than(5) * 100.0;
        let simulated = (1.0 - mc.served_cdf(5)) * 100.0;
        println!(
            "  {m:<5} {closed:>12.2}% {simulated:>17.2}%  {:>18.1}",
            model.expected_local(),
        );
    }

    println!("\nImbalance analysis: m = 128 (paper Section III-B)\n");
    let model = ImbalanceModel::new(ClusterParams::new(512, 3, 128));
    println!(
        "  a node stores {:.1} chunks and serves {:.1} on average",
        512.0 * model.params().p_local(),
        model.expected_served()
    );
    println!(
        "  expected nodes serving <=1 chunk: {:.1}   (paper: 11)",
        model.paper_expected_light_nodes()
    );
    println!(
        "  expected nodes serving >=8 chunks: {:.1}  (paper: 6)",
        model.paper_expected_heavy_nodes()
    );
    println!("\n  P(Z<=k) series (k: probability a node serves at most k chunks):");
    for (k, p) in model.served_cdf_series(12) {
        let bar = "#".repeat((p * 40.0).round() as usize);
        println!("  {k:>3}: {p:6.3} {bar}");
    }
    println!("\nConclusion: without coordination, a few nodes serve 8x more chunk");
    println!("requests than others while their disks thrash — exactly what Opass fixes.");
}
