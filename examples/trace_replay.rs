//! Replay your own task trace through the Opass stack.
//!
//! Writes a small `size_bytes,compute_seconds` CSV (as your job logs
//! would), loads it into a simulated cluster, and compares the default
//! assignment against the Opass matching on *your* workload — including
//! the byte-weighted objective, since replayed chunk sizes are mixed.
//!
//! Run with:
//! ```text
//! cargo run --release -p opass-examples --example trace_replay
//! ```

// Printing is this binary's user interface.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use opass_core::planner::OpassPlanner;
use opass_core::request::PlanRequest;
use opass_dfs::{DfsConfig, Namenode, Placement};
use opass_matching::Objective;
use opass_runtime::{baseline, execute, ExecConfig, ProcessPlacement, TaskSource};
use opass_workloads::replay;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // A synthetic "job log": alternating large scans and small index reads
    // with varying compute.
    let mut csv = String::from("size_bytes,compute_seconds\n");
    for i in 0..96 {
        if i % 3 == 0 {
            csv.push_str("67108864,0.8\n"); // 64 MB scan + compute
        } else {
            csv.push_str("8388608,0.1\n"); // 8 MB index lookup
        }
    }

    // Single replication: locality is scarce, so the matching cannot keep
    // everything local and the *objective* decides what stays.
    let n_nodes = 12;
    let mut namenode = Namenode::new(n_nodes, DfsConfig { replication: 1 });
    let mut rng = StdRng::seed_from_u64(3);
    let (_, workload) =
        replay::from_csv(&mut namenode, "job-log", &csv, &Placement::Random, &mut rng)
            .expect("valid trace");
    println!(
        "replayed {} tasks ({} MB total input) onto {n_nodes} nodes\n",
        workload.len(),
        workload.total_input_bytes(|c| namenode.chunk(c).unwrap().size) >> 20
    );

    let placement = ProcessPlacement::one_per_node(n_nodes);
    let exec = ExecConfig {
        seed: 9,
        ..Default::default()
    };

    let plans = [
        (
            "rank-interval",
            baseline::rank_interval(workload.len(), n_nodes),
        ),
        (
            "opass (count)",
            OpassPlanner::default()
                .plan(&PlanRequest::single(&namenode, &workload, &placement).seed(5))
                .into_single()
                .expect("single plan")
                .assignment,
        ),
        (
            "opass (bytes)",
            OpassPlanner {
                objective: Objective::MatchedBytes,
                ..Default::default()
            }
            .plan(&PlanRequest::single(&namenode, &workload, &placement).seed(5))
            .into_single()
            .expect("single plan")
            .assignment,
        ),
    ];
    println!(
        "  {:<16} {:>11} {:>12} {:>10}",
        "strategy", "local bytes", "avg I/O", "makespan"
    );
    for (name, assignment) in plans {
        let run = execute(
            &namenode,
            &workload,
            &placement,
            TaskSource::Static(assignment),
            &exec,
        );
        println!(
            "  {:<16} {:>10.0}% {:>11.3}s {:>9.2}s",
            name,
            run.local_byte_fraction() * 100.0,
            run.io_summary().mean,
            run.makespan
        );
    }
    println!("\nWith r = 1 the matching cannot keep everything local; the byte");
    println!("objective spends the scarce locality on the 64 MB scans instead of");
    println!("the 8 MB lookups. (With r >= 2 both objectives reach ~100% local");
    println!("bytes and the choice stops mattering — see ext-matching-prob.)");
}
