//! mpiBLAST-style dynamic scheduling (paper Section IV-D, V-A3).
//!
//! A master process hands gene-database chunks to whichever worker is idle;
//! per-task compute times are heavy-tailed (sequence alignment cost is
//! input-dependent). The default dispatcher is a FIFO queue; Opass computes
//! per-worker lists by matching and steals by co-location when a worker
//! runs dry.
//!
//! Run with:
//! ```text
//! cargo run --release -p opass-examples --example dynamic_blast
//! ```

// Printing is this binary's user interface.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use opass_core::{ClusterSpec, Dynamic, Experiment, Strategy};

fn main() {
    let experiment = Dynamic {
        cluster: ClusterSpec {
            n_nodes: 32,
            seed: 1234,
            ..Dynamic::default().cluster
        },
        tasks_per_process: 10,
        compute_median: 0.5,
        compute_sigma: 1.2, // heavy skew: some alignments take much longer
    };

    println!(
        "dynamic gene search: {} workers, {} chunks, irregular compute\n",
        experiment.cluster.n_nodes,
        experiment.cluster.n_nodes * experiment.tasks_per_process
    );

    let fifo = experiment.run(Strategy::Fifo).expect("dynamic strategy");
    let guided = experiment
        .run(Strategy::OpassGuided)
        .expect("dynamic strategy");

    for (label, run) in [
        ("FIFO master/worker", &fifo),
        ("Opass-guided lists", &guided),
    ] {
        let io = run.result.io_summary();
        println!("{label}:");
        println!(
            "  local reads {:5.1}%   avg I/O {:.2}s   max I/O {:.2}s   makespan {:.1}s",
            run.result.local_fraction() * 100.0,
            io.mean,
            io.max,
            run.result.makespan
        );
    }

    let speedup = fifo.result.io_summary().mean / guided.result.io_summary().mean;
    println!(
        "\nOpass guidance cuts the average I/O operation {speedup:.1}x \
         (paper reports 2.7x on Marmot)"
    );
    println!("and the irregular compute still balances: dynamic stealing kept every worker busy.");
}
