//! ParaView multi-block rendering with Opass (paper Section V-B).
//!
//! Models the paper's real-application test: a library of macromolecular
//! datasets stored as ~56 MB multi-block sub-files; each rendering step
//! selects 64 of them through the meta-file, the data-server processes read
//! their assigned sub-files and render. Compares the stock
//! vtkXMLCompositeDataReader assignment against Opass hooked into
//! ReadXMLData().
//!
//! Run with:
//! ```text
//! cargo run --release -p opass-examples --example paraview_render
//! ```

// Printing is this binary's user interface.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use opass_core::{ClusterSpec, Experiment, ParaView, Strategy};
use opass_workloads::ParaViewConfig;

fn main() {
    let experiment = ParaView {
        cluster: ClusterSpec {
            n_nodes: 64,
            seed: 7,
            ..ParaView::default().cluster
        },
        workload: ParaViewConfig {
            n_steps: 5,
            ..Default::default()
        },
    };

    println!("ParaView multi-block rendering: 64 data servers, 64 x 56 MB blocks per step\n");
    let base = experiment
        .run(Strategy::RankInterval)
        .expect("paraview strategy");
    let opass = experiment.run(Strategy::Opass).expect("paraview strategy");

    println!("per-step makespans (seconds):");
    println!("  step   default    opass");
    for (i, (b, o)) in base
        .step_makespans
        .iter()
        .zip(&opass.step_makespans)
        .enumerate()
    {
        println!("  {i:>4}   {b:7.2}   {o:7.2}");
    }

    let bs = base.result.io_summary();
    let os = opass.result.io_summary();
    println!("\nvtkFileSeriesReader call times:");
    println!(
        "  default: avg {:.2}s sigma {:.2}  (paper: 5.48 sigma 1.339)",
        bs.mean, bs.stddev
    );
    println!(
        "  opass:   avg {:.2}s sigma {:.2}  (paper: 3.07 sigma 0.316)",
        os.mean, os.stddev
    );
    println!(
        "\ntotal execution: default {:.1}s vs opass {:.1}s ({:.2}x faster)",
        base.result.makespan,
        opass.result.makespan,
        base.result.makespan / opass.result.makespan
    );
    println!(
        "planning cost across all steps: {:.2} ms",
        opass.planning_seconds * 1e3
    );
}
