//! Rack-aware Opass on a racked cluster (repository extension).
//!
//! Real HDFS deployments are racked with oversubscribed top-of-rack
//! uplinks — unlike the paper's single-switch Marmot. This example ingests
//! a dataset with HDFS's rack-aware placement over the simulated write
//! pipeline, lets two empty nodes per rack join late, and then compares
//! three read strategies: the rank-interval baseline, node-level Opass, and
//! the two-tier (node → rack) Opass extension.
//!
//! Run with:
//! ```text
//! cargo run --release -p opass-examples --example rack_cluster
//! ```

// Printing is this binary's user interface.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use opass_core::{ClusterSpec, Experiment, Racked, Strategy};
use opass_dfs::{DatasetSpec, DfsConfig, Namenode, Placement, RackMap};
use opass_runtime::{write_dataset, ProcessPlacement, WriteConfig};
use opass_simio::Topology;

fn main() {
    // Part 1: ingest through the write pipeline on a racked topology.
    let racks = RackMap::uniform(16, 4);
    let mut namenode = Namenode::new(16, DfsConfig::default());
    let spec = DatasetSpec::uniform("telemetry", 64, 64 << 20);
    let ingest = write_dataset(
        &mut namenode,
        &spec,
        &ProcessPlacement::one_per_node(16),
        &WriteConfig {
            topology: Topology::Racked {
                nodes_per_rack: 4,
                uplink_bandwidth: 468.0 * 1024.0 * 1024.0,
            },
            placement: Placement::RackAware {
                racks: racks.clone(),
            },
            seed: 11,
            ..Default::default()
        },
    );
    println!(
        "ingest: 4 GB written {}-way replicated in {:.1}s ({:.0} MB/s aggregate)",
        namenode.config().replication,
        ingest.result.makespan,
        4096.0 / ingest.result.makespan
    );
    let spanning = namenode
        .dataset(ingest.dataset)
        .unwrap()
        .chunks
        .iter()
        .filter(|&&c| {
            let locs = namenode.locate(c).unwrap();
            let r0 = racks.rack_of(locs[0]);
            locs.iter().any(|&n| racks.rack_of(n) != r0)
        })
        .count();
    println!("placement: {spanning}/64 chunks span two racks (rack-aware policy)\n");

    // Part 2: the read-side comparison, with late-joining empty nodes.
    let experiment = Racked {
        cluster: ClusterSpec {
            n_nodes: 64,
            seed: 12,
            ..Racked::default().cluster
        },
        nodes_per_rack: 8,
        late_per_rack: 2,
        chunks_per_process: 10,
        ..Default::default()
    };
    println!("reads: 64 nodes in 8 racks (2 joined late per rack), 640 x 64 MB chunks");
    println!(
        "  {:<18} {:>10} {:>12} {:>10} {:>11}",
        "strategy", "node-local", "cross-rack", "avg I/O", "makespan"
    );
    for (label, strategy) in [
        ("rank-interval", Strategy::RankInterval),
        ("opass node-only", Strategy::Opass),
        ("opass two-tier", Strategy::OpassRackAware),
    ] {
        let run = experiment.run(strategy).expect("racked strategy");
        println!(
            "  {:<18} {:>9.0}% {:>11.1}% {:>9.2}s {:>10.1}s",
            label,
            run.result.local_fraction() * 100.0,
            experiment.cross_rack_fraction(&run.result) * 100.0,
            run.result.io_summary().mean,
            run.result.makespan
        );
    }
    println!("\nThe empty late joiners can never read node-locally; the two-tier");
    println!("matching pins their share to same-rack replicas, keeping the");
    println!("oversubscribed uplinks out of the read path.");
}
