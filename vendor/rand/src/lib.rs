//! Offline stand-in for the subset of the `rand` crate API this workspace
//! uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`, `Rng::gen_range`
//! over integer and float ranges, and `seq::SliceRandom::{shuffle, choose}`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — a documented,
//! high-quality stream that is *stable for this repository* (simulation
//! results are reproducible run-to-run and commit-to-commit). It does not
//! reproduce the upstream `rand` byte stream, which no code here relies on.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next raw 64-bit output of the generator.
    fn next_u64(&mut self) -> u64;

    /// Returns the next raw 32-bit output (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from a half-open `Range`.
pub trait UniformSample: Sized {
    /// Draws a value in `[range.start, range.end)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty gen_range");
                let span = (range.end as u128).wrapping_sub(range.start as u128) as u64;
                // Lemire-style rejection keeps the draw unbiased.
                let mut x = rng.next_u64();
                if span.is_power_of_two() {
                    return range.start + (x & (span - 1)) as $t;
                }
                let zone = u64::MAX - (u64::MAX % span);
                while x >= zone {
                    x = rng.next_u64();
                }
                range.start + (x % span) as $t
            }
        }
    )*};
}

impl_uniform_int!(usize, u64, u32, u16, u8, i64, i32);

impl UniformSample for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "empty gen_range");
        // 53 random mantissa bits -> uniform in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        range.start + unit * (range.end - range.start)
    }
}

/// Range forms accepted by [`Rng::gen_range`] (`a..b` and `a..=b`).
pub trait SampleRange<T> {
    /// Draws a value uniformly from this range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: UniformSample> SampleRange<T> for Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self)
    }
}

macro_rules! impl_inclusive_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = self.into_inner();
                if end == <$t>::MAX {
                    // Avoid overflow; shift the span down by one draw.
                    let v = <$t>::sample_range(rng, (start.wrapping_sub(1))..end);
                    v.wrapping_add(1)
                } else {
                    <$t>::sample_range(rng, start..end + 1)
                }
            }
        }
    )*};
}

impl_inclusive_range!(usize, u64, u32, u16, u8, i64, i32);

/// High-level sampling helpers, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value uniformly from the range (`a..b` or `a..=b`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_range(self, 0.0..1.0) < p
    }
}

impl<T: RngCore> Rng for T {}

/// The workspace's standard seedable generator (xoshiro256++).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        StdRng {
            s: [
                Self::splitmix(&mut sm),
                Self::splitmix(&mut sm),
                Self::splitmix(&mut sm),
                Self::splitmix(&mut sm),
            ],
        }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Named-generator module, mirroring `rand::rngs`.
pub mod rngs {
    pub use super::StdRng;
}

/// Slice sampling helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices (`shuffle`, `choose`).
    pub trait SliceRandom {
        /// The element type of the slice.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Uniformly random element, or `None` when empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_span() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [usize; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
