//! Offline stand-in for the subset of the `criterion` benchmark harness
//! this workspace uses. It really measures wall-clock time — median of the
//! configured sample count, printed one line per benchmark — but performs
//! no statistical analysis, plotting, or baseline storage.
//!
//! Supported surface: [`Criterion::benchmark_group`], group configuration
//! (`warm_up_time`, `measurement_time`, `sample_size`), `bench_with_input`
//! and `bench_function`, [`Bencher::iter`] / [`Bencher::iter_batched`],
//! [`BenchmarkId`], [`BatchSize`], [`black_box`], and the
//! `criterion_group!` / `criterion_main!` macros.

#![warn(missing_docs)]

use std::fmt::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark harness entry point; one per `criterion_group!`.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            warm_up: Duration::from_millis(200),
            measurement: Duration::from_secs(1),
            samples: 10,
        }
    }
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A `function_name/parameter` identifier.
    pub fn new<P: std::fmt::Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// An identifier that is just the parameter value.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Hint for how `iter_batched` amortizes setup cost (ignored by the stub).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration input: setup runs once per routine call.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// One batch per sample.
    PerIteration,
}

/// A group of benchmarks sharing timing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    warm_up: Duration,
    measurement: Duration,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the warm-up duration before sampling starts.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Sets the target total measurement duration.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Sets the number of samples recorded per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Benchmarks `f` with a borrowed input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        self.run_one(&label, |b| f(b, input));
        self
    }

    /// Benchmarks a closure with no extra input.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        self.run_one(&label, |b| f(b));
        self
    }

    /// Finishes the group (reporting already happened per benchmark).
    pub fn finish(self) {}

    fn run_one<F: FnMut(&mut Bencher)>(&self, label: &str, mut f: F) {
        // Warm-up: run the routine until the warm-up budget elapses.
        let warm_deadline = Instant::now() + self.warm_up;
        let mut bencher = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        };
        while Instant::now() < warm_deadline {
            bencher.reset();
            f(&mut bencher);
            if bencher.iters == 0 {
                break; // routine never called iter; nothing to time
            }
        }

        // Measurement: collect per-iteration times until the budget or
        // sample count is exhausted, then report the median.
        let mut samples: Vec<f64> = Vec::with_capacity(self.samples);
        let deadline = Instant::now() + self.measurement;
        for _ in 0..self.samples {
            bencher.reset();
            f(&mut bencher);
            if bencher.iters > 0 {
                samples.push(bencher.elapsed.as_secs_f64() / bencher.iters as f64);
            }
            if Instant::now() >= deadline {
                break;
            }
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let mut line = format!("bench {label:<48}");
        match samples.get(samples.len() / 2) {
            Some(median) => {
                let _ = write!(line, " median {}", fmt_time(*median));
                if let (Some(lo), Some(hi)) = (samples.first(), samples.last()) {
                    let _ = write!(line, "  (range {} .. {})", fmt_time(*lo), fmt_time(*hi));
                }
            }
            None => line.push_str(" no samples"),
        }
        println!("{line}");
    }
}

fn fmt_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Times the closure passed to [`Bencher::iter`] / [`Bencher::iter_batched`].
#[derive(Debug)]
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    fn reset(&mut self) {
        self.elapsed = Duration::ZERO;
        self.iters = 0;
    }

    /// Times repeated calls of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        black_box(routine());
        self.elapsed += start.elapsed();
        self.iters += 1;
    }

    /// Times `routine` on fresh values produced by `setup` (setup untimed).
    pub fn iter_batched<S, O, Setup, Routine>(
        &mut self,
        mut setup: Setup,
        mut routine: Routine,
        _size: BatchSize,
    ) where
        Setup: FnMut() -> S,
        Routine: FnMut(S) -> O,
    {
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        self.elapsed += start.elapsed();
        self.iters += 1;
    }
}

/// Declares a benchmark group function, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn times_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("stub");
        group.warm_up_time(Duration::from_millis(1));
        group.measurement_time(Duration::from_millis(5));
        group.sample_size(3);
        let mut calls = 0u32;
        group.bench_with_input(BenchmarkId::new("add", 4), &4u64, |b, &n| {
            b.iter(|| {
                calls += 1;
                n + 1
            })
        });
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
        assert!(calls > 0);
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 8).to_string(), "f/8");
        assert_eq!(BenchmarkId::from_parameter("m16").to_string(), "m16");
    }
}
